"""Benchmark fixtures: result recording shared by every bench.

Each benchmark regenerates one table/figure of the paper and records
the rendered table under ``benchmarks/results/<name>.txt`` so the
numbers survive pytest's output capture.  EXPERIMENTS.md snapshots the
recorded values against the paper's.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record():
    """Write a rendered experiment table to the results directory."""

    def _record(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment functions are end-to-end simulations (seconds to
    minutes); statistical repetition belongs to the simulation seeds,
    not to wall-clock rounds.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
