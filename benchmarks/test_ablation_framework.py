"""Ablation — framework-level design choices (DESIGN.md §5).

- consensus rule: the paper's simple majority vs accuracy-weighted
  majority (Section 2.1 mentions both);
- worker performance testing (Algorithm 2 step 3): uncertainty-driven
  vs disabled (uncertainty_weight pins the two factors).
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments.runner import run_approach
from repro.experiments.setups import make_setup


def test_ablation_consensus_rule(benchmark, record):
    """Weighted consensus must not lose to simple majority."""

    def sweep():
        setup = make_setup("itemcompare", seed=7, scale=0.25)
        results = {}
        for rule in ("majority", "weighted"):
            variant = setup.with_config(setup.config.with_consensus(rule))
            result = run_approach(
                "iCrowd", variant, run_tag="ablate-consensus"
            )
            results[rule] = result.overall_accuracy
        return results

    results = run_once(benchmark, sweep)
    record(
        "ablation_consensus",
        "consensus-rule ablation (iCrowd, itemcompare scale 0.25)\n"
        + "\n".join(f"{rule:<10} {acc:.3f}" for rule, acc in results.items()),
    )
    assert results["weighted"] >= results["majority"] - 0.05


def test_ablation_uncertainty_weight(benchmark, record):
    """The testing score's two factors both earn their keep: the pure
    extremes must not beat the balanced default by a wide margin."""

    def sweep():
        base = make_setup("itemcompare", seed=7, scale=0.25)
        results = {}
        for weight in (0.0, 0.5, 1.0):
            assigner = replace(
                base.config.assigner, uncertainty_weight=weight
            )
            config = replace(base.config, assigner=assigner)
            variant = base.with_config(config)
            result = run_approach(
                "iCrowd", variant, run_tag="ablate-uncertainty"
            )
            results[weight] = result.overall_accuracy
        return results

    results = run_once(benchmark, sweep)
    record(
        "ablation_uncertainty_weight",
        "performance-testing weight ablation (iCrowd)\n"
        + "\n".join(f"w={w:<6} {acc:.3f}" for w, acc in results.items()),
    )
    balanced = results[0.5]
    assert balanced >= min(results[0.0], results[1.0]) - 0.05


def test_ablation_assignment_view(benchmark, record):
    """Set-packing greedy (Algorithm 3) vs Hungarian matching.

    The paper argues for completing whole top-worker *sets* (so
    consensus — and estimation feedback — arrives early) over plain
    per-worker matching; this ablation quantifies that choice.
    """

    def sweep():
        setup = make_setup("itemcompare", seed=7, scale=0.25)
        results = {}
        for approach in ("Matching", "iCrowd"):
            total = 0.0
            for rep in range(3):
                result = run_approach(
                    approach, setup, run_tag=f"ablate-view-{rep}"
                )
                total += result.overall_accuracy
            results[approach] = total / 3
        return results

    results = run_once(benchmark, sweep)
    record(
        "ablation_assignment_view",
        "assignment-view ablation (3-rep means)\n"
        + "\n".join(
            f"{name:<10} {acc:.3f}" for name, acc in results.items()
        ),
    )
    # the set-packing view must not lose to plain matching
    assert results["iCrowd"] >= results["Matching"] - 0.03


def test_ablation_early_stopping(benchmark, record):
    """Confidence-based early stopping (related work [26]): fewer votes
    for comparable accuracy."""
    from repro.core.early_stop import EarlyStopICrowd
    from repro.platform import SimulatedPlatform

    def sweep():
        setup = make_setup("itemcompare", seed=7, scale=0.25)
        exclude = set(setup.qualification_tasks)
        results = {}
        for name, threshold in (("fixed-k", None), ("early-0.7", 0.7)):
            accs, votes = [], []
            for rep in range(3):
                if threshold is None:
                    policy = run_approach(
                        "iCrowd", setup, run_tag=f"stop-{rep}"
                    )
                    accs.append(policy.overall_accuracy)
                    votes.append(
                        sum(
                            1
                            for e in policy.report.events.answers()
                            if not e.is_test and e.task_id not in exclude
                        )
                    )
                else:
                    early = EarlyStopICrowd(
                        setup.tasks,
                        setup.config,
                        graph=setup.graph,
                        qualification_tasks=list(
                            setup.qualification_tasks
                        ),
                        estimator=setup.estimator,
                        confidence_threshold=threshold,
                    )
                    pool = setup.fresh_pool(f"stop-{rep}")
                    report = SimulatedPlatform(
                        setup.tasks, pool, early
                    ).run()
                    accs.append(
                        report.accuracy(setup.tasks, exclude=exclude)
                    )
                    votes.append(early.votes_spent())
            results[name] = (
                sum(accs) / len(accs),
                sum(votes) / len(votes),
            )
        return results

    results = run_once(benchmark, sweep)
    lines = ["early-stopping ablation (3-rep means)"]
    lines.append(f"{'policy':<12}{'accuracy':<12}{'votes':<10}")
    for name, (acc, votes) in results.items():
        lines.append(f"{name:<12}{acc:<12.3f}{votes:<10.0f}")
    record("ablation_early_stop", "\n".join(lines))

    fixed_acc, fixed_votes = results["fixed-k"]
    early_acc, early_votes = results["early-0.7"]
    assert early_votes < fixed_votes  # budget saved
    assert early_acc >= fixed_acc - 0.1  # without a quality collapse
