"""Ablation — PPR solver and basis truncation (DESIGN.md §5).

Two design choices behind Algorithm 1's offline phase:

1. **Solver**: the batched dense iteration computes all basis rows at
   once and is much faster *when its O(n²) dense iterate fits* — which
   is why ``method="auto"`` uses it up to ``AUTO_BATCH_LIMIT``.  The
   localized forward push (vectorised ``PushKernel``) has a per-row
   cost that depends only on the neighbourhood pushed into, not on
   |T| — it is the only feasible solver beyond the dense limit
   (a 200k-task basis as a dense iterate would need ~320 GB).
2. **Truncation ε**: larger ε stores fewer basis entries (memory) at
   the cost of estimation error; the error must grow and the memory
   shrink monotonically with ε.
"""

import time

import numpy as np
from conftest import run_once

from repro.core.ppr import PPRBasis, forward_push
from repro.experiments.figures import _random_normalized_graph


def test_ablation_solver_scaling(benchmark, record):
    """Push's per-row cost stays flat as |T| grows; batch per-row cost
    grows with |T| (its iterate is n × n)."""

    def measure():
        rows = {}
        for n in (1500, 6000):
            normalized = _random_normalized_graph(n, 8, seed=3)
            # push: time a fixed sample of source rows
            t0 = time.perf_counter()
            for source in range(0, 100):
                forward_push(normalized, source, damping=0.5, epsilon=1e-4)
            push_per_row = (time.perf_counter() - t0) / 100
            # batch: time the full dense iteration, amortised per row
            t0 = time.perf_counter()
            PPRBasis.compute(
                normalized, damping=0.5, epsilon=1e-4, method="batch",
                max_iter=30,
            )
            batch_per_row = (time.perf_counter() - t0) / n
            rows[n] = (push_per_row, batch_per_row)
        return rows

    rows = run_once(benchmark, measure)
    lines = ["PPR solver per-row cost (seconds)"]
    lines.append(f"{'n':<8}{'push/row':<12}{'batch/row':<12}")
    for n, (push_cost, batch_cost) in rows.items():
        lines.append(f"{n:<8}{push_cost:<12.5f}{batch_cost:<12.5f}")
    record("ablation_ppr_solver", "\n".join(lines))

    push_growth = rows[6000][0] / max(rows[1500][0], 1e-12)
    batch_growth = rows[6000][1] / max(rows[1500][1], 1e-12)
    # push is local: 4x more tasks must not cost ~4x per row
    assert push_growth < 3.0, f"push per-row cost grew {push_growth:.1f}x"
    # batch per-row cost grows with n (dense n×n iterate)
    assert batch_growth > push_growth


def test_ablation_truncation_tradeoff(benchmark, record):
    """ε controls the basis memory/accuracy trade-off monotonically."""
    normalized = _random_normalized_graph(400, 8, seed=4)
    epsilons = [1e-8, 1e-3, 1e-2]

    def sweep():
        reference = PPRBasis.compute(
            normalized, damping=0.5, epsilon=0.0, method="batch"
        )
        rows = []
        rng = np.random.default_rng(0)
        q = {int(i): float(rng.random()) for i in
             rng.choice(400, size=10, replace=False)}
        exact = reference.combine(q)
        for eps in epsilons:
            basis = PPRBasis.compute(
                normalized, damping=0.5, epsilon=eps, method="batch"
            )
            error = float(np.max(np.abs(basis.combine(q) - exact)))
            rows.append((eps, basis.nnz, error))
        return rows

    rows = run_once(benchmark, sweep)
    table = ["epsilon      nnz        max combine error"]
    for eps, nnz, error in rows:
        table.append(f"{eps:<13g}{nnz:<11d}{error:.2e}")
    record("ablation_truncation", "\n".join(table))

    nnzs = [nnz for _, nnz, _ in rows]
    errors = [error for _, _, error in rows]
    assert nnzs == sorted(nnzs, reverse=True)  # memory shrinks with ε
    assert errors == sorted(errors)  # error grows with ε
    assert errors[0] < 1e-6  # tight ε ≈ exact