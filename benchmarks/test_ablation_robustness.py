"""Ablation — robustness to structured worker misbehaviour.

Definition 1's Bernoulli worker is the cleanest case; real crowds show
label bias (acquiescence) and fatigue.  This bench runs iCrowd and
RandomMV against increasingly hostile crowds and checks that

- quality degrades gracefully (no cliff), and
- iCrowd's advantage over random assignment survives misbehaviour
  (its estimation sees only answers, so structured noise is just more
  noise to route around).
"""

from conftest import run_once

from repro.experiments.runner import build_policy
from repro.experiments.setups import make_setup
from repro.platform import SimulatedPlatform
from repro.workers import BehaviorConfig, WorkerPool

SCENARIOS = {
    "clean": BehaviorConfig(),
    "biased": BehaviorConfig(yes_bias=0.25),
    "fatigued": BehaviorConfig(fatigue_rate=0.01),
}


def run_scenario(setup, behavior, approach, tag):
    policy = build_policy(approach, setup)
    pool = WorkerPool(
        list(setup.profiles), seed=setup.seed + 13, behavior=behavior
    )
    report = SimulatedPlatform(setup.tasks, pool, policy).run()
    exclude = set(setup.qualification_tasks)
    return report.accuracy(setup.tasks, exclude=exclude)


def test_ablation_worker_misbehaviour(benchmark, record):
    def sweep():
        setup = make_setup("itemcompare", seed=7, scale=0.25)
        results = {}
        for name, behavior in SCENARIOS.items():
            results[name] = {
                approach: run_scenario(
                    setup, behavior, approach, f"robust-{name}"
                )
                for approach in ("RandomMV", "iCrowd")
            }
        return results

    results = run_once(benchmark, sweep)
    lines = ["robustness to worker misbehaviour (itemcompare, scale .25)"]
    lines.append(f"{'scenario':<12}{'RandomMV':<12}{'iCrowd':<12}")
    for name, accs in results.items():
        lines.append(
            f"{name:<12}{accs['RandomMV']:<12.3f}{accs['iCrowd']:<12.3f}"
        )
    record("ablation_robustness", "\n".join(lines))

    for name, accs in results.items():
        # iCrowd keeps a lead (or at worst parity) in every scenario
        assert accs["iCrowd"] >= accs["RandomMV"] - 0.03, name
        # no catastrophic collapse
        assert accs["iCrowd"] > 0.55, name