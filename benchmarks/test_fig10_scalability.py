"""Figure 10 — scalability of assignment with simulation.

Paper shape: elapsed time grows **sub-linearly** in the number of
microtasks (their index structures make per-request work depend on the
local neighbourhood, not |T|), and grows with the neighbour bound.

The default sizes are scaled down from the paper's 0.2M-1M so the bench
finishes quickly; pass the paper sizes through ``fig10_scalability``
directly for a full-scale run.
"""

from conftest import run_once

from repro.experiments import fig10_scalability

SIZES = [25_000, 50_000, 100_000, 200_000]


def test_fig10_assignment_scalability(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig10_scalability(
            sizes=SIZES,
            neighbor_bounds=[20, 40],
            requests_per_size=2000,
            seed=7,
        ),
    )
    record("fig10_scalability", result.format_table())

    for bound in (20, 40):
        series = result.series(bound)
        # sub-linear: 8x more tasks must cost far less than 8x the time
        ratio = series[-1] / max(series[0], 1e-9)
        size_ratio = SIZES[-1] / SIZES[0]
        assert ratio < size_ratio, (
            f"assignment time grew super-linearly: {series}"
        )
    # a larger neighbour bound means more inference work per answer
    total_20 = sum(result.series(20))
    total_40 = sum(result.series(40))
    assert total_40 > total_20


def test_fig10_insertion_protocol(benchmark, record):
    """The paper's actual growth protocol: per-round assignment time
    stays flat as batches accumulate."""
    from repro.experiments import fig10_insertion

    result = run_once(
        benchmark,
        lambda: fig10_insertion(
            batch_size=25_000,
            rounds=4,
            max_neighbors=20,
            requests_per_round=2000,
            seed=7,
        ),
    )
    record("fig10_insertion", result.format_table())

    series = result.elapsed_per_round
    # the last round (4x the corpus) must not cost 4x the first round
    assert series[-1] < 4 * max(series[0], 1e-9)
