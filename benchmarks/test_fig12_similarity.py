"""Figure 12 (Appendix D.1) — similarity measures and thresholds.

Paper shape: the three text measures perform comparably at small
thresholds; the threshold matters (too small adds weak edges, too large
removes strong ones); cos(topic) performs best overall.
"""

from conftest import run_once

from repro.experiments import fig12_similarity

MEASURES = ["jaccard", "tfidf", "topic"]
THRESHOLDS = [0.2, 0.4, 0.6, 0.8]


def test_fig12_similarity_grid(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig12_similarity(
            "itemcompare",
            seed=7,
            scale=0.2,
            measures=MEASURES,
            thresholds=THRESHOLDS,
        ),
    )
    record("fig12_similarity", result.format_table())

    # every cell must be a sane accuracy
    for key, accuracy in result.accuracy.items():
        assert 0.3 <= accuracy <= 1.0, f"{key}: {accuracy}"

    # each measure achieves a solid peak somewhere on the grid
    for measure in MEASURES:
        best = max(result.accuracy[(measure, t)] for t in THRESHOLDS)
        assert best >= 0.7, f"{measure} never exceeded 0.7"
