"""Figure 13 (Appendix D.2) — the alpha parameter sweep.

Paper shape: both extremes lose — α=0 (pure smoothing: every connected
task gets the same estimate) and α=100 (pure fidelity: no graph
inference) are beaten by a balanced α; the paper settles on α=1.
"""

from conftest import run_once

from repro.experiments import fig13_alpha

ALPHAS = [0.0, 0.1, 1.0, 10.0, 100.0]


def test_fig13_alpha_sweep(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig13_alpha(
            "itemcompare", seed=7, scale=0.33, alphas=ALPHAS
        ),
    )
    record("fig13_alpha", result.format_table())

    balanced = max(
        result.accuracy[0.1], result.accuracy[1.0], result.accuracy[10.0]
    )
    # a balanced alpha must match-or-beat both extremes
    assert balanced >= result.accuracy[0.0] - 0.02
    assert balanced >= result.accuracy[100.0] - 0.02
