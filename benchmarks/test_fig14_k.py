"""Figure 14 (Appendix D.3) — the assignment-size (k) sweep.

Paper shape: iCrowd has the highest accuracy at every k; accuracy
generally improves with k with diminishing returns (the paper reports
~5% improvement for iCrowd from k=1 to k=3).
"""

from conftest import run_once

from repro.experiments import fig14_assignment_size

KS = [1, 3, 5]
APPROACHES = ["RandomMV", "RandomEM", "AvgAccPV", "iCrowd"]


def test_fig14_assignment_size(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig14_assignment_size(
            "itemcompare", seed=7, scale=0.25, ks=KS, approaches=APPROACHES
        ),
    )
    record("fig14_k", result.format_table())

    # iCrowd wins (or ties within noise) at every k
    for k in KS:
        icrowd = result.accuracy[("iCrowd", k)]
        for approach in APPROACHES:
            if approach == "iCrowd":
                continue
            assert icrowd >= result.accuracy[(approach, k)] - 0.03, (
                f"iCrowd lost to {approach} at k={k}"
            )

    # voting with more workers helps iCrowd (k=1 → k≥3)
    icrowd_series = result.series("iCrowd")
    assert max(icrowd_series[1:]) >= icrowd_series[0]
