"""Figure 15 (Appendix D.5) — assignment distribution over workers.

Paper shape: a stable core completes most of the work — the top-15
workers completed 84% of all assignments; the busiest single worker
completed more than 13%.
"""

from conftest import run_once

from repro.experiments import fig15_distribution


def test_fig15_assignment_distribution(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig15_distribution("itemcompare", seed=7, scale=0.33),
    )
    record("fig15_distribution", result.format_table())

    assert result.total_assignments > 0
    # a stable top-15 core completes the bulk of the assignments
    assert result.top_share(15) >= 0.5
    # and the distribution is skewed: the busiest worker is well above
    # the uniform share
    busiest_share = result.top_workers[0][1] / result.total_assignments
    uniform_share = 1.0 / max(len(result.top_workers), 1)
    assert busiest_share > uniform_share
