"""Figure 6 — diverse worker accuracies across domains.

Paper shape: individual workers are strong in some domains and weak in
others (e.g. 0.875 in Books&Authors vs 0.176 in FIFA for one worker),
and the top worker differs per domain.
"""

from conftest import run_once

from repro.experiments import fig6_diversity


def test_fig6_itemcompare_diversity(benchmark, record):
    result = run_once(
        benchmark, lambda: fig6_diversity("itemcompare", seed=7, scale=0.33)
    )
    record("fig6_itemcompare", result.format_table())

    assert result.per_worker, "no worker completed enough microtasks"
    # a sizeable share of workers show a wide accuracy span (> 0.3)
    spans = [result.diversity_span(w) for w in result.per_worker]
    wide = sum(1 for s in spans if s > 0.3)
    assert wide >= len(spans) * 0.3

    # the best worker differs across at least two domains
    best_by_domain = {}
    for domain in result.domains:
        scored = [
            (accs[domain][1], worker)
            for worker, accs in result.per_worker.items()
            if domain in accs and accs[domain][0] >= 5
        ]
        if scored:
            best_by_domain[domain] = max(scored)[1]
    assert len(set(best_by_domain.values())) >= 2


def test_fig6_yahooqa_diversity(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig6_diversity("yahooqa", seed=7, scale=1.0,
                               min_completed=15),
    )
    record("fig6_yahooqa", result.format_table())
    assert result.per_worker
    spans = [result.diversity_span(w) for w in result.per_worker]
    assert max(spans) > 0.3
