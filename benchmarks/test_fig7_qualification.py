"""Figure 7 — effect of qualification selection (RandomQF vs InfQF).

Paper shape: InfQF beats RandomQF in the overall (ALL) case on both
datasets (~8% on YahooQA) and in most individual domains.
"""

from conftest import run_once

from repro.experiments import fig7_qualification


def test_fig7_itemcompare(benchmark, record):
    result = run_once(
        benchmark,
        lambda: fig7_qualification("itemcompare", seed=7, scale=0.33),
    )
    record("fig7_itemcompare", result.format_table())
    inf = result.accuracies["InfQF"]["ALL"]
    random = result.accuracies["RandomQF"]["ALL"]
    # influence-selected qualification must not lose overall (paper
    # reports a clear win; we allow a small noise margin)
    assert inf >= random - 0.03


def test_fig7_yahooqa(benchmark, record):
    result = run_once(
        benchmark, lambda: fig7_qualification("yahooqa", seed=7)
    )
    record("fig7_yahooqa", result.format_table())
    inf = result.accuracies["InfQF"]["ALL"]
    random = result.accuracies["RandomQF"]["ALL"]
    assert inf >= random - 0.03
