"""Figure 8 — effect of adaptive assignment (QF-Only / BestEffort /
Adapt).

Paper shape: Adapt best on both datasets; QF-Only worst in most cases;
BestEffort in between (its local assignment lets weak votes leak into
the majority).
"""

from conftest import run_once

from repro.experiments import fig8_adaptive


def test_fig8_itemcompare(benchmark, record):
    result = run_once(
        benchmark, lambda: fig8_adaptive("itemcompare", seed=7, scale=0.33)
    )
    record("fig8_itemcompare", result.format_table())
    adapt = result.accuracies["Adapt"]["ALL"]
    best_effort = result.accuracies["BestEffort"]["ALL"]
    qf_only = result.accuracies["QF-Only"]["ALL"]
    assert adapt >= best_effort - 0.03
    assert adapt >= qf_only - 0.03
    assert adapt == max(adapt, best_effort, qf_only)


def test_fig8_yahooqa(benchmark, record):
    result = run_once(benchmark, lambda: fig8_adaptive("yahooqa", seed=7))
    record("fig8_yahooqa", result.format_table())
    adapt = result.accuracies["Adapt"]["ALL"]
    assert adapt >= result.accuracies["QF-Only"]["ALL"] - 0.03
    assert adapt >= result.accuracies["BestEffort"]["ALL"] - 0.03
