"""Figure 9 — iCrowd vs RandomMV / RandomEM / AvgAccPV.

Paper shape: iCrowd wins overall by ~10% (up to 20%+ in individual
domains) on both datasets.
"""

from conftest import run_once

from repro.experiments import fig9_comparison


def test_fig9_itemcompare(benchmark, record):
    result = run_once(
        benchmark, lambda: fig9_comparison("itemcompare", seed=7, scale=0.33)
    )
    record("fig9_itemcompare", result.format_table())
    icrowd = result.accuracies["iCrowd"]["ALL"]
    for baseline in ("RandomMV", "RandomEM", "AvgAccPV"):
        assert icrowd >= result.accuracies[baseline]["ALL"], (
            f"iCrowd lost to {baseline}"
        )
    # the headline claim: a clear improvement over the best baseline
    assert result.improvement_over_best_baseline() >= 0.05


def test_fig9_yahooqa(benchmark, record):
    result = run_once(benchmark, lambda: fig9_comparison("yahooqa", seed=7))
    record("fig9_yahooqa", result.format_table())
    icrowd = result.accuracies["iCrowd"]["ALL"]
    for baseline in ("RandomMV", "RandomEM", "AvgAccPV"):
        assert icrowd >= result.accuracies[baseline]["ALL"] - 0.02
    assert result.improvement_over_best_baseline() >= 0.0
