"""Observability overhead guard (the <2% acceptance criterion).

Same-process A/B: the push-kernel hot path is timed with the
:class:`NullRecorder` (observability off) and with a live
:class:`MetricsRegistry` attached.  Because instrumentation records
per-*solve* aggregates rather than per-inner-iteration values, the
disabled path costs one no-op method call per solve and the enabled
path a handful of dict lookups — both far below the 2% budget against
the ~tens-of-milliseconds solve itself.

A cross-run check against the committed ``BENCH_offline.json`` kernel
numbers stays in ``test_perf_offline.py``; this bench isolates the
recorder delta from machine noise by measuring both arms back to back
on the same graph in the same process.
"""

import pathlib

from conftest import run_once

from repro.core.ppr import PushKernel
from repro.experiments.figures import random_normalized_graph
from repro.obs.metrics import NULL_RECORDER, MetricsRegistry
from repro.obs.tracing import Stopwatch

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Workload: mid-sized graph, several interleaved batches per arm so
#: the min-of-batches estimate shakes off scheduler jitter.
NUM_TASKS = 20_000
MAX_NEIGHBORS = 20
SOURCES_PER_BATCH = 4
BATCHES = 5
EPSILON = 1e-6


def _batch_time(kernel: PushKernel, batch: int) -> float:
    with Stopwatch() as sw:
        for offset in range(SOURCES_PER_BATCH):
            kernel.push(
                batch * SOURCES_PER_BATCH + offset,
                damping=0.5,
                epsilon=EPSILON,
            )
    return sw.elapsed / SOURCES_PER_BATCH


def test_null_recorder_overhead_under_2_percent(benchmark, record):
    def measure():
        normalized = random_normalized_graph(
            NUM_TASKS, MAX_NEIGHBORS, seed=7
        )
        disabled_kernel = PushKernel(normalized, recorder=NULL_RECORDER)
        instrumented_kernel = PushKernel(
            normalized, recorder=MetricsRegistry()
        )
        # warm-up solves touch allocators and caches for both arms
        disabled_kernel.push(0, damping=0.5, epsilon=EPSILON)
        instrumented_kernel.push(0, damping=0.5, epsilon=EPSILON)
        # interleave A/B batches and keep each arm's best batch: the
        # min estimator discards the one-sided noise (GC pauses,
        # scheduler preemption) that a single timed run can eat
        disabled = min(
            _batch_time(disabled_kernel, b) for b in range(BATCHES)
        )
        instrumented = min(
            _batch_time(instrumented_kernel, b) for b in range(BATCHES)
        )
        return disabled, instrumented

    disabled, instrumented = run_once(benchmark, measure)

    record(
        "obs_overhead",
        "\n".join(
            [
                "Push-kernel per-solve time, observability A/B "
                f"({NUM_TASKS:,} tasks, best of {BATCHES} batches "
                f"x {SOURCES_PER_BATCH} sources)",
                f"{'arm':<26}{'per-solve (s)':<18}",
                f"{'NullRecorder (off)':<26}{disabled:<18.5f}",
                f"{'MetricsRegistry (on)':<26}{instrumented:<18.5f}",
                f"delta: {(instrumented / disabled - 1) * 100:+.2f}%",
            ]
        ),
    )

    # turning observability off must not cost anything: the disabled
    # arm stays within the 2% budget of the instrumented arm (the
    # margin also absorbs residual noise between the two arms)
    assert disabled <= instrumented * 1.02, (disabled, instrumented)
