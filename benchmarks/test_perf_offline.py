"""Offline-phase performance acceptance bench (DESIGN.md §5).

Runs :func:`repro.experiments.perf.perf_offline` and asserts the
speedups the fast offline phase is built to deliver:

- the vectorised push kernel is ≥ 5× faster than the dict-and-deque
  reference on a 50k-task sparse graph,
- ``parallel-push`` produces output identical to serial push, and
  beats it when the machine actually has ≥ 4 cores (a 1-core container
  records both timings without asserting a win),
- a warm (cached) estimator start is ≥ 10× faster than a cold compute
  on the Fig. 10 workload, bit-identical to the fresh basis.

Results land in ``benchmarks/results/perf_offline.txt`` (rendered) and
``BENCH_offline.json`` at the repo root (machine-readable).
Reproduce from the command line with ``python -m repro.cli perf``.
"""

import os
import pathlib

from conftest import run_once

from repro.experiments.perf import perf_offline

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_perf_offline(benchmark, record):
    result = run_once(benchmark, perf_offline)

    record("perf_offline", result.format_table())
    result.write_json(REPO_ROOT / "BENCH_offline.json")

    # kernel: the vectorised push must beat the reference comfortably
    assert result.kernel["speedup"] >= 5.0, result.kernel

    # parallel basis: always identical; faster only with real cores
    assert result.basis["identical"]
    if (os.cpu_count() or 1) >= 4:
        assert result.basis["speedup"] > 1.0, result.basis

    # cache: warm start loads the same basis much faster
    assert result.cache["warm_from_cache"]
    assert result.cache["bit_identical"]
    assert result.cache["speedup"] >= 10.0, result.cache
