"""Offline-phase performance acceptance bench (DESIGN.md §5).

Runs :func:`repro.experiments.perf.perf_offline` and asserts the
speedups the fast offline phase is built to deliver:

- the vectorised push kernel is ≥ 5× faster than the dict-and-deque
  reference on a 50k-task sparse graph,
- ``parallel-push`` produces output identical to serial push, and
  beats it when the machine actually has ≥ 4 usable cores (a 1-core
  container marks the parallel timings ``skipped_single_core``),
- the sharded offline phase merges per-shard blocks into a basis
  bit-identical to the serial whole-graph push, with ≥ 3× speedup on
  a ≥ 4-core box,
- a warm (cached) estimator start is ≥ 10× faster than a cold compute
  on the Fig. 10 workload, bit-identical to the fresh basis,
- incremental basis repair on the insertion-round protocol stays
  within tolerance of a full rebuild and beats it ≥ 5× per batch at
  the 5k-task scale (serial vs serial — honest on any core count),
- the race sanitizer finds nothing on the hardened ledgers, and its
  worst-case (all-traced-loop) tax stays bounded; the <5× acceptance
  bound on the real hammer suite lives in ``test_race_overhead.py``.

Results land in ``benchmarks/results/perf_offline.txt`` (rendered) and
``BENCH_offline.json`` at the repo root (machine-readable).
Reproduce from the command line with ``python -m repro.cli perf``.
"""

import pathlib

import pytest
from conftest import run_once

from repro.experiments.perf import perf_offline, usable_cpu_count

REPO_ROOT = pathlib.Path(__file__).parent.parent

pytestmark = pytest.mark.benchmarks


def test_perf_offline(benchmark, record):
    result = run_once(benchmark, perf_offline)

    record("perf_offline", result.format_table())
    result.write_json(REPO_ROOT / "BENCH_offline.json")
    cores = usable_cpu_count()
    assert result.cpu_count == cores

    # kernel: the vectorised push must beat the reference comfortably
    assert result.kernel["speedup"] >= 5.0, result.kernel

    # parallel basis: identical whenever the pool actually ran; faster
    # only with real cores
    if result.basis["status"] == "ok":
        assert result.basis["identical"]
        if cores >= 4:
            assert result.basis["speedup"] > 1.0, result.basis
    else:
        assert result.basis["status"] == "skipped_single_core"
        assert cores < 2

    # sharded: the merged basis is always bit-identical to serial
    # (pool or no pool); the ≥ 3× win only holds with ≥ 4 real cores
    assert result.sharded["identical"], result.sharded
    if result.sharded["status"] == "ok" and cores >= 4:
        assert result.sharded["speedup"] >= 3.0, result.sharded

    # cache: warm start loads the same basis much faster
    assert result.cache["warm_from_cache"]
    assert result.cache["bit_identical"]
    assert result.cache["speedup"] >= 10.0, result.cache

    # incremental: repair matches the rebuild and wins big; both sides
    # are serial so this holds regardless of core count
    assert result.incremental["status"] == "ok"
    assert result.incremental["within_epsilon"], result.incremental
    assert result.incremental["speedup"] >= 5.0, result.incremental

    # sanitizer: clean ledgers, and the worst-case micro-hammer tax
    # (every loop line traced) stays within an order of magnitude
    assert result.sanitizer["races"] == 0, result.sanitizer
    assert result.sanitizer["overhead_x"] < 30.0, result.sanitizer
