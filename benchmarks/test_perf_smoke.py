"""Fast correctness smoke for the perf harness (CI-sized).

The full acceptance bench (``test_perf_offline.py``) takes minutes and
asserts speedups that only hold on real multi-core hardware.  This
smoke runs the same measurement code on toy sizes (≤ 500 tasks, 2
workers, the pool forced on) and asserts *identity only* — never a
speedup — so it is meaningful on any runner, including single-core
containers.  CI runs it on every push.
"""

import pytest

from repro.experiments.perf import perf_offline

pytestmark = pytest.mark.benchmarks


def test_perf_smoke(tmp_path):
    result = perf_offline(
        kernel_tasks=1_000,
        kernel_sources=2,
        basis_tasks=400,
        basis_neighbors=6,
        cache_tasks=300,
        num_workers=2,
        cache_dir=tmp_path,
        seed=7,
        shard_size=128,
        stream_tasks=300,
        stream_batch=50,
        stream_rounds=2,
        cluster_size=50,
    )

    # every section ran and reported an honest shape — no speedup
    # guards here: toy sizes on shared runners make timing assertions
    # pure noise
    assert result.cpu_count >= 1
    assert result.kernel["reference_per_source"] > 0
    assert result.basis["serial_seconds"] > 0
    if result.basis["status"] == "ok":
        assert result.basis["identical"], result.basis
    else:
        assert result.basis["status"] == "skipped_single_core"

    sharded = result.sharded
    assert sharded["num_shards"] >= 2
    assert sharded["identical"], sharded
    assert len(sharded["shard_seconds"]) == sharded["num_shards"]

    assert result.cache["warm_from_cache"]
    assert result.cache["bit_identical"]

    # repair-equals-rebuild identity: the repaired basis must stay
    # within tolerance of a cold rebuild on every insertion round
    # (identity only — the >= 5x speedup guard lives in the full bench)
    incremental = result.incremental
    assert incremental["status"] == "ok"
    assert incremental["rounds"] == 2
    assert incremental["within_epsilon"], incremental
    assert all(r > 0 for r in incremental["reused_rows"]), incremental

    # sanitizer section ran and found nothing on the hardened ledgers
    # (no overhead guard at toy sizes — that lives in the full bench)
    assert result.sanitizer["races"] == 0, result.sanitizer
    assert result.sanitizer["instrumented_seconds"] > 0
