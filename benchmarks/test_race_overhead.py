"""Race-sanitizer acceptance bound (the <5x wall-time criterion).

The lockset sanitizer line-traces attribute writes, so a loop that is
*all* traced code (the distilled ledger hammer in
``BENCH_offline.json``'s ``sanitizer`` section) pays settrace's
worst-case tax.  The acceptance bound is about the workload the
sanitizer actually ships with: the concurrency hammer suite run via
``repro-icrowd lint --race``.  This bench times that suite clean and
instrumented, back to back in subprocesses, and asserts

- both runs pass (zero race reports on the hardened ledgers), and
- the instrumented run stays under 5x the clean wall time.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest
from conftest import run_once

from repro.obs.tracing import Stopwatch

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: The suite the CI ``race-sanitizer`` job runs: the concurrency
#: hammers plus the full platform suite.  The mix matters — the bound
#: is about real usage (hammers diluted by ordinary tests), not a
#: distilled 100%-traced loop, whose worst-case tax lives in
#: ``BENCH_offline.json``'s ``sanitizer`` section instead.
SUITE = [
    "tests/obs/test_concurrency.py",
    "tests/obs/test_race_sanitizer.py",
    "tests/platform",
]

pytestmark = pytest.mark.benchmarks


def _timed_suite(extra: list[str]) -> tuple[int, float]:
    with Stopwatch() as sw:
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "repro.analysis.pytest_race",
                *extra,
                *SUITE,
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
    if proc.returncode != 0:
        print(proc.stdout[-4000:])
    return proc.returncode, sw.elapsed


def test_race_suite_passes_under_5x(benchmark, record):
    def measure() -> tuple[tuple[int, float], tuple[int, float]]:
        return _timed_suite([]), _timed_suite(["--race"])

    (clean_code, clean_s), (race_code, race_s) = run_once(
        benchmark, measure
    )
    ratio = race_s / max(clean_s, 1e-9)
    record(
        "race_overhead",
        "Race sanitizer wall-time tax on the concurrency hammer suite\n"
        f"{'clean':<16}{clean_s:.1f}s\n"
        f"{'under --race':<16}{race_s:.1f}s\n"
        f"overhead: {ratio:.2f}x (bound: <5x)",
    )
    assert clean_code == 0
    assert race_code == 0, "sanitizer reported races on hardened code"
    assert ratio < 5.0, f"sanitizer overhead {ratio:.2f}x >= 5x"
