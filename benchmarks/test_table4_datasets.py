"""Table 4 — dataset statistics (paper: 110/6/25 and 360/4/53)."""

from conftest import run_once

from repro.experiments import table4_datasets


def test_table4_dataset_statistics(benchmark, record):
    result = run_once(benchmark, lambda: table4_datasets(seed=7))
    record("table4_datasets", result.format_table())

    by_name = {spec.name: spec for spec in result.specs}
    # paper-exact statistics
    assert by_name["YahooQA"].num_tasks == 110
    assert by_name["YahooQA"].num_domains == 6
    assert result.num_workers["YahooQA"] == 25
    assert by_name["ItemCompare"].num_tasks == 360
    assert by_name["ItemCompare"].num_domains == 4
    assert result.num_workers["ItemCompare"] == 53
