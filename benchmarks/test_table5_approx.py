"""Table 5 (Appendix D.4) — approximation error of the greedy
assignment vs the exact optimum, varying active workers 3-7.

Paper shape: errors below 2% at every pool size.
"""

from conftest import run_once

from repro.experiments import table5_approximation

WORKER_COUNTS = [3, 4, 5, 6, 7]


def test_table5_greedy_approximation_error(benchmark, record):
    result = run_once(
        benchmark,
        lambda: table5_approximation(
            "itemcompare", seed=7, worker_counts=WORKER_COUNTS
        ),
    )
    record("table5_approx", result.format_table())

    for count in WORKER_COUNTS:
        error = result.error_percent[count]
        assert 0.0 <= error <= 5.0, (
            f"approximation error {error:.2f}% at {count} workers "
            f"exceeds the paper's regime"
        )
