"""Entity resolution: the paper's running example (Table 1 / Figure 3).

Reconstructs the twelve product-matching microtasks of Table 1, builds
their Jaccard similarity graph, and walks through the paper's Section 3
narrative: a worker who answers the iPhone task t1 correctly but the
iPod/iPad tasks t2, t3 incorrectly should be trusted on other iPhone
tasks and doubted elsewhere.

Run:  python examples/entity_resolution.py
"""

from repro.core import AccuracyEstimator, ICrowdConfig, SimilarityGraph
from repro.core.config import GraphConfig
from repro.core.qualification import select_qualification_tasks
from repro.core.types import Label, Task, TaskSet

#: (entity pair, token text, domain) — Table 1 of the paper.
TABLE_1 = [
    ("iphone 4 WiFi 32GB / iphone four 3G black",
     "iphone 4 wifi 32gb four 3g black", "iphone"),
    ("ipod touch 32GB WiFi / ipod touch headphone",
     "ipod touch 32gb wifi headphone", "ipod"),
    ("ipad 3 WiFi 32GB black / new ipad cover white",
     "ipad 3 wifi 32gb black new cover white", "ipad"),
    ("iphone four WiFi 16GB / iphone four 3G 16GB",
     "iphone four wifi 16gb 3g", "iphone"),
    ("iphone 4 case black / iphone 4 WiFi 32GB",
     "iphone 4 case black wifi 32gb", "iphone"),
    ("iphone 4 WiFi 32GB / iphone four WiFi 32GB",
     "iphone 4 wifi 32gb four", "iphone"),
    ("ipod touch 32GB WiFi / ipod touch case black",
     "ipod touch 32gb wifi case black", "ipod"),
    ("ipod touch headphone / ipod nano headphone",
     "ipod touch nano headphone", "ipod"),
    ("ipod touch WiFi / ipod nano headphone",
     "ipod touch wifi nano headphone", "ipod"),
    ("ipad 3 WiFi 32GB black / iphone 4 cover white",
     "ipad 3 wifi 32gb black iphone 4 cover white", "ipad"),
    ("ipad 4 WiFi 16GB / ipad retina display WiFi 16GB",
     "ipad 4 wifi 16gb retina display", "ipad"),
    ("ipad 3 cover white / new ipad cover white",
     "ipad 3 cover white new", "ipad"),
]

#: Gold labels: which Table 1 pairs actually match (t1, t4, t6, t11,
#: t12 describe the same product; the rest do not).
MATCHES = {0, 3, 5, 10, 11}


def main() -> None:
    tasks = TaskSet(
        [
            Task(
                task_id=i,
                text=text,
                domain=domain,
                truth=Label.from_bool(i in MATCHES),
            )
            for i, (_, text, domain) in enumerate(TABLE_1)
        ]
    )

    # --- the similarity graph of Figure 3 (Jaccard over token sets)
    graph = SimilarityGraph.from_tasks(
        list(tasks), GraphConfig(measure="jaccard", threshold=0.3)
    )
    print(f"similarity graph: {graph.num_edges} edges")
    print(f"sim(t2, t7) = {graph.similarity(1, 6):.3f}   (paper: 4/7)")

    # --- Section 3's worked estimation: correct on t1, wrong on t2, t3
    estimator = AccuracyEstimator(graph, ICrowdConfig().estimator)
    estimate = estimator.estimate({0: 1.0, 1: 0.0, 2: 0.0})
    print("\nestimated accuracies after (t1 ✓, t2 ✗, t3 ✗):")
    for task in tasks:
        marker = {0: " ✓", 1: " ✗", 2: " ✗"}.get(task.task_id, "")
        print(
            f"  t{task.task_id + 1:<3} [{task.domain:<6}] "
            f"p = {estimate[task.task_id]:.3f}{marker}"
        )
    iphone = [t.task_id for t in tasks if t.domain == "iphone"]
    ipod = [t.task_id for t in tasks if t.domain == "ipod"]
    mean = lambda ids: sum(estimate[i] for i in ids) / len(ids)
    print(
        f"\nmean iPhone estimate {mean(iphone):.3f} vs "
        f"mean iPod estimate {mean(ipod):.3f} — the worker is trusted "
        f"on iPhone tasks and doubted on iPod tasks, as in the paper."
    )

    # --- Section 5's qualification selection over the same graph
    selected = select_qualification_tasks(estimator.basis, budget=3)
    names = [f"t{t + 1} ({tasks[t].domain})" for t in selected]
    print(f"\ninfluence-maximising qualification tasks: {', '.join(names)}")


if __name__ == "__main__":
    main()
