"""ExternalQuestion integration demo (paper Appendix A / Figure 11).

Starts the iCrowd web server the way the paper deploys it behind
Amazon Mechanical Turk's ExternalQuestion mechanism, then plays the
role of AMT: simulated workers poll ``GET /request`` for microtasks and
``POST /submit`` their answers until the job completes.

Run:  python examples/external_question_server.py
"""

import http.client
import json

from repro.core import ICrowd, ICrowdConfig
from repro.core.config import GraphConfig
from repro.datasets import make_itemcompare
from repro.platform import ICrowdHTTPServer
from repro.workers import WorkerPool, generate_profiles


def http_call(address, method, path, payload=None):
    """One HTTP round-trip to the iCrowd server."""
    conn = http.client.HTTPConnection(*address, timeout=10)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    return response.status, (json.loads(raw) if raw else None)


def main() -> None:
    tasks = make_itemcompare(seed=3, tasks_per_domain=10)
    profiles = generate_profiles(tasks.domains(), num_workers=12, seed=3)
    pool = WorkerPool(profiles, seed=3)
    config = ICrowdConfig(
        graph=GraphConfig(measure="jaccard", threshold=0.3), seed=3
    )
    icrowd = ICrowd(tasks, config)

    with ICrowdHTTPServer(tasks, icrowd) as server:
        address = server.address
        print(f"iCrowd server listening on http://{address[0]}:{address[1]}")
        steps = 0
        while steps < 5000:
            steps += 1
            pool.tick()
            worker_id = pool.sample_requester()
            if worker_id is None:
                continue
            status, body = http_call(
                address, "GET", f"/request?worker={worker_id}"
            )
            if status != 200:
                continue
            # the worker answers what the iframe showed her
            label = pool.worker(worker_id).answer(tasks[body["task_id"]])
            http_call(
                address,
                "POST",
                "/submit",
                {
                    "worker": worker_id,
                    "task_id": body["task_id"],
                    "label": int(label),
                    "is_test": body["is_test"],
                },
            )
            pool.note_submission(worker_id)
            _, progress = http_call(address, "GET", "/status")
            if progress["finished"]:
                break
        _, progress = http_call(address, "GET", "/status")
        print(
            f"finished={progress['finished']} after {steps} requests; "
            f"{progress['completed_tasks']}/{progress['total_tasks']} "
            f"tasks completed"
        )
        exclude = set(icrowd.qualification_tasks)
        predictions = icrowd.predictions()
        considered = [t for t in tasks if t.task_id not in exclude]
        correct = sum(
            1 for t in considered if predictions[t.task_id] == t.truth
        )
        print(f"accuracy over HTTP: {correct / len(considered):.3f}")


if __name__ == "__main__":
    main()
