"""Multi-choice microtasks: the Section 2.1 extension in action.

The paper presents binary tasks "for ease of presentation" and notes
the techniques extend to more choices.  This example runs a 4-choice
classification job (which cuisine does a dish belong to?) through the
multi-choice voting layer and iCrowd's estimator: plurality voting
resolves tasks, the generalised Eq. (5) grades workers against the
consensus, and the similarity graph routes estimation exactly as in
the binary case.

Run:  python examples/multichoice_tasks.py
"""

import numpy as np

from repro.core import AccuracyEstimator, SimilarityGraph
from repro.core.config import EstimatorConfig
from repro.core.multichoice import (
    MultiVoteState,
    multichoice_observed_accuracy,
    plurality_vote,
)
from repro.utils.rng import spawn_rng

CUISINES = ("italian", "japanese", "mexican", "indian")

#: (dish description, true cuisine, topical cluster)
DISHES = [
    ("wood fired margherita pizza basil", "italian", 0),
    ("spaghetti carbonara pancetta pecorino", "italian", 0),
    ("lasagna bolognese ragu parmesan", "italian", 0),
    ("risotto saffron parmesan butter", "italian", 0),
    ("tonkotsu ramen chashu noodles broth", "japanese", 1),
    ("salmon nigiri sushi rice wasabi", "japanese", 1),
    ("chicken katsu curry rice panko", "japanese", 1),
    ("miso soup tofu seaweed dashi", "japanese", 1),
    ("al pastor tacos pineapple tortilla", "mexican", 2),
    ("chicken enchiladas salsa verde", "mexican", 2),
    ("pozole hominy stew chile", "mexican", 2),
    ("tamales masa corn husk filling", "mexican", 2),
    ("butter chicken makhani naan", "indian", 3),
    ("palak paneer spinach cheese curry", "indian", 3),
    ("lamb biryani basmati saffron", "indian", 3),
    ("masala dosa potato chutney sambar", "indian", 3),
]


def main() -> None:
    rng = spawn_rng(4, "multichoice-demo")
    # similarity graph: cluster cliques (in practice: Jaccard on text)
    edges = []
    for cluster in range(4):
        members = [i for i, (_, _, c) in enumerate(DISHES) if c == cluster]
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                edges.append((members[a], members[b], 1.0))
    graph = SimilarityGraph.from_edges(len(DISHES), edges)
    estimator = AccuracyEstimator(graph, EstimatorConfig())

    # three workers: an Italian-food expert, a pan-Asian expert, a guesser
    expertise = {
        "marco": {0: 0.95, 1: 0.4, 2: 0.4, 3: 0.35},
        "yuki": {0: 0.4, 1: 0.95, 2: 0.35, 3: 0.9},
        "pat": {0: 0.55, 1: 0.55, 2: 0.55, 3: 0.55},
    }

    def answer(worker, dish_index):
        _, truth, cluster = DISHES[dish_index]
        if rng.random() < expertise[worker][cluster]:
            return truth
        wrong = [c for c in CUISINES if c != truth]
        return wrong[int(rng.integers(0, len(wrong)))]

    votes, states = [], {}
    for index in range(len(DISHES)):
        state = MultiVoteState(
            task_id=index, k=3, choices=CUISINES
        )
        for worker in expertise:
            choice = answer(worker, index)
            state.add(worker, choice)
            votes.append((index, worker, choice))
        states[index] = state

    results = plurality_vote(votes, CUISINES)
    correct = sum(
        1 for i, (_, truth, _) in enumerate(DISHES) if results[i] == truth
    )
    print(f"plurality accuracy: {correct}/{len(DISHES)}")

    # grade one worker via the generalised Eq. (5) and estimate her
    # per-task accuracy over the similarity graph
    observed = {}
    for index, state in states.items():
        consensus = state.consensus()
        choice = next(c for w, c in state.answers if w == "marco")
        co_votes = [(c, 0.7) for _, c in state.answers]
        observed[index] = multichoice_observed_accuracy(
            choice, consensus, co_votes, num_choices=len(CUISINES)
        )
    estimate = estimator.estimate(observed)
    print("\nmarco's estimated accuracy by cuisine cluster:")
    for cluster, cuisine in enumerate(CUISINES):
        members = [i for i, (_, _, c) in enumerate(DISHES) if c == cluster]
        print(f"  {cuisine:<10} {np.mean([estimate[i] for i in members]):.3f}")


if __name__ == "__main__":
    main()
