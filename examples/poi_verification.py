"""POI verification: feature-space similarity (paper Section 3.3, case 2).

Microtasks that are not textual can still feed iCrowd's estimation: the
paper's example is verifying place names for points-of-interest, where
task similarity is ``1 − dist/τ`` over Euclidean distance.  This
example builds a clustered POI workload, runs iCrowd over the Euclidean
similarity graph, and shows that local workers (accurate in their own
neighbourhood) are routed to nearby tasks.

Run:  python examples/poi_verification.py
"""

from repro.core import ICrowd, ICrowdConfig
from repro.core.config import GraphConfig
from repro.datasets import make_poi
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool, generate_profiles


def main() -> None:
    tasks = make_poi(seed=11, tasks_per_neighborhood=20, cluster_std=0.5)
    print(
        f"workload: {len(tasks)} POI name-verification tasks across "
        f"{len(tasks.domains())} neighbourhoods"
    )

    # workers are "locals": accurate in 1-2 neighbourhoods they know
    profiles = generate_profiles(tasks.domains(), num_workers=20, seed=11)

    config = ICrowdConfig(
        graph=GraphConfig(measure="euclidean", threshold=0.9), seed=11
    )
    icrowd = ICrowd(tasks, config)
    report = SimulatedPlatform(
        tasks, WorkerPool(profiles, seed=11), icrowd
    ).run()

    exclude = set(icrowd.qualification_tasks)
    print(
        f"iCrowd accuracy: "
        f"{report.accuracy(tasks, exclude=exclude):.3f}\n"
    )
    print("per-neighbourhood accuracy:")
    for neighborhood, acc in report.accuracy_by_domain(
        tasks, exclude=exclude
    ).items():
        print(f"  {neighborhood:<12} {acc:.3f}")

    # show that assignment was spatially specialised: for the busiest
    # workers, report the share of answers inside their best neighbourhood
    print("\nworker locality (share of answers in own best neighbourhood):")
    by_profile = {p.worker_id: p for p in profiles}
    counts: dict[str, dict[str, int]] = {}
    for event in report.events.answers():
        if event.is_test or event.task_id in exclude:
            continue
        domain = tasks[event.task_id].domain
        counts.setdefault(event.worker_id, {}).setdefault(domain, 0)
        counts[event.worker_id][domain] += 1
    busiest = sorted(
        counts.items(), key=lambda kv: -sum(kv[1].values())
    )[:5]
    for worker_id, per_domain in busiest:
        total = sum(per_domain.values())
        best = by_profile[worker_id].best_domains(1)[0]
        share = per_domain.get(best, 0) / total
        print(
            f"  {worker_id}: {total} answers, {share:.0%} in {best}"
        )


if __name__ == "__main__":
    main()
