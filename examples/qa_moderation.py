"""QA moderation: the paper's YahooQA scenario, all approaches compared.

Crowdsources "does this answer address the question?" judgements across
six topical domains (FIFA, Books & Authors, Diet & Fitness, Home
Schooling, Hunting, Philosophy) and compares iCrowd with the paper's
three baselines on the same simulated crowd — a miniature Figure 9.

Run:  python examples/qa_moderation.py
"""

from repro.experiments import make_setup
from repro.experiments.runner import run_approach

APPROACHES = ["RandomMV", "RandomEM", "AvgAccPV", "iCrowd"]


def main() -> None:
    setup = make_setup("yahooqa", seed=2026)
    domains = setup.tasks.domains()
    print(
        f"workload: {len(setup.tasks)} question-answer judgements, "
        f"{len(domains)} domains, {len(setup.profiles)} workers"
    )
    print(f"shared qualification tasks: {list(setup.qualification_tasks)}\n")

    header = ["approach"] + [d[:10] for d in domains] + ["ALL"]
    print("".join(h.ljust(12) for h in header))
    for approach in APPROACHES:
        result = run_approach(approach, setup, run_tag=f"qa-{approach}")
        cells = [approach] + [
            f"{result.domain_accuracy.get(d, 0):.3f}" for d in domains
        ] + [f"{result.overall_accuracy:.3f}"]
        print("".join(c.ljust(12) for c in cells))

    print(
        "\niCrowd's per-domain wins come from routing each question to "
        "workers with demonstrated accuracy on similar questions "
        "(graph-based estimation, Section 3 of the paper)."
    )


if __name__ == "__main__":
    main()
