"""Quickstart: run iCrowd end-to-end on a simulated crowd.

Builds a small ItemCompare-style workload, runs the full adaptive
pipeline (warm-up → graph-based estimation → adaptive assignment →
majority voting) against a simulated worker pool, and compares the
result quality with naive random assignment.

Run:  python examples/quickstart.py
"""

from repro.baselines import RandomMV
from repro.core import ICrowd, ICrowdConfig
from repro.core.config import GraphConfig
from repro.datasets import make_itemcompare
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool, generate_profiles


def main() -> None:
    # 1. A workload: 120 comparison microtasks over 4 domains.
    tasks = make_itemcompare(seed=42, tasks_per_domain=30)
    print(f"workload: {len(tasks)} microtasks, domains {tasks.domains()}")

    # 2. A simulated crowd with domain-diverse accuracy (Figure 6).
    profiles = generate_profiles(tasks.domains(), num_workers=24, seed=42)

    # 3. iCrowd with the paper's defaults (alpha=1, k=3, Q=10); Jaccard
    #    similarity keeps the quickstart fast.
    config = ICrowdConfig(
        graph=GraphConfig(measure="jaccard", threshold=0.3), seed=42
    )
    icrowd = ICrowd(tasks, config)
    print(f"qualification tasks (Algorithm 4): {icrowd.qualification_tasks}")

    report = SimulatedPlatform(
        tasks, WorkerPool(profiles, seed=42), icrowd
    ).run()
    exclude = set(icrowd.qualification_tasks)
    print(
        f"iCrowd   : accuracy {report.accuracy(tasks, exclude=exclude):.3f} "
        f"({report.num_answers} answers, ${report.total_cost:.2f}, "
        f"{len(report.rejected_workers)} workers rejected in warm-up)"
    )

    # 4. Baseline: random assignment + majority voting on the same crowd.
    random_policy = RandomMV(
        tasks, k=3, seed=42, excluded_tasks=list(exclude)
    )
    random_report = SimulatedPlatform(
        tasks, WorkerPool(profiles, seed=43), random_policy
    ).run()
    print(
        f"RandomMV : accuracy "
        f"{random_report.accuracy(tasks, exclude=exclude):.3f}"
    )

    print("\nper-domain accuracy (iCrowd):")
    for domain, acc in report.accuracy_by_domain(
        tasks, exclude=exclude
    ).items():
        print(f"  {domain:<10} {acc:.3f}")


if __name__ == "__main__":
    main()
