"""Scalability: indexed assignment over hundreds of thousands of tasks.

Reproduces the regime of the paper's Figure 10: a similarity graph with
a bounded neighbour count, grown in steps, with per-request assignment
work that depends on the local neighbourhood rather than |T| — so the
elapsed time for a fixed batch of requests grows sub-linearly.

Run:  python examples/scalability_demo.py
"""

import time

from repro.core.indexes import ScalableAssigner
from repro.experiments.figures import _random_normalized_graph
from repro.utils.rng import spawn_rng

SIZES = [25_000, 50_000, 100_000, 200_000]
MAX_NEIGHBORS = 40
REQUESTS = 2_000
WORKERS = 50


def main() -> None:
    print(
        f"{REQUESTS} assignment requests against growing task sets "
        f"(max {MAX_NEIGHBORS} neighbours per task, {WORKERS} workers)\n"
    )
    print(f"{'# microtasks':<15}{'build graph':<14}{'assign':<12}"
          f"{'per request':<14}")
    for num_tasks in SIZES:
        t0 = time.perf_counter()
        normalized = _random_normalized_graph(
            num_tasks, MAX_NEIGHBORS, seed=1
        )
        build_elapsed = time.perf_counter() - t0

        assigner = ScalableAssigner(normalized, damping=0.5, k=3)
        rng = spawn_rng(1, f"demo-{num_tasks}")
        t0 = time.perf_counter()
        for r in range(REQUESTS):
            worker = f"w{r % WORKERS}"
            task = assigner.request(worker)
            if task is None:
                break
            assigner.answer(worker, task, float(rng.random()))
        assign_elapsed = time.perf_counter() - t0
        print(
            f"{num_tasks:<15,}{build_elapsed:<14.2f}"
            f"{assign_elapsed:<12.3f}"
            f"{assign_elapsed / REQUESTS * 1e3:<14.3f}ms"
        )

    print(
        "\nassignment time stays nearly flat as |T| grows 8x — the "
        "sub-linear shape of the paper's Figure 10."
    )


if __name__ == "__main__":
    main()
