"""repro — a reproduction of *iCrowd: An Adaptive Crowdsourcing
Framework* (Fan, Li, Ooi, Tan, Feng; SIGMOD 2015).

Public surface:

- :mod:`repro.core` — the paper's contribution: graph-based accuracy
  estimation, adaptive assignment, qualification selection, and the
  :class:`repro.core.ICrowd` orchestrator.
- :mod:`repro.platform` — a simulated MTurk-style platform.
- :mod:`repro.workers` — simulated workers with domain-diverse accuracy.
- :mod:`repro.datasets` — synthetic YahooQA / ItemCompare corpora.
- :mod:`repro.aggregation` — majority voting, Dawid–Skene EM,
  probabilistic verification.
- :mod:`repro.baselines` — RandomMV, RandomEM, AvgAccPV, QF-Only,
  BestEffort.
- :mod:`repro.experiments` — runners regenerating every table/figure.

Quickstart::

    from repro.core import ICrowd, ICrowdConfig
    from repro.datasets import make_itemcompare
    from repro.platform import SimulatedPlatform
    from repro.workers import WorkerPool, generate_profiles

    tasks = make_itemcompare(seed=7)
    pool = WorkerPool(generate_profiles(tasks.domains(), 53, seed=7))
    icrowd = ICrowd(tasks, ICrowdConfig.paper_defaults())
    report = SimulatedPlatform(tasks, pool, icrowd).run()
    print(report.accuracy(tasks, exclude=set(icrowd.qualification_tasks)))
"""

__version__ = "1.0.0"

from repro.core import ICrowd, ICrowdConfig

__all__ = ["ICrowd", "ICrowdConfig", "__version__"]
