"""Answer-aggregation substrate.

The paper's baselines aggregate redundant answers three ways:

- **majority voting** (RandomMV and iCrowd's consensus rule),
- **Dawid–Skene EM** [31, 8] (RandomEM): jointly estimates worker
  confusion matrices and task truths,
- **probabilistic verification** [22] (AvgAccPV): Bayesian product of
  per-worker accuracies from gold-injected estimates.
"""

from repro.aggregation.majority import majority_vote, weighted_majority_vote
from repro.aggregation.em import DawidSkene, DawidSkeneResult
from repro.aggregation.pv import probabilistic_verification

__all__ = [
    "DawidSkene",
    "DawidSkeneResult",
    "majority_vote",
    "probabilistic_verification",
    "weighted_majority_vote",
]
