"""Dawid–Skene EM aggregation (the paper's RandomEM baseline).

Implements the classic maximum-likelihood estimation of observer error
rates (Dawid & Skene 1979, cited as [8]; Sheng et al. 2008 as [31]) for
binary tasks:

- **E step** — posterior P(truth_t = YES) from current worker confusion
  matrices and the class prior;
- **M step** — re-estimate each worker's 2×2 confusion matrix and the
  prior from the posteriors.

Initialisation follows the standard majority-vote soft start.  Laplace
smoothing keeps confusion matrices away from 0/1 so the iteration never
degenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from repro.core.types import Answer, Label, TaskId, WorkerId


@dataclass
class DawidSkeneResult:
    """Converged EM output."""

    #: Posterior probability that each task's truth is YES.
    posterior_yes: dict[TaskId, float]
    #: Per-worker 2×2 confusion matrices: ``[true][observed]``.
    confusion: dict[WorkerId, np.ndarray]
    #: Estimated class prior P(truth = YES).
    prior_yes: float
    #: Iterations until convergence (or the cap).
    iterations: int

    def predictions(self) -> dict[TaskId, Label]:
        """MAP label per task (ties toward NO)."""
        return {
            t: Label.YES if p > 0.5 else Label.NO
            for t, p in self.posterior_yes.items()
        }

    def worker_accuracy(self, worker_id: WorkerId) -> float:
        """Prior-weighted diagonal of the confusion matrix."""
        matrix = self.confusion[worker_id]
        return float(
            self.prior_yes * matrix[1, 1] + (1 - self.prior_yes) * matrix[0, 0]
        )


class DawidSkene:
    """Binary Dawid–Skene EM estimator.

    Parameters
    ----------
    max_iter:
        EM iteration cap.
    tol:
        Convergence threshold on the max posterior change.
    smoothing:
        Laplace pseudo-count for confusion-matrix rows.
    """

    def __init__(
        self, max_iter: int = 100, tol: float = 1e-6, smoothing: float = 0.01
    ) -> None:
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        if tol <= 0:
            raise ValueError("tol must be positive")
        if smoothing < 0:
            raise ValueError("smoothing must be >= 0")
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing

    def run(self, answers: Iterable[Answer]) -> DawidSkeneResult:
        """Run EM over a flat answer list."""
        answers = list(answers)
        if not answers:
            raise ValueError("Dawid-Skene needs at least one answer")
        tasks = sorted({a.task_id for a in answers})
        workers = sorted({a.worker_id for a in answers})
        t_index = {t: i for i, t in enumerate(tasks)}
        w_index = {w: i for i, w in enumerate(workers)}
        n_tasks, n_workers = len(tasks), len(workers)

        # per-task observation lists: (worker index, observed label)
        obs: list[list[tuple[int, int]]] = [[] for _ in range(n_tasks)]
        for answer in answers:
            obs[t_index[answer.task_id]].append(
                (w_index[answer.worker_id], int(answer.label))
            )

        # soft majority-vote initialisation of the posteriors
        posterior = np.empty(n_tasks)
        for ti, votes in enumerate(obs):
            yes = sum(1 for _, label in votes if label == 1)
            posterior[ti] = (yes + 0.5) / (len(votes) + 1.0)

        confusion = np.full((n_workers, 2, 2), 0.5)
        prior_yes = 0.5
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            # ---- M step: confusion matrices & prior from posteriors
            counts = np.full((n_workers, 2, 2), self.smoothing)
            for ti, votes in enumerate(obs):
                p_yes = posterior[ti]
                for wi, label in votes:
                    counts[wi, 1, label] += p_yes
                    counts[wi, 0, label] += 1.0 - p_yes
            confusion = counts / counts.sum(axis=2, keepdims=True)
            prior_yes = float(posterior.mean())
            prior_yes = min(max(prior_yes, 1e-6), 1 - 1e-6)

            # ---- E step: posteriors from confusion matrices
            new_posterior = np.empty(n_tasks)
            log_prior = np.log([1.0 - prior_yes, prior_yes])
            log_confusion = np.log(np.clip(confusion, 1e-12, None))
            for ti, votes in enumerate(obs):
                log_like = log_prior.copy()
                for wi, label in votes:
                    log_like[0] += log_confusion[wi, 0, label]
                    log_like[1] += log_confusion[wi, 1, label]
                shift = log_like.max()
                likes = np.exp(log_like - shift)
                new_posterior[ti] = likes[1] / likes.sum()

            delta = float(np.max(np.abs(new_posterior - posterior)))
            posterior = new_posterior
            if delta < self.tol:
                break

        return DawidSkeneResult(
            posterior_yes={t: float(posterior[t_index[t]]) for t in tasks},
            confusion={w: confusion[w_index[w]].copy() for w in workers},
            prior_yes=prior_yes,
            iterations=iterations,
        )


def em_aggregate(answers: Iterable[Answer]) -> dict[TaskId, Label]:
    """Convenience wrapper: run EM and return MAP labels."""
    return DawidSkene().run(answers).predictions()
