"""Majority voting aggregation (Section 2.1's voting scheme)."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.types import Answer, Label, TaskId, WorkerId


def majority_vote(
    answers: Iterable[Answer], tie_break: Label = Label.NO
) -> dict[TaskId, Label]:
    """Simple majority vote per task.

    The paper uses odd ``k`` so ties cannot occur in a completed task;
    for robustness incomplete/even vote sets break ties to ``tie_break``.
    """
    yes: dict[TaskId, int] = {}
    no: dict[TaskId, int] = {}
    for answer in answers:
        bucket = yes if answer.label is Label.YES else no
        bucket[answer.task_id] = bucket.get(answer.task_id, 0) + 1
    results: dict[TaskId, Label] = {}
    for task_id in sorted(set(yes) | set(no)):
        y = yes.get(task_id, 0)
        n = no.get(task_id, 0)
        if y > n:
            results[task_id] = Label.YES
        elif n > y:
            results[task_id] = Label.NO
        else:
            results[task_id] = tie_break
    return results


def weighted_majority_vote(
    answers: Iterable[Answer],
    weights: Mapping[WorkerId, float],
    default_weight: float = 0.5,
    tie_break: Label = Label.NO,
) -> dict[TaskId, Label]:
    """Majority vote with per-worker weights (e.g. estimated accuracy).

    Workers missing from ``weights`` contribute ``default_weight``.
    """
    score: dict[TaskId, float] = {}
    for answer in answers:
        weight = weights.get(answer.worker_id, default_weight)
        delta = weight if answer.label is Label.YES else -weight
        score[answer.task_id] = score.get(answer.task_id, 0.0) + delta
    results: dict[TaskId, Label] = {}
    for task_id, value in score.items():
        if value > 0:
            results[task_id] = Label.YES
        elif value < 0:
            results[task_id] = Label.NO
        else:
            results[task_id] = tie_break
    return results
