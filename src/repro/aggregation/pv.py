"""Probabilistic verification aggregation (CDAS, Liu et al. 2012 [22]).

The AvgAccPV baseline estimates a single average accuracy per worker
from gold-injected qualification tasks and aggregates answers with a
Bayesian product: assuming independent workers with accuracy ``p_w``,

    P(truth = YES | votes) ∝ Π_{w votes YES} p_w · Π_{w votes NO} (1 - p_w)

and symmetrically for NO; the higher posterior wins.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.core.types import Answer, Label, TaskId, WorkerId


def _clamp(p: float) -> float:
    return min(max(p, 1e-6), 1.0 - 1e-6)


def verification_posterior(
    votes: Iterable[tuple[Label, float]], prior_yes: float = 0.5
) -> float:
    """Posterior P(truth = YES) given ``(label, worker accuracy)`` votes."""
    log_yes = math.log(_clamp(prior_yes))
    log_no = math.log(_clamp(1.0 - prior_yes))
    for label, accuracy in votes:
        accuracy = _clamp(accuracy)
        if label is Label.YES:
            log_yes += math.log(accuracy)
            log_no += math.log(1.0 - accuracy)
        else:
            log_yes += math.log(1.0 - accuracy)
            log_no += math.log(accuracy)
    shift = max(log_yes, log_no)
    yes = math.exp(log_yes - shift)
    no = math.exp(log_no - shift)
    return yes / (yes + no)


def probabilistic_verification(
    answers: Iterable[Answer],
    accuracies: Mapping[WorkerId, float],
    default_accuracy: float = 0.5,
    prior_yes: float = 0.5,
) -> dict[TaskId, Label]:
    """Aggregate answers with the CDAS probabilistic-verification model.

    Parameters
    ----------
    answers:
        All collected answers.
    accuracies:
        Average per-worker accuracy (from gold qualification tasks).
    default_accuracy:
        Accuracy for workers without an estimate.
    prior_yes:
        Class prior on YES.
    """
    by_task: dict[TaskId, list[tuple[Label, float]]] = {}
    for answer in answers:
        accuracy = accuracies.get(answer.worker_id, default_accuracy)
        by_task.setdefault(answer.task_id, []).append(
            (answer.label, accuracy)
        )
    results: dict[TaskId, Label] = {}
    for task_id, votes in by_task.items():
        posterior = verification_posterior(votes, prior_yes=prior_yes)
        results[task_id] = Label.YES if posterior > 0.5 else Label.NO
    return results
