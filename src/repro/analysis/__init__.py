"""Repo-specific static analysis (``repro-lint``).

The determinism guarantees this repository makes — byte-identical
event logs under seeded chaos runs, recorder on/off identity, stable
Eq. 4 PPR estimates — are invariants of the *substrate*, not of any
single module.  One stray ``random.random()`` call, wall-clock read,
or set-ordering dependency silently breaks them.  This package
enforces the substrate statically, in two tiers:

- a fast single-pass AST linter with seven repo-specific rules
  (RL001…RL007), ``file:line`` diagnostics, and inline
  ``# repro-lint: disable=RLxxx`` suppressions;
- a two-pass interprocedural analyzer (``--deep``): pass 1 builds a
  whole-package symbol table and call graph, pass 2 runs CFG-based
  dataflow rules — RL1xx concurrency/resource-lifecycle, RL2xx
  RNG-stream discipline, RL3xx recorder threading, RL4xx lock
  discipline (order cycles, unlocked shared writes, blocking under a
  lock, check-then-act);
- a dynamic complement (``lint --race -- <pytest args>``): an
  Eraser-style lockset race sanitizer
  (:class:`repro.analysis.sanitizer.LockSanitizer`) that traces
  attribute writes in ``repro.platform``/``repro.obs`` at test time
  and reports write pairs no common lock protects.

Entry points:

- ``repro-icrowd lint [--deep] [--race] [paths...]`` (CLI subcommand),
- ``python tools/repro_lint.py ...`` (standalone, same options),
- :func:`repro.analysis.lint_paths` / :func:`lint_source` /
  :func:`deep_lint_paths` (library),
- :func:`repro.analysis.sanitized` / the ``race_sanitizer`` pytest
  fixture (``repro.analysis.pytest_race``) for in-test sanitizing.
"""

from repro.analysis.deep import deep_lint_paths, deep_lint_sources
from repro.analysis.deep_rules import DEEP_RULES
from repro.analysis.diagnostics import Diagnostic, format_diagnostic
from repro.analysis.linter import lint_file, lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.sanitizer import LockSanitizer, RaceReport, sanitized

__all__ = [
    "ALL_RULES",
    "DEEP_RULES",
    "Diagnostic",
    "LockSanitizer",
    "RaceReport",
    "Rule",
    "deep_lint_paths",
    "deep_lint_sources",
    "format_diagnostic",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sanitized",
]
