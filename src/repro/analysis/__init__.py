"""Repo-specific static analysis (``repro-lint``).

The determinism guarantees this repository makes — byte-identical
event logs under seeded chaos runs, recorder on/off identity, stable
Eq. 4 PPR estimates — are invariants of the *substrate*, not of any
single module.  One stray ``random.random()`` call, wall-clock read,
or set-ordering dependency silently breaks them.  This package
enforces the substrate statically: an AST pass with six repo-specific
rules (RL001…RL006), ``file:line`` diagnostics, and inline
``# repro-lint: disable=RLxxx`` suppressions.

Entry points:

- ``repro-icrowd lint [paths...]`` (CLI subcommand),
- ``python tools/repro_lint.py [paths...]`` (standalone),
- :func:`repro.analysis.lint_paths` / :func:`lint_source` (library).
"""

from repro.analysis.diagnostics import Diagnostic, format_diagnostic
from repro.analysis.linter import lint_file, lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "Rule",
    "format_diagnostic",
    "lint_file",
    "lint_paths",
    "lint_source",
]
