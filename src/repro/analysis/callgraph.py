"""Pass 1b of deep analysis: the whole-package call graph.

Built on top of the symbol table, the call graph records, for every
function in the package, which *internal* functions it calls (by
qualified name) and which *external* dotted names it invokes.  Four
resolution cases are handled, all import-alias aware:

- plain names: ``helper()`` → a module-level function of the same
  module, or a ``from mod import helper`` target,
- dotted names: ``ppr.push_sources()`` through ``import`` aliases,
- ``self.method()`` / ``cls.method()`` inside a class body → a method
  of the enclosing class,
- class constructors: ``PushKernel(...)`` resolves to
  ``PushKernel.__init__`` when the class is internal.

Resolution is deliberately conservative: anything the table cannot
pin down stays an *external* edge (or no edge at all), so downstream
rules never act on a guessed target.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.symbols import FunctionSymbol, ModuleSymbols, SymbolTable


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str  #: qualname of the enclosing function
    callee: str | None  #: resolved internal qualname (or None)
    external: str | None  #: dotted external target (or None)
    lineno: int
    col: int


class ModuleResolver:
    """Resolve names/calls of one module against the package table."""

    def __init__(self, symtab: SymbolTable, mod: ModuleSymbols) -> None:
        self._symtab = symtab
        self._module = mod.module
        self._aliases = dict(mod.imports)
        self._local_functions = {
            func.local_name: func
            for func in mod.functions
            if "." not in func.local_name and not func.is_nested
        }
        self._local_classes = {
            func.local_name.split(".", 1)[0]
            for func in mod.functions
            if "." in func.local_name
        }

    def dotted_name(self, expr: ast.expr) -> str | None:
        """Attribute/name chain as a dotted string through the aliases.

        A bare local name maps to itself; an aliased base expands to
        its import target (``npr.normal`` → ``numpy.random.normal``).
        """
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def _internal_target(self, dotted: str) -> FunctionSymbol | None:
        """Internal function/method/constructor for a dotted name."""
        func = self._symtab.function(dotted)
        if func is not None:
            return func
        if self._symtab.is_class(dotted):
            init = self._symtab.class_methods(dotted).get("__init__")
            return init
        return None

    def resolve_call(
        self, node: ast.Call, enclosing_class: str | None = None
    ) -> tuple[str | None, str | None]:
        """``(internal qualname, external dotted)`` for a call's target.

        Exactly one of the two is non-None for resolvable targets;
        both are None when the receiver is opaque (an arbitrary
        object's method, a call on a call result, …).
        """
        func = node.func
        # self.method() / cls.method() inside a class
        if (
            enclosing_class is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            class_qual = f"{self._module}.{enclosing_class}"
            method = self._symtab.class_methods(class_qual).get(func.attr)
            if method is not None:
                return method.qualname, None
            return None, None
        if isinstance(func, ast.Name):
            local = self._local_functions.get(func.id)
            if local is not None:
                return local.qualname, None
            if func.id in self._local_classes:
                class_qual = f"{self._module}.{func.id}"
                init = self._symtab.class_methods(class_qual).get("__init__")
                if init is not None:
                    return init.qualname, None
                return class_qual, None
            alias = self._aliases.get(func.id)
            if alias is None:
                return None, None
            internal = self._internal_target(alias)
            if internal is not None:
                return internal.qualname, None
            if self._symtab.is_class(alias):
                return alias, None
            return None, alias
        dotted = self.dotted_name(func)
        if dotted is None:
            return None, None
        internal = self._internal_target(dotted)
        if internal is not None:
            return internal.qualname, None
        if self._symtab.is_class(dotted):
            return dotted, None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ) and func.value.id not in self._aliases:
            # method on a local object — receiver type is unknown
            return None, None
        return None, dotted

    def alias_target(self, name: str) -> str | None:
        """Dotted import target a local name is an alias for, if any."""
        return self._aliases.get(name)

    def symbol_for(self, qualname: str) -> FunctionSymbol | None:
        """Function symbol for a resolved internal qualname."""
        return self._symtab.function(qualname)

    def resolve_reference(self, expr: ast.expr) -> str | None:
        """Internal qualname a bare (non-call) reference points at.

        Used for callables passed by value — ``initializer=_init`` or
        ``pool.map(_work, units)`` — and for reads of module globals.
        """
        if isinstance(expr, ast.Name):
            local = self._local_functions.get(expr.id)
            if local is not None:
                return local.qualname
            glob = self._symtab.global_symbol(f"{self._module}.{expr.id}")
            if glob is not None:
                return glob.qualname
            alias = self._aliases.get(expr.id)
            if alias is not None:
                if self._symtab.function(alias) is not None:
                    return alias
                if self._symtab.global_symbol(alias) is not None:
                    return alias
                if self._symtab.is_class(alias):
                    return alias
            return None
        dotted = self.dotted_name(expr)
        if dotted is None:
            return None
        if self._symtab.function(dotted) is not None:
            return dotted
        if self._symtab.global_symbol(dotted) is not None:
            return dotted
        if self._symtab.is_class(dotted):
            return dotted
        return None


def _function_defs(
    tree: ast.Module,
) -> list[tuple[str, str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every def in a module as ``(local name, enclosing class, node)``."""
    out: list[tuple[str, str | None, ast.FunctionDef | ast.AsyncFunctionDef]] = []

    def walk(
        body: list[ast.stmt], prefix: str, enclosing_class: str | None
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = f"{prefix}{stmt.name}"
                out.append((local, enclosing_class, stmt))
                walk(stmt.body, f"{local}.", enclosing_class)
            elif isinstance(stmt, ast.ClassDef):
                walk(stmt.body, f"{prefix}{stmt.name}.", stmt.name)

    walk(tree.body, "", None)
    return out


class CallGraph:
    """Package-wide caller → callee edges with per-site locations."""

    def __init__(self, sites: list[CallSite]) -> None:
        self._by_caller: dict[str, list[CallSite]] = {}
        self._callers_of: dict[str, list[str]] = {}
        for site in sites:
            self._by_caller.setdefault(site.caller, []).append(site)
            if site.callee is not None:
                self._callers_of.setdefault(site.callee, []).append(
                    site.caller
                )

    @classmethod
    def build(
        cls, symtab: SymbolTable, trees: dict[str, ast.Module]
    ) -> "CallGraph":
        sites: list[CallSite] = []
        for path in sorted(trees):
            mod = symtab.module_for_path(path)
            if mod is None:
                continue
            resolver = ModuleResolver(symtab, mod)
            for local, enclosing_class, func in _function_defs(trees[path]):
                caller = f"{mod.module}.{local}"
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    callee, external = resolver.resolve_call(
                        node, enclosing_class
                    )
                    if callee is None and external is None:
                        continue
                    sites.append(
                        CallSite(
                            caller=caller,
                            callee=callee,
                            external=external,
                            lineno=node.lineno,
                            col=node.col_offset,
                        )
                    )
        return cls(sites)

    def calls_from(self, qualname: str) -> list[CallSite]:
        return self._by_caller.get(qualname, [])

    def callers_of(self, qualname: str) -> list[str]:
        return sorted(set(self._callers_of.get(qualname, [])))

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Transitive internal-callee closure of ``roots`` (inclusive)."""
        seen = set(roots)
        frontier = sorted(roots)
        while frontier:
            nxt: list[str] = []
            for caller in frontier:
                for site in self.calls_from(caller):
                    if site.callee is not None and site.callee not in seen:
                        seen.add(site.callee)
                        nxt.append(site.callee)
            frontier = sorted(nxt)
        return seen
