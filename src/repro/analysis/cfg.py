"""Pass 2 substrate: a statement-level CFG with exception edges.

Every statement of a function body becomes one node; edges are split
into *normal* successors (sequential flow, branches, loop back-edges,
returns routed to EXIT) and *exceptional* successors (any statement
may raise — the edge lands on the innermost enclosing handler,
``finally`` block, or EXIT).  ``try`` statements are modelled with the
semantics the lifecycle rules need:

- an exception inside the body may land on *any* handler (matching is
  dynamic) or, unmatched, on the ``finally`` / outer target;
- ``finally`` runs on every exit — fall-through, exception, and
  ``return``/``break``/``continue`` — and afterwards resumes the
  corresponding continuation; return/break/continue continuations are
  added only when the protected region actually contains one, keeping
  spurious paths out of reachability queries;
- exceptions raised inside a handler or the ``finally`` body escape to
  the outer target.

The graph deliberately over-approximates raising: *every* statement
gets an exceptional edge.  For "must reach a release on all paths"
queries that is the safe direction — a path that cannot happen at
runtime may be reported, but no real leak path is missed.  The one
refinement is at the *acquisition* node itself: reachability queries
start from its normal successors only, because a constructor that
raises never produced a resource to leak.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass


@dataclass
class _Ctx:
    """Where control transfers out of the current region land."""

    exc: int
    ret: int
    brk: int | None
    cont: int | None


class CFG:
    """Control-flow graph of one function body."""

    ENTRY = 0
    EXIT = 1

    def __init__(self) -> None:
        self.stmts: list[ast.stmt | None] = [None, None]
        self.normal: list[set[int]] = [set(), set()]
        self.exc: list[set[int]] = [set(), set()]
        self._node_of: dict[int, int] = {}

    # -- construction --------------------------------------------------
    def _new_node(self, stmt: ast.stmt | None) -> int:
        node = len(self.stmts)
        self.stmts.append(stmt)
        self.normal.append(set())
        self.exc.append(set())
        if stmt is not None:
            self._node_of[id(stmt)] = node
        return node

    def node_of(self, stmt: ast.stmt) -> int | None:
        """CFG node holding ``stmt`` (None for unreached code)."""
        return self._node_of.get(id(stmt))

    @classmethod
    def build(
        cls, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> "CFG":
        cfg = cls()
        ctx = _Ctx(exc=cls.EXIT, ret=cls.EXIT, brk=None, cont=None)
        frontier = cfg._build_body(func.body, [cls.ENTRY], ctx)
        for node in frontier:
            cfg.normal[node].add(cls.EXIT)
        return cfg

    def _link(self, preds: list[int], node: int) -> None:
        for pred in preds:
            self.normal[pred].add(node)

    def _build_body(
        self, body: list[ast.stmt], preds: list[int], ctx: _Ctx
    ) -> list[int]:
        """Wire ``body`` after ``preds``; returns the fall-through
        frontier (empty when every path leaves the region)."""
        frontier = preds
        for stmt in body:
            if not frontier:
                break  # unreachable code — stop wiring
            frontier = self._build_stmt(stmt, frontier, ctx)
        return frontier

    def _build_stmt(
        self, stmt: ast.stmt, preds: list[int], ctx: _Ctx
    ) -> list[int]:
        node = self._new_node(stmt)
        self._link(preds, node)
        if not isinstance(stmt, ast.Try):
            # a Try header executes no code; giving it an exception
            # edge to the *outer* target would fabricate a path that
            # bypasses its own handlers/finally
            self.exc[node].add(ctx.exc)
        if isinstance(stmt, ast.Return):
            self.normal[node].add(ctx.ret)
            return []
        if isinstance(stmt, ast.Raise):
            return []
        if isinstance(stmt, ast.Break):
            if ctx.brk is not None:
                self.normal[node].add(ctx.brk)
            return []
        if isinstance(stmt, ast.Continue):
            if ctx.cont is not None:
                self.normal[node].add(ctx.cont)
            return []
        if isinstance(stmt, ast.If):
            then = self._build_body(stmt.body, [node], ctx)
            if stmt.orelse:
                other = self._build_body(stmt.orelse, [node], ctx)
            else:
                other = [node]
            return then + other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, node, ctx)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, node, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_body(stmt.body, [node], ctx)
        if isinstance(stmt, ast.Match):
            frontier: list[int] = []
            matched_all = False
            for case in stmt.cases:
                frontier.extend(self._build_body(case.body, [node], ctx))
                if isinstance(case.pattern, ast.MatchAs) and (
                    case.pattern.pattern is None
                ):
                    matched_all = True
            if not matched_all:
                frontier.append(node)
            return frontier
        return [node]

    def _build_loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        header: int,
        ctx: _Ctx,
    ) -> list[int]:
        after = self._new_node(None)  # join node for break / loop exit
        loop_ctx = _Ctx(exc=ctx.exc, ret=ctx.ret, brk=after, cont=header)
        body_exit = self._build_body(stmt.body, [header], loop_ctx)
        for node in body_exit:
            self.normal[node].add(header)  # back edge
        self.normal[header].add(after)  # condition false / exhausted
        frontier = [after]
        if stmt.orelse:
            frontier = self._build_body(stmt.orelse, [after], ctx)
        return frontier

    def _build_try(
        self, stmt: ast.Try, node: int, ctx: _Ctx
    ) -> list[int]:
        has_finally = bool(stmt.finalbody)
        fin_entry = self._new_node(None) if has_finally else None
        # exception landing for the protected body: a dispatch node
        # with edges to every handler (matching is dynamic) plus the
        # unmatched continuation (finally, else outer target).
        unmatched = fin_entry if fin_entry is not None else ctx.exc
        if stmt.handlers:
            dispatch = self._new_node(None)
            self.normal[dispatch].add(unmatched)
        else:
            dispatch = unmatched
        inner = _Ctx(
            exc=dispatch,
            ret=fin_entry if fin_entry is not None else ctx.ret,
            brk=fin_entry if fin_entry is not None else ctx.brk,
            cont=fin_entry if fin_entry is not None else ctx.cont,
        )
        body_exit = self._build_body(stmt.body, [node], inner)
        if stmt.orelse:
            # else runs after a clean body; its exceptions are NOT
            # caught by this try's handlers
            else_ctx = _Ctx(
                exc=unmatched, ret=inner.ret, brk=inner.brk, cont=inner.cont
            )
            body_exit = self._build_body(stmt.orelse, body_exit, else_ctx)
        handler_ctx = _Ctx(
            exc=unmatched, ret=inner.ret, brk=inner.brk, cont=inner.cont
        )
        handler_exits: list[int] = []
        for handler in stmt.handlers:
            entry = self._new_node(None)
            self.normal[dispatch].add(entry)
            handler_exits.extend(
                self._build_body(handler.body, [entry], handler_ctx)
            )
        if fin_entry is None:
            return body_exit + handler_exits
        for exit_node in body_exit + handler_exits:
            self.normal[exit_node].add(fin_entry)
        fin_ctx = _Ctx(exc=ctx.exc, ret=ctx.ret, brk=ctx.brk, cont=ctx.cont)
        fin_exit = self._build_body(stmt.finalbody, [fin_entry], fin_ctx)
        protected = stmt.body + [
            inner_stmt for handler in stmt.handlers
            for inner_stmt in handler.body
        ] + stmt.orelse
        has_return = any(
            isinstance(sub, ast.Return)
            for outer in protected
            for sub in ast.walk(outer)
        )
        has_break = any(
            isinstance(sub, ast.Break)
            for outer in protected
            for sub in ast.walk(outer)
        )
        has_continue = any(
            isinstance(sub, ast.Continue)
            for outer in protected
            for sub in ast.walk(outer)
        )
        for exit_node in fin_exit:
            # the finally may be running on behalf of an in-flight
            # exception / return / break — resume that transfer
            self.exc[exit_node].add(ctx.exc)
            if has_return:
                self.normal[exit_node].add(ctx.ret)
            if has_break and ctx.brk is not None:
                self.normal[exit_node].add(ctx.brk)
            if has_continue and ctx.cont is not None:
                self.normal[exit_node].add(ctx.cont)
        return fin_exit

    # -- queries -------------------------------------------------------
    def successors(self, node: int, include_exc: bool = True) -> set[int]:
        out = set(self.normal[node])
        if include_exc:
            out |= self.exc[node]
        return out

    def can_reach_exit_avoiding(
        self, start: int, blocked: set[int], skip_start_exc: bool = False
    ) -> bool:
        """Whether EXIT is reachable from ``start`` without *entering*
        any node in ``blocked``.

        With ``skip_start_exc`` the exceptional successors of ``start``
        itself are ignored (an acquisition that raises produced
        nothing).  ``blocked`` nodes terminate a path when reached —
        they count as handled regardless of what they do next.
        """
        seen: set[int] = set()
        stack = sorted(
            self.successors(start, include_exc=not skip_start_exc)
        )
        while stack:
            node = stack.pop()
            if node in seen or node in blocked:
                continue
            if node == self.EXIT:
                return True
            seen.add(node)
            stack.extend(self.successors(node))
        return False
