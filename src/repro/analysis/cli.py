"""Argument handling for ``repro-icrowd lint`` / ``tools/repro_lint.py``.

Kept separate from :mod:`repro.cli` so the standalone entry point can
run without importing the experiment stack (numpy/scipy load lazily
elsewhere; the linter itself is stdlib-only).
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro.analysis.diagnostics import format_diagnostic
from repro.analysis.linter import lint_paths
from repro.analysis.rules import ALL_RULES


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entries)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "github"],
        default="text",
        dest="fmt",
        help="diagnostic format: human text or GitHub annotations",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed options; returns the exit code."""
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<22} {rule.summary}")
        return 0
    select = (
        frozenset(c.strip().upper() for c in args.select.split(",") if c.strip())
        if args.select
        else None
    )
    try:
        diagnostics = lint_paths(list(args.paths), select)
    except ValueError as exc:
        print(f"repro-lint: {exc}")
        return 2
    for diag in diagnostics:
        print(format_diagnostic(diag, args.fmt))
    if diagnostics:
        if args.fmt == "text":
            plural = "s" if len(diagnostics) != 1 else ""
            print(f"repro-lint: {len(diagnostics)} violation{plural}")
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python tools/repro_lint.py``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism linter for the iCrowd reproduction "
            "(rules RL001-RL006; see DESIGN.md §8)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(list(argv) if argv is not None else None))
