"""Argument handling for ``repro-icrowd lint`` / ``tools/repro_lint.py``.

Kept separate from :mod:`repro.cli` so the standalone entry point can
run without importing the experiment stack (numpy/scipy load lazily
elsewhere; the linter itself is stdlib-only).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.deep_rules import DEEP_RULES, DEEP_RULE_CODES
from repro.analysis.diagnostics import format_diagnostic
from repro.analysis.linter import lint_paths
from repro.analysis.rules import ALL_RULES, RULE_CODES, Rule

#: Family display order and headings for ``--list-rules``.
_FAMILY_TITLES: tuple[tuple[str, str], ...] = (
    ("syntactic", "RL0xx syntactic (single-pass)"),
    ("concurrency", "RL1xx concurrency & resource lifecycle"),
    ("rng", "RL2xx RNG-stream discipline"),
    ("recorder", "RL3xx recorder threading"),
    ("locking", "RL4xx lock discipline (deadlocks, locksets, atomicity)"),
)


def split_forwarded_args(
    argv: Sequence[str] | None,
) -> tuple[list[str], list[str]]:
    """Split ``lint --race -- <pytest args>`` at the first ``--``.

    Returns ``(own argv, forwarded argv)``; with no ``--`` everything
    stays in the first element.  ``None`` reads ``sys.argv[1:]`` so
    both entry points can delegate verbatim.
    """
    if argv is None:
        argv = sys.argv[1:]
    own = list(argv)
    if "--" in own:
        split = own.index("--")
        return own[:split], own[split + 1 :]
    return own, []


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entries)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "github"],
        default="text",
        dest="fmt",
        help="diagnostic format: human text or GitHub annotations",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the two-pass interprocedural rules "
        "(RL1xx concurrency, RL2xx RNG, RL3xx recorder, "
        "RL4xx lock discipline)",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help="run the dynamic lockset race sanitizer instead of the "
        "static rules: forwards everything after -- to pytest with "
        "the repro.analysis.pytest_race plugin enabled",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the deep per-file pass on N worker processes "
        "(default: 1, in-process)",
    )
    parser.add_argument(
        "--symtab-cache",
        default=None,
        metavar="PATH",
        help="JSON cache for the deep pass-1 symbol table; files "
        "whose content hash is unchanged skip re-extraction",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (grouped by family) and exit",
    )


def _print_rules() -> None:
    rules: tuple[Rule, ...] = ALL_RULES + DEEP_RULES
    for family, title in _FAMILY_TITLES:
        members = [rule for rule in rules if rule.family == family]
        if not members:
            continue
        print(title)
        for rule in members:
            flag = "--deep" if rule.deep else "      "
            print(f"  {rule.code}  {flag}  {rule.name:<22} {rule.summary}")


def run_lint(
    args: argparse.Namespace, forwarded: Sequence[str] | None = None
) -> int:
    """Execute a lint run from parsed options; returns the exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    if getattr(args, "race", False):
        from repro.analysis.sanitizer import run_race_command

        return run_race_command(list(forwarded or []))
    select = (
        frozenset(c.strip().upper() for c in args.select.split(",") if c.strip())
        if args.select
        else None
    )
    if select is not None:
        unknown = select - (RULE_CODES | DEEP_RULE_CODES)
        if unknown:
            print(f"repro-lint: unknown rule codes: {sorted(unknown)}")
            return 2
        deep_only = select - RULE_CODES
        if deep_only and not args.deep:
            print(
                "repro-lint: rules "
                f"{', '.join(sorted(deep_only))} need --deep"
            )
            return 2
    fast_select = select & RULE_CODES if select is not None else None
    try:
        diagnostics = lint_paths(list(args.paths), fast_select)
    except ValueError as exc:
        print(f"repro-lint: {exc}")
        return 2
    if args.deep:
        from repro.analysis.deep import deep_lint_paths

        diagnostics.extend(
            deep_lint_paths(
                list(args.paths),
                select=select,
                cache_path=args.symtab_cache,
                jobs=max(1, args.jobs),
            )
        )
        diagnostics.sort()
    for diag in diagnostics:
        print(format_diagnostic(diag, args.fmt))
    if diagnostics:
        if args.fmt == "text":
            plural = "s" if len(diagnostics) != 1 else ""
            print(f"repro-lint: {len(diagnostics)} violation{plural}")
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python tools/repro_lint.py``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism linter for the iCrowd reproduction "
            "(RL001-RL007 single-pass; RL1xx/RL2xx/RL3xx/RL4xx with "
            "--deep; dynamic race sanitizer with --race; "
            "see DESIGN.md §8)"
        ),
    )
    add_lint_arguments(parser)
    own, forwarded = split_forwarded_args(argv)
    return run_lint(parser.parse_args(own), forwarded)
