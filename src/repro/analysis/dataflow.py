"""Pass 2 substrate: value-kind taint tracking and call summaries.

The deep rules reason about *what kind of value* a name holds — a
shared-memory handle, an RNG stream, a lock, a process pool — and
about how those values move through calls.  This module provides:

- :func:`taint_env` — a forward pass over one function assigning each
  local name a *kind* (seeded from parameters and constructor calls,
  propagated through assignments and internal-call return summaries);
- :func:`pool_boundary_args` — every expression that crosses a
  process boundary in a function (``ProcessPoolExecutor`` ``initargs``
  / ``initializer``, ``submit``/``map``/``starmap`` payloads);
- :class:`Summaries` + :func:`compute_summaries` — interprocedural
  fixpoint over the call graph: per-function *return kinds*
  (tuple-position aware, so ``arrays, segments = _attach(...)`` taints
  the right target) and *boundary parameters* (parameters that flow,
  possibly transitively, into a process boundary).

Everything here is deliberately flow-insensitive within a statement
and conservative across unknown calls: a kind is only ever assigned
when the constructor or summary is recognised, so the rules built on
top act on facts, not guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import ModuleResolver
from repro.analysis.symbols import (
    RNG_CONSTRUCTORS,
    RNG_SHIM_PREFIX,
    FunctionSymbol,
)

#: Value kinds the deep rules distinguish.
KIND_SHM = "shm"
KIND_RNG = "rng"
KIND_LOCK = "lock"
KIND_SOCKET = "socket"
KIND_FILE = "file"
KIND_RECORDER = "recorder"
KIND_POOL = "pool"

#: External constructors → the kind of value they produce.
EXTERNAL_KINDS: dict[str, str] = {
    "multiprocessing.shared_memory.SharedMemory": KIND_SHM,
    "threading.Lock": KIND_LOCK,
    "threading.RLock": KIND_LOCK,
    "threading.Semaphore": KIND_LOCK,
    "threading.BoundedSemaphore": KIND_LOCK,
    "threading.Condition": KIND_LOCK,
    "threading.Event": KIND_LOCK,
    "multiprocessing.Lock": KIND_LOCK,
    "multiprocessing.RLock": KIND_LOCK,
    "socket.socket": KIND_SOCKET,
    "socket.create_connection": KIND_SOCKET,
    "concurrent.futures.ProcessPoolExecutor": KIND_POOL,
    "multiprocessing.Pool": KIND_POOL,
    "multiprocessing.pool.Pool": KIND_POOL,
}

#: Parameter names that carry a kind by repo convention.
PARAM_NAME_KINDS: dict[str, str] = {
    "rng": KIND_RNG,
    "recorder": KIND_RECORDER,
}

#: Annotation leaf names that carry a kind.
_ANNOTATION_KINDS: dict[str, str] = {
    "Generator": KIND_RNG,
    "Random": KIND_RNG,
    "RandomState": KIND_RNG,
    "Recorder": KIND_RECORDER,
    "SharedMemory": KIND_SHM,
}

#: ``pool.<method>`` names that ship their arguments to workers.
_POOL_SHIP_METHODS = frozenset({"submit", "map", "starmap", "apply_async"})


def external_call_kind(dotted: str) -> str | None:
    """Kind produced by an external constructor, if recognised."""
    kind = EXTERNAL_KINDS.get(dotted)
    if kind is not None:
        return kind
    if dotted in RNG_CONSTRUCTORS or dotted.startswith(RNG_SHIM_PREFIX):
        return KIND_RNG
    return None


@dataclass
class Summaries:
    """Interprocedural facts, one fixpoint over the call graph."""

    #: qualname → return kind: a single kind, or a tuple of per-element
    #: kinds for functions returning a literal tuple.
    returns: dict[str, object] = field(default_factory=dict)
    #: qualname → parameter names that reach a process boundary.
    boundary_params: dict[str, frozenset[str]] = field(default_factory=dict)

    def return_kind(self, qualname: str) -> object:
        return self.returns.get(qualname)


def _annotation_kind(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    node = annotation
    while isinstance(node, ast.Attribute):
        if node.attr in _ANNOTATION_KINDS:
            return _ANNOTATION_KINDS[node.attr]
        node = node.value
    if isinstance(node, ast.Name):
        return _ANNOTATION_KINDS.get(node.id)
    return None


def seed_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Initial taint environment from a function's signature."""
    env: dict[str, str] = {}
    args = func.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        kind = PARAM_NAME_KINDS.get(arg.arg) or _annotation_kind(
            arg.annotation
        )
        if kind is not None:
            env[arg.arg] = kind
    return env


def expr_kind(
    expr: ast.expr,
    env: dict[str, str],
    resolver: ModuleResolver,
    summaries: Summaries,
    enclosing_class: str | None = None,
) -> object:
    """Kind of value ``expr`` evaluates to (or a tuple of kinds)."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Tuple):
        kinds = tuple(
            expr_kind(elt, env, resolver, summaries, enclosing_class)
            for elt in expr.elts
        )
        return kinds if any(kind is not None for kind in kinds) else None
    if isinstance(expr, ast.IfExp):
        return expr_kind(
            expr.body, env, resolver, summaries, enclosing_class
        ) or expr_kind(
            expr.orelse, env, resolver, summaries, enclosing_class
        )
    if isinstance(expr, ast.Await):
        return expr_kind(
            expr.value, env, resolver, summaries, enclosing_class
        )
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id == "open":
            return KIND_FILE
        callee, external = resolver.resolve_call(expr, enclosing_class)
        if external is not None:
            return external_call_kind(external)
        if callee is not None:
            return summaries.return_kind(callee)
    return None


def _assign_kinds(
    target: ast.expr, kind: object, env: dict[str, str]
) -> None:
    """Bind an assignment target (possibly a tuple) to its kind(s)."""
    if isinstance(target, ast.Name):
        if isinstance(kind, str):
            env[target.id] = kind
        else:
            env.pop(target.id, None)
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        elements = target.elts
        if isinstance(kind, tuple) and len(kind) == len(elements):
            for elt, sub in zip(elements, kind):
                _assign_kinds(elt, sub, env)
        else:
            for elt in elements:
                _assign_kinds(elt, None, env)


def taint_env(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    resolver: ModuleResolver,
    summaries: Summaries,
    enclosing_class: str | None = None,
) -> dict[str, str]:
    """Name → kind after one forward pass over the function body.

    Statements are visited in source order (including nested blocks);
    a later re-assignment overwrites the kind.  This is flow-
    *insensitive* at join points — good enough for the acquisition /
    boundary patterns the rules target, where names are not reused
    across kinds.
    """
    env = seed_params(func)

    def visit(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                kind = expr_kind(
                    stmt.value, env, resolver, summaries, enclosing_class
                )
                for target in stmt.targets:
                    _assign_kinds(target, kind, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                kind = expr_kind(
                    stmt.value, env, resolver, summaries, enclosing_class
                ) or _annotation_kind(stmt.annotation)
                _assign_kinds(stmt.target, kind, env)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        kind = expr_kind(
                            item.context_expr,
                            env,
                            resolver,
                            summaries,
                            enclosing_class,
                        )
                        _assign_kinds(item.optional_vars, kind, env)
            visit(
                [
                    child
                    for child in ast.iter_child_nodes(stmt)
                    if isinstance(child, ast.stmt)
                    and not isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ]
            )

    visit(func.body)
    return env


@dataclass(frozen=True)
class BoundaryArg:
    """One expression that crosses a process boundary."""

    expr: ast.expr
    role: str  #: ``"payload"`` | ``"callable"``
    lineno: int
    col: int


def pool_boundary_args(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    env: dict[str, str],
    resolver: ModuleResolver,
    enclosing_class: str | None = None,
) -> list[BoundaryArg]:
    """Every process-boundary crossing inside ``func``.

    Two shapes are recognised: ``ProcessPoolExecutor(...)`` /
    ``multiprocessing.Pool(...)`` construction (``initializer`` is a
    *callable* crossing, each element of ``initargs`` a *payload*
    crossing) and ``submit``/``map``/``starmap`` calls on a value of
    pool kind (first argument *callable*, the rest *payload*).
    """
    out: list[BoundaryArg] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        _, external = resolver.resolve_call(node, enclosing_class)
        if external is not None and EXTERNAL_KINDS.get(external) == KIND_POOL:
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    out.append(
                        BoundaryArg(
                            keyword.value,
                            "callable",
                            keyword.value.lineno,
                            keyword.value.col_offset,
                        )
                    )
                elif keyword.arg == "initargs":
                    elements = (
                        keyword.value.elts
                        if isinstance(keyword.value, (ast.Tuple, ast.List))
                        else [keyword.value]
                    )
                    out.extend(
                        BoundaryArg(
                            element,
                            "payload",
                            element.lineno,
                            element.col_offset,
                        )
                        for element in elements
                    )
            continue
        func_expr = node.func
        if (
            isinstance(func_expr, ast.Attribute)
            and func_expr.attr in _POOL_SHIP_METHODS
            and isinstance(func_expr.value, ast.Name)
            and env.get(func_expr.value.id) == KIND_POOL
        ):
            if node.args:
                out.append(
                    BoundaryArg(
                        node.args[0],
                        "callable",
                        node.args[0].lineno,
                        node.args[0].col_offset,
                    )
                )
            for arg in node.args[1:]:
                out.append(
                    BoundaryArg(arg, "payload", arg.lineno, arg.col_offset)
                )
            for keyword in node.keywords:
                if keyword.arg is not None:
                    out.append(
                        BoundaryArg(
                            keyword.value,
                            "payload",
                            keyword.value.lineno,
                            keyword.value.col_offset,
                        )
                    )
    return out


@dataclass(frozen=True)
class FunctionUnit:
    """One analyzable function: symbol + AST + resolution context."""

    path: str
    symbol: FunctionSymbol
    node: ast.FunctionDef | ast.AsyncFunctionDef
    enclosing_class: str | None
    resolver: ModuleResolver


def _return_kind_of(
    unit: FunctionUnit, env: dict[str, str], summaries: Summaries
) -> object:
    """Kind(s) returned by a function under the current summaries."""
    result: object = None
    for node in ast.walk(unit.node):
        if isinstance(node, ast.Return) and node.value is not None:
            kind = expr_kind(
                node.value, env, unit.resolver, summaries,
                unit.enclosing_class,
            )
            if kind is not None and result is None:
                result = kind
    return result


def _boundary_params_of(
    unit: FunctionUnit, env: dict[str, str], summaries: Summaries
) -> frozenset[str]:
    """Parameters of ``unit`` that reach a process boundary."""
    params = set(unit.symbol.params) | set(unit.symbol.kwonly)
    hit: set[str] = set()
    boundary = pool_boundary_args(
        unit.node, env, unit.resolver, unit.enclosing_class
    )
    for crossing in boundary:
        for sub in ast.walk(crossing.expr):
            if isinstance(sub, ast.Name) and sub.id in params:
                hit.add(sub.id)
    # transitively: passing a param to an internal callee whose own
    # parameter (at that position / keyword) is boundary-flowing
    for node in ast.walk(unit.node):
        if not isinstance(node, ast.Call):
            continue
        callee, _ = unit.resolver.resolve_call(node, unit.enclosing_class)
        if callee is None:
            continue
        flows = summaries.boundary_params.get(callee)
        if not flows:
            continue
        callee_symbol = unit.resolver.symbol_for(callee)
        if callee_symbol is None:
            continue
        positional = list(callee_symbol.params)
        if callee_symbol.is_method and positional:
            positional = positional[1:]
        for offset, arg in enumerate(node.args):
            if (
                isinstance(arg, ast.Name)
                and arg.id in params
                and offset < len(positional)
                and positional[offset] in flows
            ):
                hit.add(arg.id)
        for keyword in node.keywords:
            if (
                keyword.arg is not None
                and keyword.arg in flows
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id in params
            ):
                hit.add(keyword.value.id)
    return frozenset(hit)


def compute_summaries(
    units: list[FunctionUnit], max_rounds: int = 10
) -> Summaries:
    """Fixpoint the per-function summaries over the call graph.

    Deterministic: units are processed in qualname order each round;
    the loop stops when a round changes nothing (or after
    ``max_rounds`` — summaries only ever grow, so early exit is safe,
    just less precise).
    """
    summaries = Summaries()
    ordered = sorted(units, key=lambda unit: unit.symbol.qualname)
    for _ in range(max_rounds):
        changed = False
        for unit in ordered:
            env = taint_env(
                unit.node, unit.resolver, summaries, unit.enclosing_class
            )
            returned = _return_kind_of(unit, env, summaries)
            if returned is not None and (
                summaries.returns.get(unit.symbol.qualname) != returned
            ):
                summaries.returns[unit.symbol.qualname] = returned
                changed = True
            flows = _boundary_params_of(unit, env, summaries)
            if flows and (
                summaries.boundary_params.get(unit.symbol.qualname)
                != flows
            ):
                summaries.boundary_params[unit.symbol.qualname] = flows
                changed = True
        if not changed:
            break
    return summaries
