"""The ``--deep`` driver: two passes over the whole package.

Pass 1 parses every file once and builds the package symbol table
(content-hash cached via ``--symtab-cache``) and the call graph.
Pass 2 computes interprocedural summaries, then runs the deep rule
families per file — optionally in parallel (``--jobs``): the symbol
table, summaries, and rule selection are shipped to each worker once
via the pool initializer, and workers re-parse their own files (ASTs
do not pickle; source text and dataclasses do).  Package-wide rules
(RL104, RL203) always run in the parent, which already holds every
tree.

Diagnostics reuse the fast path's machinery end to end: the same
:class:`~repro.analysis.diagnostics.Diagnostic` type, the same
``# repro-lint: disable=`` suppressions, the same output formats.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.analysis.callgraph import CallGraph, ModuleResolver, _function_defs
from repro.analysis.dataflow import FunctionUnit, Summaries, compute_summaries
from repro.analysis.deep_rules import (
    DEEP_RULE_CODES,
    run_function_rules,
    run_module_rules,
    run_package_rules,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.linter import _suppressions, discover
from repro.analysis.symbols import SymbolTable, build_symbol_table


def build_units(
    symtab: SymbolTable, trees: dict[str, ast.Module]
) -> list[FunctionUnit]:
    """Every function in the package as an analyzable unit."""
    units: list[FunctionUnit] = []
    for path in sorted(trees):
        units.extend(_file_units(symtab, path, trees[path]))
    return units


def _file_units(
    symtab: SymbolTable, path: str, tree: ast.Module
) -> list[FunctionUnit]:
    mod = symtab.module_for_path(path)
    if mod is None:
        return []
    resolver = ModuleResolver(symtab, mod)
    by_local = {func.local_name: func for func in mod.functions}
    units: list[FunctionUnit] = []
    for local, enclosing_class, node in _function_defs(tree):
        symbol = by_local.get(local)
        if symbol is None:
            continue
        units.append(
            FunctionUnit(
                path=path,
                symbol=symbol,
                node=node,
                enclosing_class=enclosing_class,
                resolver=resolver,
            )
        )
    return units


def _lint_one_file(
    symtab: SymbolTable,
    summaries: Summaries,
    select: frozenset[str],
    path: str,
    tree: ast.Module,
) -> list[Diagnostic]:
    """Per-file deep rules: module-level + one run per function."""
    mod = symtab.module_for_path(path)
    if mod is None:
        return []
    resolver = ModuleResolver(symtab, mod)
    out = run_module_rules(path, tree, resolver, select)
    for unit in _file_units(symtab, path, tree):
        out.extend(run_function_rules(unit, summaries, select))
    return out


#: Per-worker analysis context, installed once by the pool initializer.
_WORKER_CTX: dict[str, object] = {}


def _worker_init(
    symtab: SymbolTable,
    summaries: Summaries,
    select: frozenset[str],
) -> None:
    _WORKER_CTX["symtab"] = symtab
    _WORKER_CTX["summaries"] = summaries
    _WORKER_CTX["select"] = select


def _worker_lint(item: tuple[str, str]) -> list[Diagnostic]:
    path, source = item
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # the fast pass reports RL000 for this file
    symtab = _WORKER_CTX["symtab"]
    summaries = _WORKER_CTX["summaries"]
    select = _WORKER_CTX["select"]
    assert isinstance(symtab, SymbolTable)
    assert isinstance(summaries, Summaries)
    assert isinstance(select, frozenset)
    return _lint_one_file(symtab, summaries, select, path, tree)


def deep_lint_sources(
    sources: dict[str, str],
    select: frozenset[str] | None = None,
    cache_path: str | Path | None = None,
    jobs: int = 1,
) -> list[Diagnostic]:
    """Run the deep rules over a set of in-memory sources."""
    active = (
        select & DEEP_RULE_CODES if select is not None else DEEP_RULE_CODES
    )
    if not active:
        return []
    trees: dict[str, ast.Module] = {}
    for path in sorted(sources):
        try:
            trees[path] = ast.parse(sources[path], filename=path)
        except SyntaxError:
            continue  # the fast pass reports RL000 for this file
    parsed = {path: sources[path] for path in trees}
    symtab = build_symbol_table(parsed, trees, cache_path)
    graph = CallGraph.build(symtab, trees)
    units = build_units(symtab, trees)
    summaries = compute_summaries(units)
    diagnostics: list[Diagnostic] = []
    if jobs > 1:
        items = [(path, sources[path]) for path in sorted(trees)]
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(symtab, summaries, active),
        ) as pool:
            for batch in pool.map(_worker_lint, items):
                diagnostics.extend(batch)
    else:
        for path in sorted(trees):
            diagnostics.extend(
                _lint_one_file(symtab, summaries, active, path, trees[path])
            )
    diagnostics.extend(
        run_package_rules(symtab, graph, units, summaries, trees, active)
    )
    suppressions: dict[str, dict[int, frozenset[str]]] = {}
    kept: list[Diagnostic] = []
    for diag in diagnostics:
        per_line = suppressions.get(diag.path)
        if per_line is None:
            per_line = _suppressions(sources.get(diag.path, ""))
            suppressions[diag.path] = per_line
        if diag.code not in per_line.get(diag.line, frozenset()):
            kept.append(diag)
    return sorted(kept)


def deep_lint_paths(
    paths: list[str | Path],
    select: frozenset[str] | None = None,
    cache_path: str | Path | None = None,
    jobs: int = 1,
) -> list[Diagnostic]:
    """Run the deep rules over files/directories on disk."""
    sources: dict[str, str] = {}
    for path in discover(paths):
        sources[str(path)] = path.read_text(encoding="utf-8")
    return deep_lint_sources(
        sources, select=select, cache_path=cache_path, jobs=jobs
    )
