"""The deep (``--deep``) rule families: RL1xx / RL2xx / RL3xx / RL4xx.

Built on the two-pass substrate — symbol table and call graph from
pass 1, CFG + taint environments + interprocedural summaries in
pass 2:

========  ==========================================================
RL101     a ``SharedMemory`` acquisition must reach ``close()`` /
          ``unlink()`` (or transfer ownership) on **all** CFG paths,
          exception edges included
RL102     a monkeypatched module attribute (``orig = m.attr`` …
          ``m.attr = repl``) must be restored in a ``finally`` block
RL103     values shipped across a process boundary (``initargs``,
          ``submit``/``map`` payloads) must be picklable: no locks,
          sockets, files, shm handles, recorders, pools; worker
          callables must be module-level functions
RL104     a mutable module global written inside worker-reachable
          code and read outside it — per-process state does not
          propagate back across ``fork``
RL201     RNG streams must be constructed from an explicit seed
          (``default_rng()`` / ``Random()`` with no arguments draws
          OS entropy and breaks replay)
RL202     an RNG stream must not cross a process boundary — child
          streams replay the parent's draws; spawn per-worker
          streams from (seed, worker-tag) instead
RL203     a module-level RNG stream read from another module — one
          stream, one owner; inject the generator as a parameter
RL301     a function holding a ``recorder`` parameter calls an
          internal function that accepts one without passing it —
          the callee silently records nothing
RL4xx     lock-discipline rules (ordering cycles, unlocked shared
          writes, blocking under a lock, check-then-act) — see
          :mod:`repro.analysis.locks`
========  ==========================================================

All deep rules are scoped to product code (``repro/`` outside
``tests/``); RL2xx additionally exempts the seeding shim
(``repro/utils/rng.py``), whose whole job is constructing streams.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.cfg import CFG
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.callgraph import CallGraph, ModuleResolver, _function_defs
from repro.analysis.dataflow import (
    KIND_FILE,
    KIND_LOCK,
    KIND_POOL,
    KIND_RECORDER,
    KIND_RNG,
    KIND_SHM,
    KIND_SOCKET,
    FunctionUnit,
    Summaries,
    expr_kind,
    pool_boundary_args,
    taint_env,
)
from repro.analysis.locks import LOCK_RULES, run_lock_rules
from repro.analysis.rules import Rule, _in_numeric_scope, _is_rng_shim
from repro.analysis.symbols import RNG_CONSTRUCTORS, SymbolTable

DEEP_RULES: tuple[Rule, ...] = (
    Rule(
        "RL101",
        "shm-lifecycle",
        "SharedMemory acquisition may leak: close()/unlink() is not "
        "reached on every path (exception edges included)",
        family="concurrency",
        deep=True,
    ),
    Rule(
        "RL102",
        "monkeypatch-restore",
        "monkeypatched module attribute is not restored in a finally "
        "block; an exception leaves the patch installed forever",
        family="concurrency",
        deep=True,
    ),
    Rule(
        "RL103",
        "pool-pickle-safety",
        "unpicklable or process-local value (lock/socket/file/shm/"
        "recorder/pool) crosses a process boundary",
        family="concurrency",
        deep=True,
    ),
    Rule(
        "RL104",
        "fork-shared-global",
        "mutable module global written in worker processes and read "
        "in the parent; per-process writes never propagate back",
        family="concurrency",
        deep=True,
    ),
    Rule(
        "RL201",
        "rng-unseeded",
        "RNG stream constructed without an explicit seed; replay "
        "breaks — thread (seed, tag) through repro.utils.rng",
        family="rng",
        deep=True,
    ),
    Rule(
        "RL202",
        "rng-process-boundary",
        "RNG stream crosses a process boundary; child processes "
        "replay the parent's draws — spawn per-worker streams",
        family="rng",
        deep=True,
    ),
    Rule(
        "RL203",
        "rng-shared-module",
        "module-level RNG stream read from another module; one "
        "stream has one owner — inject the generator instead",
        family="rng",
        deep=True,
    ),
    Rule(
        "RL301",
        "recorder-dropped",
        "call drops the in-scope recorder even though the callee "
        "accepts one; pass recorder=recorder",
        family="recorder",
        deep=True,
    ),
    *LOCK_RULES,
)

DEEP_RULE_CODES = frozenset(rule.code for rule in DEEP_RULES)

#: Methods that release / transfer a tracked handle (RL101).
_RELEASE_METHODS = frozenset({"close", "unlink", "shutdown", "terminate"})

#: Method calls that mutate their receiver in place (RL104 writes).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Payload kinds that must not cross a process boundary (RL103).
_UNPICKLABLE_KINDS = frozenset(
    {KIND_LOCK, KIND_SOCKET, KIND_FILE, KIND_SHM, KIND_RECORDER, KIND_POOL}
)

#: RNG constructors that accept (and require, for replay) a seed.
_SEEDABLE_RNG = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)


def in_deep_scope(path: str) -> bool:
    """Deep rules cover product code only, never tests/fixtures."""
    return _in_numeric_scope(path)


def _diag(
    path: str, node: ast.AST, code: str, message: str
) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def _own_statements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.stmt]:
    """Every statement of ``func`` excluding nested def/class bodies.

    Mirrors the CFG's view: a nested ``def`` is one opaque statement.
    """
    out: list[ast.stmt] = []

    def visit(body: list[ast.stmt]) -> None:
        for stmt in body:
            out.append(stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(stmt, attr, None)
                if child:
                    visit(child)
            for handler in getattr(stmt, "handlers", []):
                visit(handler.body)
            for case in getattr(stmt, "cases", []):
                visit(case.body)

    visit(func.body)
    return out


def _header_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes belonging to ``stmt``'s *own* CFG node.

    For compound statements only the header expressions count — body
    statements have CFG nodes of their own.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.target)
        yield from ast.walk(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
    elif isinstance(
        stmt,
        (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
         ast.Match),
    ):
        return
    else:
        yield from ast.walk(stmt)


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


def _is_release_of(node: ast.AST, var: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RELEASE_METHODS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == var
    )


def _bare_name_args(call: ast.Call) -> Iterator[str]:
    """Names passed *by value* to a call (ownership may transfer)."""
    values = list(call.args) + [
        keyword.value for keyword in call.keywords
    ]
    for value in values:
        if isinstance(value, ast.Name):
            yield value.id
        elif isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if isinstance(element, ast.Name):
                    yield element.id


def _bare_positions(value: ast.expr) -> set[str]:
    """Names the *object itself* occupies in a value expression: the
    whole value, or an element of a tuple/list literal."""
    if isinstance(value, ast.Name):
        return {value.id}
    if isinstance(value, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in value.elts:
            out |= _bare_positions(element)
        return out
    return set()


def _stmt_escapes(stmt: ast.stmt, var: str) -> bool:
    """Whether ``stmt`` transfers ownership of ``var`` elsewhere.

    Ownership transfers: returning/yielding the handle itself,
    storing it into an attribute or subscript, or passing it (a bare
    name, possibly inside a tuple/list literal) to any call.  Mere
    attribute access (``seg.buf``) transfers nothing.
    """
    for node in _header_nodes(stmt):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and var in _bare_positions(value):
                return True
        if isinstance(node, ast.Call) and var in set(
            _bare_name_args(node)
        ):
            return True
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        if value is not None and any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in targets
        ):
            if var in _names_in(value):
                return True
    return False


def _captured_by_nested_def(
    func: ast.FunctionDef | ast.AsyncFunctionDef, var: str
) -> bool:
    for stmt in _own_statements(func):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if var in _names_in(stmt):
                return True
    return False


def _rl101_shm_lifecycle(
    unit: FunctionUnit, env: dict[str, str], summaries: Summaries
) -> list[Diagnostic]:
    statements = _own_statements(unit.node)
    acquisitions: list[tuple[ast.stmt, str]] = []
    # re-walk assignments with a *fresh* env so each acquisition site is
    # attributed to its own statement (the summary env is final-state)
    tracking: dict[str, str] = dict(env)
    for stmt in statements:
        if not isinstance(stmt, ast.Assign):
            continue
        kind = expr_kind(
            stmt.value, tracking, unit.resolver, summaries,
            unit.enclosing_class,
        )
        for target in stmt.targets:
            if isinstance(target, ast.Name) and kind == KIND_SHM:
                acquisitions.append((stmt, target.id))
            elif isinstance(target, ast.Tuple) and isinstance(kind, tuple):
                for element, sub in zip(target.elts, kind):
                    if isinstance(element, ast.Name) and sub == KIND_SHM:
                        acquisitions.append((stmt, element.id))
    if not acquisitions:
        return []
    cfg = CFG.build(unit.node)
    out: list[Diagnostic] = []
    for acq_stmt, var in acquisitions:
        if _captured_by_nested_def(unit.node, var):
            continue  # closure owns it now; lifetime is its problem
        start = cfg.node_of(acq_stmt)
        if start is None:
            continue  # statically unreachable
        blocked: set[int] = set()
        for stmt in statements:
            node_id = cfg.node_of(stmt)
            if node_id is None or stmt is acq_stmt:
                continue
            if any(
                _is_release_of(node, var) for node in _header_nodes(stmt)
            ) or _stmt_escapes(stmt, var):
                blocked.add(node_id)
        if cfg.can_reach_exit_avoiding(start, blocked, skip_start_exc=True):
            out.append(
                _diag(
                    unit.path,
                    acq_stmt,
                    "RL101",
                    f"shared-memory handle {var!r} may leak: a path "
                    "(exception edges included) reaches function exit "
                    "without close()/unlink() or an ownership "
                    "transfer; release it in a finally block",
                )
            )
    return out


def _attr_chain(expr: ast.expr) -> tuple[str, str] | None:
    """``(base name, raw dotted text)`` of an attribute chain."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return node.id, ".".join(reversed(parts))


def _rl102_monkeypatch_restore(unit: FunctionUnit) -> list[Diagnostic]:
    statements = _own_statements(unit.node)
    finally_stmts: set[int] = set()
    for stmt in statements:
        if isinstance(stmt, ast.Try):
            for inner in stmt.finalbody:
                for sub in ast.walk(inner):
                    if isinstance(sub, ast.stmt):
                        finally_stmts.add(id(sub))
    saved: dict[str, str] = {}  #: local name → saved attribute chain
    patches: list[tuple[ast.stmt, str]] = []
    restores: dict[str, list[int]] = {}  #: chain → ids of restore stmts

    def module_chain(expr: ast.expr) -> str | None:
        """Chain text when the base is an imported module — the
        monkeypatch shape; ``self.attr`` swaps are plain state."""
        parsed = _attr_chain(expr)
        if parsed is None:
            return None
        base, chain = parsed
        if unit.resolver.alias_target(base) is None:
            return None
        return chain

    for stmt in statements:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if isinstance(target, ast.Name) and isinstance(
            stmt.value, ast.Attribute
        ):
            chain = module_chain(stmt.value)
            if chain is not None:
                saved[target.id] = chain
            continue
        if isinstance(target, ast.Attribute):
            chain = module_chain(target)
            if chain is None:
                continue
            if (
                isinstance(stmt.value, ast.Name)
                and saved.get(stmt.value.id) == chain
            ):
                restores.setdefault(chain, []).append(id(stmt))
            elif chain in set(saved.values()):
                patches.append((stmt, chain))
    out: list[Diagnostic] = []
    for stmt, chain in patches:
        restored_in_finally = any(
            stmt_id in finally_stmts
            for stmt_id in restores.get(chain, [])
        )
        if not restored_in_finally:
            out.append(
                _diag(
                    unit.path,
                    stmt,
                    "RL102",
                    f"monkeypatch of {chain!r} is not restored in a "
                    "finally block; an exception between patch and "
                    "restore leaves it installed permanently",
                )
            )
    return out


def _rl103_pool_pickle_safety(
    unit: FunctionUnit, env: dict[str, str], summaries: Summaries
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    crossings = pool_boundary_args(
        unit.node, env, unit.resolver, unit.enclosing_class
    )
    for crossing in crossings:
        if crossing.role == "callable":
            if isinstance(crossing.expr, ast.Lambda):
                out.append(
                    _diag(
                        unit.path,
                        crossing.expr,
                        "RL103",
                        "lambda shipped as a worker callable; lambdas "
                        "do not pickle — use a module-level function",
                    )
                )
                continue
            nested_defs = {
                stmt.name
                for stmt in _own_statements(unit.node)
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            }
            if (
                isinstance(crossing.expr, ast.Name)
                and crossing.expr.id in nested_defs
            ):
                out.append(
                    _diag(
                        unit.path,
                        crossing.expr,
                        "RL103",
                        f"nested function {crossing.expr.id!r} shipped "
                        "as a worker callable; closures do not pickle "
                        "— use a module-level function",
                    )
                )
            continue
        kind = expr_kind(
            crossing.expr, env, unit.resolver, summaries,
            unit.enclosing_class,
        )
        kinds = kind if isinstance(kind, tuple) else (kind,)
        for sub in kinds:
            if isinstance(sub, str) and sub in _UNPICKLABLE_KINDS:
                out.append(
                    _diag(
                        unit.path,
                        crossing.expr,
                        "RL103",
                        f"value of kind {sub!r} crosses a process "
                        "boundary; it is process-local (or holds a "
                        "lock) and cannot be shipped — pass a "
                        "picklable spec and reconstruct in the worker",
                    )
                )
    return out


def _rl201_rng_unseeded(
    path: str,
    tree: ast.Module,
    resolver: ModuleResolver,
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        _, external = resolver.resolve_call(node, None)
        if external is None or external not in RNG_CONSTRUCTORS:
            continue
        if external == "random.SystemRandom":
            out.append(
                _diag(
                    path,
                    node,
                    "RL201",
                    "SystemRandom draws OS entropy and can never "
                    "replay; construct a seeded stream via "
                    "repro.utils.rng instead",
                )
            )
            continue
        if external not in _SEEDABLE_RNG:
            continue
        seedless = not node.args and not node.keywords
        none_seed = (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )
        if seedless or none_seed:
            out.append(
                _diag(
                    path,
                    node,
                    "RL201",
                    f"{external}() constructed without an explicit "
                    "seed; replay breaks — thread (seed, tag) through "
                    "repro.utils.rng.spawn_rng",
                )
            )
    return out


def _rl202_rng_process_boundary(
    unit: FunctionUnit, env: dict[str, str], summaries: Summaries
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for crossing in pool_boundary_args(
        unit.node, env, unit.resolver, unit.enclosing_class
    ):
        if crossing.role != "payload":
            continue
        kind = expr_kind(
            crossing.expr, env, unit.resolver, summaries,
            unit.enclosing_class,
        )
        kinds = kind if isinstance(kind, tuple) else (kind,)
        if KIND_RNG in kinds:
            out.append(
                _diag(
                    unit.path,
                    crossing.expr,
                    "RL202",
                    "RNG stream crosses a process boundary; every "
                    "child replays the same draws — ship (seed, "
                    "worker-tag) and spawn streams in the worker",
                )
            )
    # interprocedural: passing a stream to a callee whose parameter
    # flows (transitively) into a boundary
    for node in ast.walk(unit.node):
        if not isinstance(node, ast.Call):
            continue
        callee, _ = unit.resolver.resolve_call(
            node, unit.enclosing_class
        )
        if callee is None:
            continue
        flows = summaries.boundary_params.get(callee)
        if not flows:
            continue
        symbol = unit.resolver.symbol_for(callee)
        if symbol is None:
            continue
        positional = list(symbol.params)
        if symbol.is_method and positional:
            positional = positional[1:]
        flagged: list[ast.expr] = []
        for offset, arg in enumerate(node.args):
            if (
                offset < len(positional)
                and positional[offset] in flows
                and expr_kind(
                    arg, env, unit.resolver, summaries,
                    unit.enclosing_class,
                )
                == KIND_RNG
            ):
                flagged.append(arg)
        for keyword in node.keywords:
            if (
                keyword.arg in flows
                and expr_kind(
                    keyword.value, env, unit.resolver, summaries,
                    unit.enclosing_class,
                )
                == KIND_RNG
            ):
                flagged.append(keyword.value)
        for arg in flagged:
            out.append(
                _diag(
                    unit.path,
                    arg,
                    "RL202",
                    f"RNG stream flows into {callee}(), which ships "
                    "this parameter across a process boundary — "
                    "spawn per-worker streams instead",
                )
            )
    return out


def _rl301_recorder_dropped(
    unit: FunctionUnit,
) -> list[Diagnostic]:
    if not unit.symbol.accepts("recorder"):
        return []
    out: list[Diagnostic] = []
    for stmt in _own_statements(unit.node):
        for node in _header_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            callee, _ = unit.resolver.resolve_call(
                node, unit.enclosing_class
            )
            if callee is None or callee == unit.symbol.qualname:
                continue
            symbol = unit.resolver.symbol_for(callee)
            if symbol is None or not symbol.accepts("recorder"):
                continue
            if any(
                keyword.arg in (None, "recorder")
                for keyword in node.keywords
            ):
                continue
            passed_positionally = False
            if "recorder" in symbol.params:
                index = symbol.params.index("recorder")
                if symbol.is_method:
                    index -= 1
                passed_positionally = 0 <= index < len(node.args)
            if not passed_positionally:
                out.append(
                    _diag(
                        unit.path,
                        node,
                        "RL301",
                        f"call to {callee}() drops the in-scope "
                        "recorder; the callee accepts one and will "
                        "silently record nothing — pass "
                        "recorder=recorder",
                    )
                )
    return out


def run_function_rules(
    unit: FunctionUnit,
    summaries: Summaries,
    select: frozenset[str],
) -> list[Diagnostic]:
    """Per-function deep rules (RL101–RL103, RL202, RL301)."""
    if not in_deep_scope(unit.path):
        return []
    out: list[Diagnostic] = []
    needs_env = select & {"RL101", "RL103", "RL202"}
    env: dict[str, str] = {}
    if needs_env:
        env = taint_env(
            unit.node, unit.resolver, summaries, unit.enclosing_class
        )
    if "RL101" in select:
        out.extend(_rl101_shm_lifecycle(unit, env, summaries))
    if "RL102" in select:
        out.extend(_rl102_monkeypatch_restore(unit))
    if "RL103" in select:
        out.extend(_rl103_pool_pickle_safety(unit, env, summaries))
    if "RL202" in select and not _is_rng_shim(unit.path):
        out.extend(_rl202_rng_process_boundary(unit, env, summaries))
    if "RL301" in select:
        out.extend(_rl301_recorder_dropped(unit))
    return out


def run_module_rules(
    path: str,
    tree: ast.Module,
    resolver: ModuleResolver,
    select: frozenset[str],
) -> list[Diagnostic]:
    """Per-module deep rules (RL201 — module-level calls included)."""
    if not in_deep_scope(path) or _is_rng_shim(path):
        return []
    out: list[Diagnostic] = []
    if "RL201" in select:
        out.extend(_rl201_rng_unseeded(path, tree, resolver))
    return out


# ----------------------------------------------------------------------
# package-wide rules (RL104, RL203)
# ----------------------------------------------------------------------
def _local_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names bound locally in ``func`` (minus ``global`` declarations)."""
    args = func.args
    names: set[str] = {
        arg.arg
        for arg in args.posonlyargs + args.args + args.kwonlyargs
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    def bound_names(target: ast.expr) -> Iterator[str]:
        """Names a target expression *binds* — the base of a
        subscript/attribute store mutates an existing object and
        binds nothing."""
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from bound_names(element)
        elif isinstance(target, ast.Starred):
            yield from bound_names(target.value)

    declared_global: set[str] = set()
    for stmt in _own_statements(func):
        if isinstance(stmt, ast.Global):
            declared_global.update(stmt.names)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(bound_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(bound_names(stmt.target))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            names.update(bound_names(stmt.target))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    names.update(bound_names(item.optional_vars))
    return names - declared_global


def _global_accesses(
    unit: FunctionUnit, global_names: set[str]
) -> tuple[set[str], list[tuple[str, ast.AST]], set[str]]:
    """(reads, read sites, writes) of module globals inside ``unit``.

    ``global_names`` are qualnames of the globals under scrutiny; a
    bare name only matches when it is not shadowed by a local.
    """
    local = _local_names(unit.node)
    module = unit.symbol.module
    reads: set[str] = set()
    read_sites: list[tuple[str, ast.AST]] = []
    writes: set[str] = set()

    def qual_of(name: str) -> str | None:
        if name in local:
            return None
        candidate = f"{module}.{name}"
        return candidate if candidate in global_names else None

    for stmt in _own_statements(unit.node):
        for node in _header_nodes(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                qual = qual_of(node.id)
                if qual is not None:
                    reads.add(qual)
                    read_sites.append((qual, node))
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Name)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    qual = qual_of(receiver.id)
                    if qual is not None:
                        writes.add(qual)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and base is not target:
                    qual = qual_of(base.id)
                    if qual is not None:
                        writes.add(qual)
    return reads, read_sites, writes


def _worker_entry_points(
    units: list[FunctionUnit],
    env_of: dict[str, dict[str, str]],
) -> set[str]:
    """Qualnames shipped as pool callables anywhere in the package."""
    entries: set[str] = set()
    for unit in units:
        env = env_of.get(unit.symbol.qualname, {})
        for crossing in pool_boundary_args(
            unit.node, env, unit.resolver, unit.enclosing_class
        ):
            if crossing.role != "callable":
                continue
            target = unit.resolver.resolve_reference(crossing.expr)
            if target is not None:
                entries.add(target)
    return entries


def run_package_rules(
    symtab: SymbolTable,
    graph: CallGraph,
    units: list[FunctionUnit],
    summaries: Summaries,
    trees: dict[str, ast.Module],
    select: frozenset[str],
) -> list[Diagnostic]:
    """Whole-package deep rules (RL104, RL203, RL401–RL404)."""
    out: list[Diagnostic] = []
    out.extend(run_lock_rules(symtab, units, trees, summaries, select))
    product_units = [
        unit for unit in units if in_deep_scope(unit.path)
    ]
    if "RL104" in select:
        mutable_globals = {
            glob.qualname
            for mod in symtab.modules()
            if in_deep_scope(mod.path)
            for glob in mod.globals
            if glob.kind == "mutable"
        }
        if mutable_globals:
            env_of = {
                unit.symbol.qualname: taint_env(
                    unit.node, unit.resolver, summaries,
                    unit.enclosing_class,
                )
                for unit in product_units
            }
            workers = graph.reachable_from(
                _worker_entry_points(product_units, env_of)
            )
            writers: dict[str, set[str]] = {}
            readers: dict[str, list[tuple[FunctionUnit, ast.AST]]] = {}
            for unit in product_units:
                reads, read_sites, writes = _global_accesses(
                    unit, mutable_globals
                )
                for qual in writes:
                    writers.setdefault(qual, set()).add(
                        unit.symbol.qualname
                    )
                for qual, node in read_sites:
                    readers.setdefault(qual, []).append((unit, node))
            for qual in sorted(writers):
                worker_writers = sorted(writers[qual] & workers)
                if not worker_writers:
                    continue
                for unit, node in readers.get(qual, []):
                    if unit.symbol.qualname in workers:
                        continue
                    out.append(
                        _diag(
                            unit.path,
                            node,
                            "RL104",
                            f"mutable global {qual!r} is written in "
                            f"worker code ({worker_writers[0]}) but "
                            "read here in the parent process; "
                            "per-process writes never propagate back "
                            "across fork — return results instead",
                        )
                    )
    if "RL203" in select:
        rng_globals = {
            glob.qualname: glob
            for mod in symtab.modules()
            if in_deep_scope(mod.path) and not _is_rng_shim(mod.path)
            for glob in mod.globals
            if glob.kind == "rng"
        }
        for path in sorted(trees):
            mod = symtab.module_for_path(path)
            if mod is None or not in_deep_scope(path):
                continue
            resolver = ModuleResolver(symtab, mod)
            for local, enclosing_class, func in _function_defs(
                trees[path]
            ):
                for node in ast.walk(func):
                    if not isinstance(
                        node, (ast.Name, ast.Attribute)
                    ) or not isinstance(node.ctx, ast.Load):
                        continue
                    qual = resolver.resolve_reference(node)
                    glob = (
                        rng_globals.get(qual)
                        if qual is not None
                        else None
                    )
                    if glob is None or glob.module == mod.module:
                        continue
                    out.append(
                        _diag(
                            path,
                            node,
                            "RL203",
                            f"module-level RNG stream {qual!r} "
                            f"(owned by {glob.module}) is read from "
                            f"{mod.module}; one stream has one owner "
                            "— inject the generator as a parameter",
                        )
                    )
    return out
