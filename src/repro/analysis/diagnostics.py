"""Diagnostic records and output formatting for ``repro-lint``.

Two output formats are supported:

- ``text`` — the classic ``path:line:col: RLxxx message`` lines a
  human (or an editor's quickfix list) reads;
- ``github`` — GitHub Actions workflow commands
  (``::error file=…,line=…``) so violations surface as inline PR
  annotations when the ``static-analysis`` CI job runs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at a source location.

    Ordering is (path, line, col, code) so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str


def format_diagnostic(diag: Diagnostic, fmt: str = "text") -> str:
    """Render ``diag`` in the requested output format."""
    if fmt == "github":
        # GitHub strips %, CR and LF from workflow-command payloads;
        # escape them the way actions/toolkit does.
        message = (
            diag.message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        return (
            f"::error file={diag.path},line={diag.line},"
            f"col={diag.col},title=repro-lint {diag.code}::{message}"
        )
    return f"{diag.path}:{diag.line}:{diag.col}: {diag.code} {diag.message}"
