"""The ``repro-lint`` driver: file discovery, parsing, suppressions.

Suppressions are inline comments on the flagged line::

    value = weight == 0.0  # repro-lint: disable=RL004 -- exact sentinel

or standalone comments, which apply to the next code line::

    # repro-lint: disable=RL004 -- exact-zero guard before division
    if denominator == 0.0:
        ...

Multiple codes separate with commas; everything after ``--`` is a
human-readable reason (encouraged, not parsed).  A suppression applies
to the physical line the diagnostic points at, which for multi-line
statements is the line the offending expression *starts* on.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULE_CODES, run_rules

#: ``# repro-lint: disable=RL001,RL004 -- optional reason``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)

#: Directories never worth descending into.
_SKIP_DIRS = {
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", "build", "dist",
}


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> codes suppressed on that line.

    An inline comment suppresses its own line; a standalone comment
    (nothing but the comment on the line) suppresses the next line that
    holds code, so reasons can live above long statements.
    """
    lines = source.splitlines()
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
            line = token.start[0]
            before = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
            if not before.strip():  # standalone: target the next code line
                line += 1
                while line <= len(lines) and (
                    not lines[line - 1].strip()
                    or lines[line - 1].lstrip().startswith("#")
                ):
                    line += 1
            out[line] = out.get(line, frozenset()) | codes
    except tokenize.TokenizeError:
        pass  # parse errors are reported by lint_source itself
    return out


def lint_source(
    source: str,
    path: str,
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Lint one module's source text; ``path`` scopes path-aware rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="RL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    diagnostics = run_rules(tree, path, select)
    if not diagnostics:
        return []
    suppressed = _suppressions(source)
    kept = [
        diag
        for diag in diagnostics
        if diag.code not in suppressed.get(diag.line, frozenset())
    ]
    return sorted(kept)


def lint_file(
    path: str | Path,
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), select)


def discover(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                found.add(root)
            continue
        for candidate in root.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                found.add(candidate)
    return sorted(found)


def lint_paths(
    paths: list[str | Path],
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    if select is not None:
        unknown = select - RULE_CODES
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
    diagnostics: list[Diagnostic] = []
    for path in discover(paths):
        diagnostics.extend(lint_file(path, select))
    return sorted(diagnostics)
