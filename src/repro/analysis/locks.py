"""RL4xx lock-discipline rules: the concurrency-correctness tier.

The platform is an online serving loop — ``ThreadingHTTPServer``
handler threads mutate shared ledgers, the flight-recorder
:class:`~repro.platform.events.EventLog`, and recorder instruments
concurrently.  The determinism rules (RL0xx–RL3xx) are blind to the
defect class that dominates such code: data races, lock-ordering
deadlocks, and non-atomic check-then-act sequences.  This module
closes that gap with four interprocedural rules built on the deep
pipeline (symbol table → call graph → lock facts → fixpoints):

========  ==========================================================
RL401     inconsistent lock ordering: the interprocedural lock-order
          graph (edge A→B when B is acquired while A is held,
          directly or through a resolvable callee) contains a cycle
          — a potential deadlock
RL402     write to a shared attribute without the owning lock: an
          attribute whose other accesses hold a lock is written
          under none of those locks
RL403     lock held across a blocking boundary: ``time.sleep``,
          HTTP/socket calls, ``ProcessPoolExecutor`` shipping, or
          ``shared_memory`` attach while holding a lock
RL404     non-atomic check-then-act: an ``if`` tests a guarded
          attribute outside its lock while the matching update runs
          under the lock
========  ==========================================================

Lock identity is static, not dynamic: ``self._lock`` in class ``C``
of module ``m`` is the single lock ``m.C._lock`` (one lock per class
attribute — the usual one-instance-per-process shapes this repo
uses).  Held-sets are lexical (``with`` nesting plus linear
``acquire()``/``release()`` tracking within a block) and flow through
the call graph two ways:

- *entry locksets*: a private function's entry held-set is the
  intersection over all resolved internal call sites of the locks
  held there (public functions are pinned to the empty set — unknown
  external callers may hold nothing);
- *may-acquire* / *may-block* summaries: the union of locks a
  function may take, and whether it may hit a blocking boundary,
  propagated callee→caller to a fixpoint.

Known false-positive escapes (see DESIGN.md §8): locks reached
through aliases or data structures rather than ``self``/globals are
invisible; conditional ``acquire(timeout=...)`` is not tracked; a
private function also called from outside the package (e.g. tests)
may inherit an entry lockset it does not really have.  The shared
suppression syntax (``# repro-lint: disable=RL40x -- reason``)
applies at the diagnostic line as usual.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    KIND_LOCK,
    KIND_POOL,
    KIND_SOCKET,
    FunctionUnit,
    Summaries,
    taint_env,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import Rule, _in_numeric_scope
from repro.analysis.symbols import SymbolTable, module_name

LOCK_RULES: tuple[Rule, ...] = (
    Rule(
        "RL401",
        "lock-order-cycle",
        "inconsistent lock acquisition order across functions; the "
        "lock-order graph has a cycle — potential deadlock",
        family="locking",
        deep=True,
    ),
    Rule(
        "RL402",
        "unlocked-shared-write",
        "write to a shared attribute without the lock that guards "
        "its other accesses",
        family="locking",
        deep=True,
    ),
    Rule(
        "RL403",
        "blocking-under-lock",
        "blocking call (sleep / network / pool submit / shm attach) "
        "while holding a lock",
        family="locking",
        deep=True,
    ),
    Rule(
        "RL404",
        "check-then-act",
        "guarded attribute tested outside its lock but updated under "
        "it; the check-then-act pair is not atomic",
        family="locking",
        deep=True,
    ),
)

LOCK_RULE_CODES = frozenset(rule.code for rule in LOCK_RULES)

#: Constructors whose result is a mutex-like object acquired via
#: ``with`` (Event/Semaphore are excluded: not two-phase mutexes).
_LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Blocking externals (RL403) → what the call does.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "sleeps",
    "socket.create_connection": "opens a network connection",
    "urllib.request.urlopen": "performs a blocking HTTP request",
    "http.client.HTTPConnection": "opens an HTTP connection",
    "http.client.HTTPSConnection": "opens an HTTPS connection",
    "multiprocessing.shared_memory.SharedMemory": "attaches shared memory",
}

#: ``pool.<m>`` methods that ship work across the process boundary.
_POOL_SHIP_METHODS = frozenset({"submit", "map", "starmap", "apply_async"})

#: socket methods that block on the peer.
_SOCKET_BLOCK_METHODS = frozenset(
    {"accept", "connect", "recv", "recv_into", "sendall", "send", "makefile"}
)

#: Method names that mutate their receiver in place (RL402 writes).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Constructor methods whose self-attribute writes establish, rather
#: than race on, shared state.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

_FIXPOINT_ROUNDS = 20


def _short(lock: str) -> str:
    """Human-readable lock name: the last two dotted components."""
    return ".".join(lock.rsplit(".", 2)[-2:])


def _is_private(qualname: str) -> bool:
    leaf = qualname.rsplit(".", 1)[-1]
    return leaf.startswith("_") and not leaf.startswith("__")


def _self_base_attr(expr: ast.expr) -> str | None:
    """First attribute off ``self`` for a target/receiver chain.

    ``self.stats.issued`` → ``stats``; ``self._pending[key]`` →
    ``_pending``; anything not rooted at ``self`` → None.
    """
    node = expr
    attr: str | None = None
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            attr = node.attr
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self":
        return attr
    return None


@dataclass(frozen=True)
class _Access:
    """One read or write of a ``self`` attribute."""

    func: str  #: qualname of the enclosing function
    attr: str
    node: ast.AST  #: precise node for the diagnostic position
    held: frozenset[str]  #: lexically held locks at the access
    is_write: bool
    in_init: bool
    test_of: ast.If | None = None  #: the ``if`` whose test reads this


@dataclass
class _FunctionFacts:
    """Lock facts extracted from one function body."""

    unit: FunctionUnit
    class_key: str | None
    #: (node, lock acquired, locks held just before)
    acquires: list[tuple[ast.AST, str, frozenset[str]]] = field(
        default_factory=list
    )
    #: (node, internal callee qualname, locks held)
    calls: list[tuple[ast.AST, str, frozenset[str]]] = field(
        default_factory=list
    )
    #: (node, what the call does, locks held)
    blockers: list[tuple[ast.AST, str, frozenset[str]]] = field(
        default_factory=list
    )
    accesses: list[_Access] = field(default_factory=list)


class _FunctionScan:
    """Single lexical pass over one function collecting lock facts."""

    def __init__(
        self,
        analysis: LockAnalysis,
        unit: FunctionUnit,
        summaries: Summaries,
    ) -> None:
        self._analysis = analysis
        self._unit = unit
        self._module = unit.symbol.module
        self._qualname = unit.symbol.qualname
        self._in_init = (
            unit.symbol.local_name.rsplit(".", 1)[-1] in _INIT_METHODS
        )
        self._class_key = (
            f"{self._module}.{unit.enclosing_class}"
            if unit.enclosing_class is not None
            else None
        )
        self._env = taint_env(
            unit.node, unit.resolver, summaries, unit.enclosing_class
        )
        self.facts = _FunctionFacts(unit=unit, class_key=self._class_key)
        self._visit(unit.node.body, frozenset())

    # -- lock identity -------------------------------------------------
    def _lock_name(self, expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self._class_key is not None
        ):
            if expr.attr in self._analysis.lock_attrs.get(
                self._class_key, frozenset()
            ):
                return f"{self._class_key}.{expr.attr}"
            return None
        if isinstance(expr, ast.Name):
            if self._env.get(expr.id) == KIND_LOCK:
                return f"{self._qualname}.{expr.id}"
            dotted = f"{self._module}.{expr.id}"
            if dotted in self._analysis.lock_globals:
                return dotted
        return None

    # -- statement walk ------------------------------------------------
    def _visit(self, body: list[ast.stmt], held: frozenset[str]) -> None:
        # ``extra`` carries locks taken by a bare ``lock.acquire()``
        # statement for the remainder of this block (linear tracking).
        extra: set[str] = set()
        for stmt in body:
            here = held | frozenset(extra)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    self._scan_exprs(item.context_expr, here)
                    name = self._lock_name(item.context_expr)
                    if name is not None:
                        self.facts.acquires.append((stmt, name, here))
                        acquired.append(name)
                self._visit(stmt.body, here | frozenset(acquired))
            elif isinstance(stmt, ast.If):
                self._scan_exprs(stmt.test, here, test_of=stmt)
                self._visit(stmt.body, here)
                self._visit(stmt.orelse, here)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = (
                    stmt.test
                    if isinstance(stmt, ast.While)
                    else stmt.iter
                )
                self._scan_exprs(header, here)
                self._visit(stmt.body, here)
                self._visit(stmt.orelse, here)
            elif isinstance(stmt, ast.Try):
                self._visit(stmt.body, here)
                for handler in stmt.handlers:
                    self._visit(handler.body, here)
                self._visit(stmt.orelse, here)
                self._visit(stmt.finalbody, here)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested defs are separate analysis units
            else:
                self._track_acquire_release(stmt, here, extra)
                self._scan_exprs(stmt, here)

    def _track_acquire_release(
        self, stmt: ast.stmt, held: frozenset[str], extra: set[str]
    ) -> None:
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
        ):
            return
        method = stmt.value.func.attr
        if method not in ("acquire", "release"):
            return
        name = self._lock_name(stmt.value.func.value)
        if name is None:
            return
        if method == "acquire":
            self.facts.acquires.append((stmt, name, held))
            extra.add(name)
        else:
            extra.discard(name)

    # -- expression scan -----------------------------------------------
    def _scan_exprs(
        self,
        root: ast.AST,
        held: frozenset[str],
        test_of: ast.If | None = None,
    ) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute):
                self._record_attribute(node, held, test_of)
            elif isinstance(node, (ast.Subscript, ast.Delete)):
                self._record_subscript_write(node, held)
            elif isinstance(node, ast.Call):
                self._record_call(node, held)

    def _record_attribute(
        self,
        node: ast.Attribute,
        held: frozenset[str],
        test_of: ast.If | None,
    ) -> None:
        if self._class_key is None:
            return
        is_store = isinstance(node.ctx, (ast.Store, ast.Del))
        attr = (
            _self_base_attr(node)
            if is_store
            else (
                node.attr
                if isinstance(node.value, ast.Name)
                and node.value.id == "self"
                else None
            )
        )
        if attr is None or attr in self._analysis.lock_attrs.get(
            self._class_key, frozenset()
        ):
            return
        self.facts.accesses.append(
            _Access(
                func=self._qualname,
                attr=attr,
                node=node,
                held=held,
                is_write=is_store,
                in_init=self._in_init,
                test_of=test_of,
            )
        )

    def _record_subscript_write(
        self, node: ast.Subscript | ast.Delete, held: frozenset[str]
    ) -> None:
        if self._class_key is None:
            return
        targets = (
            node.targets
            if isinstance(node, ast.Delete)
            else ([node] if isinstance(node.ctx, (ast.Store, ast.Del)) else [])
        )
        for target in targets:
            attr = _self_base_attr(target)
            if attr is None or attr in self._analysis.lock_attrs.get(
                self._class_key, frozenset()
            ):
                continue
            self.facts.accesses.append(
                _Access(
                    func=self._qualname,
                    attr=attr,
                    node=target,
                    held=held,
                    is_write=True,
                    in_init=self._in_init,
                )
            )

    def _record_call(self, node: ast.Call, held: frozenset[str]) -> None:
        callee, external = self._unit.resolver.resolve_call(
            node, self._unit.enclosing_class
        )
        if callee is None and external is None:
            callee = self._resolve_attr_typed_call(node)
        if callee is not None:
            self.facts.calls.append((node, callee, held))
        if external is not None:
            reason = _BLOCKING_CALLS.get(external)
            if reason is not None:
                self.facts.blockers.append((node, reason, held))
        self._record_receiver_blocking(node, held)
        self._record_mutator_write(node, held)

    def _resolve_attr_typed_call(self, node: ast.Call) -> str | None:
        """Resolve ``self.<attr>.<method>()`` through the attr-type map."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and self._class_key is not None
        ):
            return None
        target_class = self._analysis.attr_types.get(
            self._class_key, {}
        ).get(func.value.attr)
        if target_class is None:
            return None
        method = self._analysis.symtab.class_methods(target_class).get(
            func.attr
        )
        return method.qualname if method is not None else None

    def _record_receiver_blocking(
        self, node: ast.Call, held: frozenset[str]
    ) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            return
        kind = self._env.get(func.value.id)
        if kind == KIND_POOL and func.attr in _POOL_SHIP_METHODS:
            self.facts.blockers.append(
                (node, "ships work to a process pool", held)
            )
        elif kind == KIND_SOCKET and func.attr in _SOCKET_BLOCK_METHODS:
            self.facts.blockers.append((node, "blocks on a socket", held))

    def _record_mutator_write(
        self, node: ast.Call, held: frozenset[str]
    ) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and self._class_key is not None
        ):
            return
        attr = _self_base_attr(func.value)
        if attr is None or attr in self._analysis.lock_attrs.get(
            self._class_key, frozenset()
        ):
            return
        self.facts.accesses.append(
            _Access(
                func=self._qualname,
                attr=attr,
                node=node,
                held=held,
                is_write=True,
                in_init=self._in_init,
            )
        )


class LockAnalysis:
    """Package-wide lock facts + the three interprocedural fixpoints."""

    def __init__(
        self,
        symtab: SymbolTable,
        units: list[FunctionUnit],
        trees: dict[str, ast.Module],
        summaries: Summaries,
    ) -> None:
        self.symtab = symtab
        #: class key (``module.Class``) → lock-valued attribute names
        self.lock_attrs: dict[str, frozenset[str]] = {}
        #: class key → attr name → class key of the attr's value
        self.attr_types: dict[str, dict[str, str]] = {}
        #: dotted names of module-level locks
        self.lock_globals: set[str] = set()
        self._units = sorted(units, key=lambda u: u.symbol.qualname)
        self._collect_globals_and_fields(trees)
        self._collect_instance_state()
        self.facts: dict[str, _FunctionFacts] = {}
        for unit in self._units:
            scan = _FunctionScan(self, unit, summaries)
            self.facts[unit.symbol.qualname] = scan.facts
        self.entry = self._entry_locksets()
        self.may_acquire = self._may_acquire()
        self.may_block = self._may_block()

    # -- fact collection -----------------------------------------------
    def _collect_globals_and_fields(
        self, trees: dict[str, ast.Module]
    ) -> None:
        """Module-level locks and dataclass lock fields, per tree."""
        resolvers = {
            unit.path: unit.resolver for unit in reversed(self._units)
        }
        for path in sorted(trees):
            resolver = resolvers.get(path)
            if resolver is None or not _in_numeric_scope(path):
                continue
            module = module_name(path)
            for stmt in trees[path].body:
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and self._is_lock_call(stmt.value, resolver)
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.lock_globals.add(f"{module}.{target.id}")
            for node in ast.walk(trees[path]):
                if isinstance(node, ast.ClassDef):
                    self._collect_class_fields(module, node, resolver)

    def _collect_class_fields(
        self, module: str, node: ast.ClassDef, resolver: object
    ) -> None:
        """Dataclass-style class-body lock fields."""
        attrs: set[str] = set()
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                continue
            if self._is_lock_field(stmt, resolver):
                attrs.add(stmt.target.id)
        if attrs:
            key = f"{module}.{node.name}"
            self.lock_attrs[key] = (
                self.lock_attrs.get(key, frozenset()) | frozenset(attrs)
            )

    def _is_lock_call(self, call: ast.Call, resolver: object) -> bool:
        dotted = resolver.dotted_name(call.func)  # type: ignore[attr-defined]
        return dotted in _LOCK_CONSTRUCTORS

    def _is_lock_field(self, stmt: ast.AnnAssign, resolver: object) -> bool:
        annotation = resolver.dotted_name(stmt.annotation)  # type: ignore[attr-defined]
        if annotation in _LOCK_CONSTRUCTORS:
            return True
        value = stmt.value
        if isinstance(value, ast.Call):
            if self._is_lock_call(value, resolver):
                return True
            dotted = resolver.dotted_name(value.func)  # type: ignore[attr-defined]
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "field":
                for keyword in value.keywords:
                    if keyword.arg != "default_factory":
                        continue
                    factory = resolver.dotted_name(  # type: ignore[attr-defined]
                        keyword.value
                    )
                    if factory in _LOCK_CONSTRUCTORS:
                        return True
                    # late-bound ``lambda: threading.Lock()`` factories
                    # (used so a sanitizer-patched constructor is seen)
                    if (
                        isinstance(keyword.value, ast.Lambda)
                        and isinstance(keyword.value.body, ast.Call)
                        and self._is_lock_call(
                            keyword.value.body, resolver
                        )
                    ):
                        return True
        return False

    def _collect_instance_state(self) -> None:
        """``self.X = threading.Lock()`` / ``self.X = Class(...)``."""
        for unit in self._units:
            if unit.enclosing_class is None:
                continue
            key = f"{unit.symbol.module}.{unit.enclosing_class}"
            for stmt in ast.walk(unit.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if isinstance(
                        stmt.value, ast.Call
                    ) and self._is_lock_call(stmt.value, unit.resolver):
                        self.lock_attrs[key] = self.lock_attrs.get(
                            key, frozenset()
                        ) | {target.attr}
                    elif isinstance(stmt.value, ast.Call):
                        callee, _ = unit.resolver.resolve_call(
                            stmt.value, unit.enclosing_class
                        )
                        if callee is None:
                            continue
                        if callee.endswith(".__init__"):
                            callee = callee[: -len(".__init__")]
                        if self.symtab.is_class(callee):
                            self.attr_types.setdefault(key, {})[
                                target.attr
                            ] = callee

    # -- fixpoints -------------------------------------------------------
    def effective_held(
        self, func: str, held: frozenset[str]
    ) -> frozenset[str]:
        return held | self.entry.get(func, frozenset())

    def _entry_locksets(self) -> dict[str, frozenset[str]]:
        """Must-held entry lockset for private functions (∩ over sites)."""
        sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
        for qualname, facts in self.facts.items():
            for _, callee, held in facts.calls:
                if callee in self.facts and _is_private(callee):
                    sites.setdefault(callee, []).append((qualname, held))
        entry: dict[str, frozenset[str]] = {}
        for _ in range(_FIXPOINT_ROUNDS):
            changed = False
            for callee in sorted(sites):
                merged: frozenset[str] | None = None
                for caller, held in sites[callee]:
                    eff = held | entry.get(caller, frozenset())
                    merged = eff if merged is None else merged & eff
                new = merged if merged is not None else frozenset()
                if entry.get(callee, frozenset()) != new:
                    entry[callee] = new
                    changed = True
            if not changed:
                break
        return {q: locks for q, locks in entry.items() if locks}

    def _may_acquire(self) -> dict[str, frozenset[str]]:
        out = {
            q: frozenset(name for _, name, _ in facts.acquires)
            for q, facts in self.facts.items()
        }
        for _ in range(_FIXPOINT_ROUNDS):
            changed = False
            for q in sorted(out):
                merged = out[q]
                for _, callee, _ in self.facts[q].calls:
                    merged = merged | out.get(callee, frozenset())
                if merged != out[q]:
                    out[q] = merged
                    changed = True
            if not changed:
                break
        return out

    def _may_block(self) -> dict[str, str]:
        out: dict[str, str] = {}
        for q, facts in self.facts.items():
            if facts.blockers:
                node, reason, _ = min(
                    facts.blockers, key=lambda b: (b[0].lineno, b[0].col_offset)
                )
                out[q] = reason
        for _ in range(_FIXPOINT_ROUNDS):
            changed = False
            for q in sorted(self.facts):
                if q in out:
                    continue
                for _, callee, _ in self.facts[q].calls:
                    if callee in out and callee != q:
                        out[q] = out[callee]
                        changed = True
                        break
            if not changed:
                break
        return out


def _diag(
    path: str, node: ast.AST, code: str, message: str
) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


# ----------------------------------------------------------------------
# RL401 — lock-order cycles
# ----------------------------------------------------------------------
def _lock_order_edges(
    analysis: LockAnalysis,
) -> dict[tuple[str, str], tuple[str, ast.AST]]:
    """Edge (held A, acquired B) → first site that witnesses it."""
    edges: dict[tuple[str, str], tuple[str, ast.AST]] = {}

    def add(a: str, b: str, path: str, node: ast.AST) -> None:
        if a == b:
            return
        key = (a, b)
        if key not in edges:
            edges[key] = (path, node)
        else:
            prev_path, prev = edges[key]
            if (path, node.lineno, getattr(node, "col_offset", 0)) < (
                prev_path,
                prev.lineno,
                getattr(prev, "col_offset", 0),
            ):
                edges[key] = (path, node)

    for q in sorted(analysis.facts):
        facts = analysis.facts[q]
        for node, acquired, held in facts.acquires:
            for a in analysis.effective_held(q, held):
                add(a, acquired, facts.unit.path, node)
        for node, callee, held in facts.calls:
            eff = analysis.effective_held(q, held)
            if not eff:
                continue
            for b in analysis.may_acquire.get(callee, frozenset()):
                if b in eff:
                    continue
                for a in eff:
                    add(a, b, facts.unit.path, node)
    return edges


def _strongly_connected(
    nodes: list[str], succ: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan SCCs, iterative, deterministic in ``nodes`` order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, list[str]]] = [
            (root, sorted(succ.get(root, set())))
        ]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            while children:
                child = children.pop(0)
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(succ.get(child, set()))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def _rl401(analysis: LockAnalysis) -> list[Diagnostic]:
    edges = _lock_order_edges(analysis)
    succ: dict[str, set[str]] = {}
    nodes: set[str] = set()
    for a, b in edges:
        succ.setdefault(a, set()).add(b)
        nodes.add(a)
        nodes.add(b)
    out: list[Diagnostic] = []
    for scc in _strongly_connected(sorted(nodes), succ):
        if len(scc) < 2:
            continue
        members = set(scc)
        cycle_edges = sorted(
            (a, b) for a, b in edges if a in members and b in members
        )
        first_a, first_b = cycle_edges[0]
        path, node = edges[(first_a, first_b)]
        ordering = " -> ".join(_short(name) for name in scc)
        out.append(
            _diag(
                path,
                node,
                "RL401",
                f"inconsistent lock order: {_short(first_b)} is acquired "
                f"while holding {_short(first_a)}, but the reverse order "
                f"also occurs (cycle {ordering}); threads interleaving "
                "these paths can deadlock",
            )
        )
    return out


# ----------------------------------------------------------------------
# RL402 / RL404 — guarded-attribute discipline
# ----------------------------------------------------------------------
def _guarded_attrs(
    analysis: LockAnalysis,
) -> dict[tuple[str, str], frozenset[str]]:
    """(class key, attr) → union of locks held across its accesses."""
    guards: dict[tuple[str, str], set[str]] = {}
    for q, facts in analysis.facts.items():
        if facts.class_key is None:
            continue
        for access in facts.accesses:
            key = (facts.class_key, access.attr)
            guards.setdefault(key, set()).update(
                analysis.effective_held(q, access.held)
            )
    return {
        key: frozenset(locks) for key, locks in guards.items() if locks
    }


def _rl402(analysis: LockAnalysis) -> list[Diagnostic]:
    guarded = _guarded_attrs(analysis)
    out: list[Diagnostic] = []
    for q in sorted(analysis.facts):
        facts = analysis.facts[q]
        if facts.class_key is None:
            continue
        for access in facts.accesses:
            if not access.is_write or access.in_init:
                continue
            guards = guarded.get((facts.class_key, access.attr))
            if not guards:
                continue
            eff = analysis.effective_held(q, access.held)
            if eff & guards:
                continue
            names = ", ".join(sorted(_short(lock) for lock in guards))
            attr = f"{facts.class_key.rsplit('.', 1)[-1]}.{access.attr}"
            out.append(
                _diag(
                    facts.unit.path,
                    access.node,
                    "RL402",
                    f"write to shared attribute {attr} without the owning "
                    f"lock; its other accesses hold {names} — concurrent "
                    "handler threads can interleave here",
                )
            )
    return out


def _rl404(analysis: LockAnalysis) -> list[Diagnostic]:
    guarded = _guarded_attrs(analysis)
    out: list[Diagnostic] = []
    for q in sorted(analysis.facts):
        facts = analysis.facts[q]
        if facts.class_key is None:
            continue
        for access in facts.accesses:
            if access.test_of is None or access.is_write:
                continue
            guards = guarded.get((facts.class_key, access.attr))
            if not guards:
                continue
            eff = analysis.effective_held(q, access.held)
            if eff & guards:
                continue
            # the matching update: a locked write to the same attribute
            # at or below the check
            locked_write = any(
                other.is_write
                and not other.in_init
                and other.attr == access.attr
                and other.node.lineno >= access.test_of.lineno
                and analysis.effective_held(q, other.held) & guards
                for other in facts.accesses
            )
            if not locked_write:
                continue
            # double-checked locking: the attribute is re-tested under
            # the lock before the write — the idiom is safe
            rechecked = any(
                other.test_of is not None
                and other.attr == access.attr
                and analysis.effective_held(q, other.held) & guards
                for other in facts.accesses
            )
            if rechecked:
                continue
            names = ", ".join(sorted(_short(lock) for lock in guards))
            attr = f"{facts.class_key.rsplit('.', 1)[-1]}.{access.attr}"
            out.append(
                _diag(
                    facts.unit.path,
                    access.test_of,
                    "RL404",
                    f"non-atomic check-then-act on {attr}: the test runs "
                    f"outside {names} but the update holds it; another "
                    "thread can act between check and update — move the "
                    "check inside the locked region",
                )
            )
    return out


# ----------------------------------------------------------------------
# RL403 — blocking under a lock
# ----------------------------------------------------------------------
def _rl403(analysis: LockAnalysis) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    reported_directly: set[str] = set()
    for q in sorted(analysis.facts):
        facts = analysis.facts[q]
        for node, reason, held in facts.blockers:
            eff = analysis.effective_held(q, held)
            if not eff:
                continue
            reported_directly.add(q)
            names = ", ".join(sorted(_short(lock) for lock in eff))
            out.append(
                _diag(
                    facts.unit.path,
                    node,
                    "RL403",
                    f"blocking call ({reason}) while holding {names}; "
                    "every thread contending for the lock stalls for the "
                    "full blocking duration — release before blocking",
                )
            )
    for q in sorted(analysis.facts):
        facts = analysis.facts[q]
        for node, callee, held in facts.calls:
            eff = analysis.effective_held(q, held)
            if not eff or callee == q or callee in reported_directly:
                continue
            reason = analysis.may_block.get(callee)
            if reason is None:
                continue
            names = ", ".join(sorted(_short(lock) for lock in eff))
            leaf = callee.rsplit(".", 1)[-1]
            out.append(
                _diag(
                    facts.unit.path,
                    node,
                    "RL403",
                    f"call to {leaf}() may block ({reason}) while holding "
                    f"{names}; release the lock before calling into a "
                    "blocking path",
                )
            )
    return out


def run_lock_rules(
    symtab: SymbolTable,
    units: list[FunctionUnit],
    trees: dict[str, ast.Module],
    summaries: Summaries,
    select: frozenset[str],
) -> list[Diagnostic]:
    """Apply the selected RL4xx rules over the whole package."""
    wanted = select & LOCK_RULE_CODES
    if not wanted:
        return []
    scoped = [u for u in units if _in_numeric_scope(u.path)]
    if not scoped:
        return []
    analysis = LockAnalysis(symtab, scoped, trees, summaries)
    out: list[Diagnostic] = []
    if "RL401" in wanted:
        out.extend(_rl401(analysis))
    if "RL402" in wanted:
        out.extend(_rl402(analysis))
    if "RL403" in wanted:
        out.extend(_rl403(analysis))
    if "RL404" in wanted:
        out.extend(_rl404(analysis))
    return sorted(out, key=lambda d: (d.path, d.line, d.col, d.code))
