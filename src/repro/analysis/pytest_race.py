"""pytest plugin: run every test under the lockset race sanitizer.

Enabled two ways:

- ``repro-icrowd lint --race -- <pytest args>`` loads this plugin and
  passes ``--race``, so *every* collected test runs inside a fresh
  :class:`~repro.analysis.sanitizer.LockSanitizer` and fails if any
  race is reported;
- a test module can opt in explicitly via the ``race_sanitizer``
  fixture (no ``--race`` needed) to assert reports — or their
  absence — itself.

The autouse fixture is a no-op unless ``--race`` was given, so the
plugin is safe to keep permanently installed.
"""

from __future__ import annotations

from collections.abc import Iterator

import pytest

from repro.analysis.sanitizer import LockSanitizer


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--race",
        action="store_true",
        default=False,
        help="run every test under the repro lockset race sanitizer "
        "and fail on any reported race",
    )


@pytest.fixture
def race_sanitizer() -> Iterator[LockSanitizer]:
    """Explicit sanitizer for tests that inspect reports themselves."""
    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()


@pytest.fixture(autouse=True)
def _race_guard(request: pytest.FixtureRequest) -> Iterator[None]:
    """Under ``--race``: sanitize the test, fail on any report."""
    if not request.config.getoption("--race"):
        yield
        return
    if "race_sanitizer" in request.fixturenames:
        # the test manages its own sanitizer; two tracers would fight
        yield
        return
    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()
    if sanitizer.reports:
        pytest.fail(
            "lockset race sanitizer found "
            f"{len(sanitizer.reports)} race(s):\n\n"
            f"{sanitizer.format_reports()}",
            pytrace=False,
        )
