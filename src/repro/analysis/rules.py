"""The seven ``repro-lint`` rules.

Each rule guards one determinism invariant of the reproduction (see
DESIGN.md §8 for the full rationale table):

========  ==========================================================
RL001     no global RNG — all randomness flows through an injected
          :class:`numpy.random.Generator` / named stream
RL002     no wall-clock reads in ``core/``, ``platform/``,
          ``workers/`` — clocks are injected parameters
RL003     no iteration over syntactic sets where order reaches
          output (lists, tuples, joins, enumerate)
RL004     no float ``==`` / ``!=`` in ``src/repro`` numerics — use
          ``math.isclose`` / ``np.isclose`` or an explicit epsilon
RL005     hot-path classes accepting a recorder default it to
          ``NULL_RECORDER``, never ``None``
RL006     no mutable default arguments
RL007     no OS-entropy identifiers (``uuid4`` / ``os.urandom`` /
          ``secrets``) in library code — span/trace ids come from
          the injected :class:`repro.obs.ids.TraceIdSource`
========  ==========================================================

Rules are syntactic and import-aware but do no type inference: a
call is flagged only when its receiver resolves, through the module's
import aliases, to a known nondeterminism source.  That keeps false
positives near zero — ``rng.random()`` on an injected generator is
never confused with the ``random`` module.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic

#: numpy.random attributes that construct seeded, instance-scoped
#: state rather than touching the legacy global stream.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: stdlib ``random`` attributes that construct instance-scoped state.
_STDLIB_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

#: Fully qualified wall-clock reads.  ``time.perf_counter`` is *not*
#: listed: it is the conventional default value of injected ``clock``
#: parameters (obs ``Stopwatch`` / span clocks), and RL002 only flags
#: calls, so passing the function object stays legal everywhere.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Directories whose modules must use injected clocks (RL002 scope).
_CLOCK_SCOPED_DIRS = ("repro/core/", "repro/platform/", "repro/workers/")

#: Files allowed to touch global RNG machinery: the seeding shim that
#: turns (seed, tag) into independent generators.
_RNG_SHIM_SUFFIXES = ("repro/utils/rng.py",)

#: Order-insensitive consumers: iterating a set inside these is fine.
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: Order-sensitive consumers: a syntactic set flowing into these leaks
#: hash-order into output.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})

#: Call names whose result is a fresh mutable object (RL006).
_MUTABLE_FACTORY_CALLS = frozenset({"list", "dict", "set"})

#: OS-entropy identifier sources (RL007).  ``uuid3``/``uuid5`` are
#: deliberately absent — they hash a namespace+name and are
#: deterministic.  Anything under ``secrets.`` is matched by prefix.
_ENTROPY_CALLS = frozenset(
    {
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getrandom",
        "random.SystemRandom",
    }
)


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule."""

    code: str
    name: str
    summary: str
    family: str = "syntactic"  #: rule family for grouped --list-rules
    deep: bool = False  #: requires the two-pass analyzer (--deep)


ALL_RULES: tuple[Rule, ...] = (
    Rule(
        "RL001",
        "global-rng",
        "global random.* / np.random.* call; inject a Generator "
        "via repro.utils.rng.spawn_rng instead",
    ),
    Rule(
        "RL002",
        "wall-clock",
        "wall-clock read in core/platform/workers; inject a clock "
        "parameter instead",
    ),
    Rule(
        "RL003",
        "unordered-iteration",
        "iteration over a set where order reaches output; sort or "
        "use an ordered container",
    ),
    Rule(
        "RL004",
        "float-equality",
        "float == / != comparison; use math.isclose / np.isclose "
        "or an explicit epsilon",
    ),
    Rule(
        "RL005",
        "recorder-default",
        "recorder parameter defaults to None; default to "
        "NULL_RECORDER so hot paths skip the None-resolution branch",
    ),
    Rule(
        "RL006",
        "mutable-default",
        "mutable default argument; use None (or a frozen value) and "
        "construct inside the function",
    ),
    Rule(
        "RL007",
        "entropy-id",
        "OS-entropy identifier (uuid4/urandom/secrets) in library "
        "code; derive ids from the injected TraceIdSource instead",
    ),
)

RULE_CODES = frozenset(rule.code for rule in ALL_RULES)


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def _in_clock_scope(path: str) -> bool:
    return any(part in _posix(path) for part in _CLOCK_SCOPED_DIRS)


def _is_rng_shim(path: str) -> bool:
    return _posix(path).endswith(_RNG_SHIM_SUFFIXES)


def _in_numeric_scope(path: str) -> bool:
    """RL004 scope: library code, not tests.

    Tests assert byte-identical reproducibility on purpose, so exact
    float equality there is the point, not a bug.
    """
    posix = _posix(path)
    return "repro/" in posix and "tests/" not in posix


def _in_id_scope(path: str) -> bool:
    """RL007 scope: library code, not tests.

    Tests may legitimately fabricate entropy (e.g. to prove a replay
    mismatch); library code must keep every identifier replayable.
    """
    return _in_numeric_scope(path)


class _ImportTable:
    """Maps local names to the dotted module/function they denote."""

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    def aliases(self) -> dict[str, str]:
        """Copy of the alias map (local name → dotted target)."""
        return dict(self._aliases)

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            # `import numpy.random` binds `numpy`; `import numpy.random
            # as npr` binds `npr` to the full dotted path.
            target = alias.name if alias.asname else local
            self._aliases[local] = target

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never name stdlib/numpy modules
        for alias in node.names:
            local = alias.asname or alias.name
            self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, expr: ast.expr) -> str | None:
        """Dotted name for ``expr`` through the alias table, or None."""
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def _is_set_expr(node: ast.expr) -> bool:
    """True for expressions that are unambiguously sets, syntactically."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b) over syntactic sets
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORY_CALLS
    return False


def _is_float_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class _Checker(ast.NodeVisitor):
    """Single-pass visitor that applies every in-scope rule."""

    def __init__(self, path: str, select: frozenset[str]) -> None:
        self.path = path
        self.select = select
        self.diagnostics: list[Diagnostic] = []
        self.imports = _ImportTable()
        self._check_clock = "RL002" in select and _in_clock_scope(path)
        self._check_rng = "RL001" in select and not _is_rng_shim(path)
        self._check_float = "RL004" in select and _in_numeric_scope(path)
        self._check_entropy = "RL007" in select and _in_id_scope(path)

    # -- plumbing ------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.select:
            self.diagnostics.append(
                Diagnostic(
                    path=self.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    code=code,
                    message=message,
                )
            )

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node)
        self.generic_visit(node)

    # -- RL001 / RL002 / RL003 (call shapes) ---------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is not None:
            if self._check_rng:
                self._check_global_rng(node, dotted)
            if self._check_clock and dotted in _WALL_CLOCK_CALLS:
                self._emit(
                    node,
                    "RL002",
                    f"wall-clock read {dotted}() in a deterministic "
                    "module; inject a clock parameter "
                    "(default time.perf_counter) instead",
                )
            if self._check_entropy and (
                dotted in _ENTROPY_CALLS or dotted.startswith("secrets.")
            ):
                self._emit(
                    node,
                    "RL007",
                    f"OS-entropy call {dotted}(); identifiers must come "
                    "from the injected TraceIdSource (repro.obs.ids) so "
                    "traces replay deterministically",
                )
        self._check_order_sensitive_call(node)
        self.generic_visit(node)

    def _check_global_rng(self, node: ast.Call, dotted: str) -> None:
        leaf = dotted.rsplit(".", 1)[-1]
        if dotted.startswith("random.") and "." not in dotted[len("random."):]:
            if leaf not in _STDLIB_RANDOM_CONSTRUCTORS:
                self._emit(
                    node,
                    "RL001",
                    f"global RNG call {dotted}(); draw from an "
                    "injected Generator (repro.utils.rng.spawn_rng) "
                    "instead",
                )
        elif dotted.startswith("numpy.random."):
            if leaf not in _NP_RANDOM_CONSTRUCTORS:
                self._emit(
                    node,
                    "RL001",
                    f"global NumPy RNG call {dotted}(); draw from an "
                    "injected Generator (repro.utils.rng.spawn_rng) "
                    "instead",
                )

    def _check_order_sensitive_call(self, node: ast.Call) -> None:
        # str.join({...}) — receiver type is unknowable statically, but
        # a syntactic set as the sole argument of a .join() is always a
        # hash-order leak.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            self._emit(
                node.args[0],
                "RL003",
                "join() over a set leaks hash order into output; "
                "sort it first",
            )
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_CALLS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._emit(
                node.args[0],
                "RL003",
                f"{node.func.id}() over a set leaks hash order into "
                "output; sort it first",
            )

    # -- RL003 (loops and comprehensions) ------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._emit(
                node.iter,
                "RL003",
                "for-loop over a set; iteration order is hash order — "
                "sort it or use an ordered container",
            )
        self.generic_visit(node)

    def _visit_comprehension_generators(
        self, generators: Iterable[ast.comprehension]
    ) -> None:
        for gen in generators:
            if _is_set_expr(gen.iter):
                self._emit(
                    gen.iter,
                    "RL003",
                    "comprehension over a set; iteration order is "
                    "hash order — sort it or use an ordered container",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # NOTE: SetComp generators are deliberately exempt — building a set
    # from a set is order-insensitive.

    # -- RL004 ---------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if self._check_float:
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(
                node.ops, operands[:-1], operands[1:], strict=True
            ):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_constant(lhs) or _is_float_constant(rhs)
                ):
                    self._emit(
                        node,
                        "RL004",
                        "float equality comparison; use math.isclose/"
                        "np.isclose, an epsilon, or suppress with a "
                        "reason when exact-sentinel semantics are "
                        "intended",
                    )
                    break
        self.generic_visit(node)

    # -- RL005 / RL006 (function signatures) ---------------------------
    def _check_signature(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        defaults: list[tuple[ast.arg, ast.expr]] = []
        if args.defaults:
            defaults.extend(
                zip(
                    positional[-len(args.defaults):],
                    args.defaults,
                    strict=True,
                )
            )
        defaults.extend(
            (arg, default)
            for arg, default in zip(
                args.kwonlyargs, args.kw_defaults, strict=True
            )
            if default is not None
        )
        for arg, default in defaults:
            if _is_mutable_default(default):
                self._emit(
                    default,
                    "RL006",
                    f"mutable default for parameter {arg.arg!r}; "
                    "default to None and construct inside the body",
                )
            if (
                arg.arg == "recorder"
                and isinstance(default, ast.Constant)
                and default.value is None
            ):
                self._emit(
                    default,
                    "RL005",
                    "recorder parameter defaults to None; default to "
                    "NULL_RECORDER (repro.obs) so the null path needs "
                    "no resolution branch",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_signature(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_signature(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        if args.defaults:
            for arg, default in zip(
                positional[-len(args.defaults):], args.defaults, strict=True
            ):
                if _is_mutable_default(default):
                    self._emit(
                        default,
                        "RL006",
                        f"mutable default for parameter {arg.arg!r}; "
                        "default to None and construct inside the body",
                    )
        self.generic_visit(node)


def run_rules(
    tree: ast.Module,
    path: str,
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Apply every (selected) rule to a parsed module."""
    checker = _Checker(path, select if select is not None else RULE_CODES)
    checker.visit(tree)
    return checker.diagnostics


#: Callable alias used by the linter driver.
RuleRunner = Callable[[ast.Module, str], list[Diagnostic]]
