"""Eraser-style dynamic lockset race sanitizer.

The static RL4xx rules (:mod:`repro.analysis.locks`) reason about
locks they can *name*; this module catches what escapes them at
runtime.  It implements the classic Eraser lockset algorithm
[Savage et al., TOCS 1997] over attribute *writes* in
``repro.platform`` and ``repro.obs``:

- every ``threading.Lock``/``threading.RLock`` created while the
  sanitizer is installed is wrapped so each thread's *held lockset*
  is tracked (re-entrant acquires counted);
- a per-line write map, built by parsing the target modules' source,
  tells the tracer which lines write which ``obj.attr``;
- each shadowed ``(object, attribute)`` starts *exclusive* to its
  first writing thread (initialisation writes never alarm); the
  first write from a second thread moves it to *shared-modified*
  and seeds the candidate lockset with the locks held right then;
  every later write intersects the candidate with the writer's held
  set.  An empty candidate means no single lock protected every
  write — a :class:`RaceReport` with both stack pairs is recorded.

Instrumentation uses ``sys.monitoring`` on Python 3.12+ (cheap
per-line callbacks with ``DISABLE`` for untargeted code) and falls
back to ``sys.settrace`` + ``threading.settrace`` elsewhere.  Either
way the sanitizer is strictly opt-in: nothing in this module runs
unless :meth:`LockSanitizer.install` is called (via
``repro-icrowd lint --race -- <pytest args>`` or the
``repro.analysis.pytest_race`` plugin).

Known escapes, by design: locks created *before* ``install()`` are
untracked; ``Condition.wait`` releases the underlying lock without
updating the tracked held-set for the wait's duration; objects
written only ever by one thread stay in the exclusive state and are
never checked.  ``threading.local`` instances are exempt — per-thread
storage cannot race.
"""

from __future__ import annotations

import ast
import os
import pkgutil
import sys
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from types import FrameType, ModuleType
from typing import Any

#: The genuine lock class, captured at import so sanitizer internals
#: stay untracked even when ``threading.Lock`` is patched.
_REAL_LOCK = threading.Lock

#: Method names that mutate their receiver in place (count as writes).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Frames kept in each captured stack.
_STACK_DEPTH = 8

#: ``sys.monitoring`` (3.12+); None on earlier interpreters.  The
#: ``getattr`` keeps 3.11 type checkers happy — the attribute does
#: not exist there.
_MONITORING: Any = (
    getattr(sys, "monitoring", None)
    if sys.version_info >= (3, 12)
    else None
)

_MISSING = object()

StackFrame = tuple[str, int, str]


def _capture_stack(frame: FrameType | None) -> tuple[StackFrame, ...]:
    out: list[StackFrame] = []
    node = frame
    while node is not None and len(out) < _STACK_DEPTH:
        code = node.f_code
        out.append((code.co_filename, node.f_lineno, code.co_qualname))
        node = node.f_back
    return tuple(out)


def _format_stack(stack: tuple[StackFrame, ...]) -> str:
    return "\n".join(
        f"    {path}:{line} in {func}" for path, line, func in stack
    )


@dataclass(frozen=True)
class RaceReport:
    """One unsynchronised write pair on a shared attribute."""

    obj_type: str
    attr: str
    first_thread: str
    first_locks: tuple[str, ...]
    first_stack: tuple[StackFrame, ...]
    second_thread: str
    second_locks: tuple[str, ...]
    second_stack: tuple[StackFrame, ...]

    def format(self) -> str:
        """Human-readable report: both writes, their locks and stacks."""
        first_locks = ", ".join(self.first_locks) or "none"
        second_locks = ", ".join(self.second_locks) or "none"
        return (
            f"RACE on {self.obj_type}.{self.attr}: no common lock "
            "protects its writes\n"
            f"  thread {self.first_thread!r} wrote holding "
            f"[{first_locks}] at:\n{_format_stack(self.first_stack)}\n"
            f"  thread {self.second_thread!r} wrote holding "
            f"[{second_locks}] at:\n{_format_stack(self.second_stack)}"
        )


class _TrackedLock:
    """Wrapper recording acquire/release in the owning sanitizer."""

    def __init__(self, sanitizer: LockSanitizer, inner: Any, kind: str) -> None:
        self._sanitizer = sanitizer
        self._inner = inner
        self._kind = kind

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = bool(self._inner.acquire(*args, **kwargs))
        if got:
            self._sanitizer._push_lock(self)
        return got

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._pop_lock(self)

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<tracked {self._kind} {id(self._inner):#x}>"

    def __getattr__(self, name: str) -> Any:
        # Condition's lock protocol (_is_owned, _acquire_restore,
        # _release_save) and anything else falls through to the real
        # lock; those paths bypass held-set tracking (documented).
        return getattr(self._inner, name)


@dataclass
class _Shadow:
    """Eraser shadow word for one (object, attribute)."""

    obj: object  #: strong ref pins id() for the sanitizer's lifetime
    owner: int  #: first writer's thread id (exclusive state)
    shared: bool = False
    candidate: frozenset[int] = frozenset()
    reported: bool = False
    last_thread: str = ""
    #: lock ids held at the last write (labels resolved lazily)
    last_locks: frozenset[int] = frozenset()
    last_stack: tuple[StackFrame, ...] = ()


#: (owner-name chain from the frame, attribute written)
_WriteDescriptor = tuple[tuple[str, ...], str]


def _name_chain(expr: ast.expr) -> tuple[str, ...] | None:
    """``self.stats`` → ``("self", "stats")``; None if not a pure chain."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _write_target(expr: ast.expr) -> _WriteDescriptor | None:
    """Descriptor for one assignment target, if it writes an attribute."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    chain = _name_chain(node.value)
    if chain is None:
        return None
    return (chain, node.attr)


def _collect_writes(
    tree: ast.Module,
) -> dict[int, list[_WriteDescriptor]]:
    """line → attribute writes occurring on that line."""
    out: dict[int, list[_WriteDescriptor]] = {}

    def add(lineno: int, desc: _WriteDescriptor | None) -> None:
        if desc is not None:
            bucket = out.setdefault(lineno, [])
            if desc not in bucket:
                bucket.append(desc)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                add(node.lineno, _write_target(target))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            add(node.lineno, _write_target(node.target))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                add(node.lineno, _write_target(target))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            receiver = node.func.value
            target = _write_target(receiver) if not isinstance(
                receiver, ast.Name
            ) else None
            add(node.lineno, target)
    return out


def _default_target_files() -> list[str]:
    """Every module file under ``repro.platform`` and ``repro.obs``."""
    files: list[str] = []
    for package_name in ("repro.platform", "repro.obs"):
        package = __import__(package_name, fromlist=["__name__"])
        if package.__file__ is not None:
            files.append(package.__file__)
        search = getattr(package, "__path__", None)
        if search is None:
            continue
        for info in pkgutil.iter_modules(search):
            module: ModuleType = __import__(
                f"{package_name}.{info.name}", fromlist=["__name__"]
            )
            if module.__file__ is not None:
                files.append(module.__file__)
    return files


class LockSanitizer:
    """Install/uninstall lifecycle for the dynamic race detector."""

    def __init__(self, extra_files: list[str] | None = None) -> None:
        self._extra_files = [
            os.path.abspath(path) for path in (extra_files or [])
        ]
        #: co_filename → line → write descriptors
        self._writes: dict[str, dict[int, list[_WriteDescriptor]]] = {}
        self._held = threading.local()
        #: code object → write map scoped to its lines (None = skip);
        #: _MISSING sentinel distinguishes "not yet computed"
        self._code_cache: dict[Any, Any] = {}
        self._shadows: dict[tuple[int, str], _Shadow] = {}
        self._shadow_guard = _REAL_LOCK()
        self._lock_names: dict[int, str] = {}
        self.reports: list[RaceReport] = []
        self._installed = False
        self._orig_lock: Any = None
        self._orig_rlock: Any = None
        self._prev_trace: Any = None
        self._tool_id: int | None = None

    # -- held-lockset bookkeeping --------------------------------------
    def _held_counts(self) -> dict[int, int]:
        counts = getattr(self._held, "counts", None)
        if counts is None:
            counts = {}
            self._held.counts = counts
        return counts

    def _push_lock(self, lock: _TrackedLock) -> None:
        counts = self._held_counts()
        key = id(lock)
        counts[key] = counts.get(key, 0) + 1
        if key not in self._lock_names:
            self._lock_names[key] = repr(lock)

    def _pop_lock(self, lock: _TrackedLock) -> None:
        counts = self._held_counts()
        key = id(lock)
        remaining = counts.get(key, 0) - 1
        if remaining > 0:
            counts[key] = remaining
        else:
            counts.pop(key, None)

    def _held_set(self) -> frozenset[int]:
        return frozenset(self._held_counts())

    def _lock_labels(self, held: frozenset[int]) -> tuple[str, ...]:
        return tuple(
            sorted(self._lock_names.get(key, f"<lock {key:#x}>") for key in held)
        )

    # -- write recording -----------------------------------------------
    def _record_write(
        self, obj: object, attr: str, frame: FrameType
    ) -> None:
        if isinstance(obj, (threading.local, ModuleType)):
            return
        # The shadow table is GIL-consistent, not locked: each dict op
        # is atomic, ``owner`` is fixed at creation, and candidate
        # intersection commutes, so concurrent updates converge to the
        # same verdict.  Only the (cold) report path takes the guard.
        held = self._held_set()
        key = (id(obj), attr)
        shadow = self._shadows.get(key)
        ident = threading.get_ident()
        if shadow is None:
            self._shadows[key] = _Shadow(
                obj=obj,
                owner=ident,
                last_thread=threading.current_thread().name,
                last_locks=held,
                last_stack=_capture_stack(frame),
            )
            return
        if not shadow.shared:
            if shadow.owner == ident:
                shadow.last_thread = threading.current_thread().name
                shadow.last_locks = held
                shadow.last_stack = _capture_stack(frame)
                return
            shadow.shared = True
            shadow.candidate = held
        else:
            shadow.candidate = shadow.candidate & held
        if not shadow.candidate and not shadow.reported:
            with self._shadow_guard:
                if shadow.reported:
                    return
                shadow.reported = True
                self.reports.append(
                    RaceReport(
                        obj_type=type(obj).__name__,
                        attr=attr,
                        first_thread=shadow.last_thread,
                        first_locks=self._lock_labels(shadow.last_locks),
                        first_stack=shadow.last_stack,
                        second_thread=threading.current_thread().name,
                        second_locks=self._lock_labels(held),
                        second_stack=_capture_stack(frame),
                    )
                )

    def _handle_line(self, frame: FrameType, lineno: int) -> None:
        by_line = self._writes.get(frame.f_code.co_filename)
        if by_line is None:
            return
        descriptors = by_line.get(lineno)
        if not descriptors:
            return
        for chain, attr in descriptors:
            obj: Any = frame.f_locals.get(chain[0], _MISSING)
            if obj is _MISSING:
                obj = frame.f_globals.get(chain[0], _MISSING)
            if obj is _MISSING:
                continue
            for name in chain[1:]:
                obj = getattr(obj, name, _MISSING)
                if obj is _MISSING:
                    break
            if obj is not _MISSING:
                self._record_write(obj, attr, frame)

    # -- settrace backend ----------------------------------------------
    def _code_writes(
        self, code: Any
    ) -> dict[int, list[_WriteDescriptor]] | None:
        """Write map restricted to one code object's line span.

        Cached per code object so the (hot) call event does set
        intersection work only once; functions whose body contains no
        tracked write return None and are never line-traced at all.
        """
        cached = self._code_cache.get(code, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        by_line = self._writes.get(code.co_filename)
        scoped: dict[int, list[_WriteDescriptor]] | None = None
        if by_line is not None:
            lines = {
                lineno
                for _, _, lineno in code.co_lines()
                if lineno is not None
            }
            scoped = {
                lineno: descs
                for lineno, descs in by_line.items()
                if lineno in lines
            } or None
        self._code_cache[code] = scoped
        return scoped

    def _global_trace(self, frame: FrameType, event: str, arg: object) -> Any:
        if event != "call":
            return None
        scoped = self._code_writes(frame.f_code)
        if scoped is None:
            return None
        handle = self._handle_line

        def local(
            frame: FrameType, event: str, arg: object
        ) -> Any:
            # per-line fast path: one dict probe on the scoped map
            if event == "line" and frame.f_lineno in scoped:
                handle(frame, frame.f_lineno)
            return local

        return local

    # -- sys.monitoring backend (3.12+) --------------------------------
    def _monitor_line(self, code: Any, lineno: int) -> Any:
        by_line = self._writes.get(code.co_filename)
        if by_line is None or lineno not in by_line:
            return _MONITORING.DISABLE
        frame = sys._getframe(1)
        self._handle_line(frame, lineno)
        return None

    # -- lifecycle -------------------------------------------------------
    def install(self) -> None:
        """Start watching: patch lock constructors, enable tracing.

        Parses the target files for attribute-write lines, swaps
        ``threading.Lock``/``RLock`` for tracked wrappers, and turns
        on the line-event backend (``sys.monitoring`` on 3.12+, else
        ``settrace`` on every thread).  Idempotent.
        """
        if self._installed:
            return
        for path in _default_target_files() + self._extra_files:
            try:
                source = Path(path).read_text(encoding="utf-8")
            except OSError:
                continue
            lines = _collect_writes(ast.parse(source))
            if lines:
                self._writes[path] = lines
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        orig_lock, orig_rlock = self._orig_lock, self._orig_rlock

        def tracked_lock() -> _TrackedLock:
            return _TrackedLock(self, orig_lock(), "Lock")

        def tracked_rlock() -> _TrackedLock:
            return _TrackedLock(self, orig_rlock(), "RLock")

        threading.Lock = tracked_lock  # type: ignore[assignment]
        threading.RLock = tracked_rlock  # type: ignore[assignment]
        if _MONITORING is not None:
            tool_id = _MONITORING.PROFILER_ID
            _MONITORING.use_tool_id(tool_id, "repro-race-sanitizer")
            _MONITORING.register_callback(
                tool_id, _MONITORING.events.LINE, self._monitor_line
            )
            _MONITORING.set_events(tool_id, _MONITORING.events.LINE)
            self._tool_id = tool_id
        else:
            self._prev_trace = sys.gettrace()
            threading.settrace(self._global_trace)
            sys.settrace(self._global_trace)
        self._installed = True

    def uninstall(self) -> None:
        """Undo :meth:`install`: restore tracing and real lock types.

        Accumulated ``reports`` survive so callers can inspect them
        after the watched region ends.  Idempotent.
        """
        if not self._installed:
            return
        if self._tool_id is not None:
            _MONITORING.set_events(
                self._tool_id, _MONITORING.events.NO_EVENTS
            )
            _MONITORING.register_callback(
                self._tool_id, _MONITORING.events.LINE, None
            )
            _MONITORING.free_tool_id(self._tool_id)
            self._tool_id = None
        else:
            sys.settrace(self._prev_trace)
            threading.settrace(self._prev_trace)
            self._prev_trace = None
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        threading.RLock = self._orig_rlock  # type: ignore[assignment]
        self._installed = False

    def format_reports(self) -> str:
        """All accumulated reports, blank-line separated."""
        return "\n\n".join(report.format() for report in self.reports)


@contextmanager
def sanitized(
    extra_files: list[str] | None = None,
) -> Iterator[LockSanitizer]:
    """``with sanitized() as s: ...`` — install/uninstall bracketing."""
    sanitizer = LockSanitizer(extra_files=extra_files)
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()


def run_race_command(pytest_args: list[str]) -> int:
    """``repro-icrowd lint --race -- <pytest args>`` entry point.

    Runs pytest in-process with the race plugin enabled; every test
    executes under a fresh sanitizer and fails on any report.
    """
    try:
        import pytest
    except ImportError:
        print("repro-lint: --race needs pytest installed")
        return 2
    if not pytest_args:
        print(
            "repro-lint: --race needs pytest arguments after '--', "
            "e.g. lint --race -- tests/obs/test_concurrency.py"
        )
        return 2
    return int(
        pytest.main(
            ["-p", "repro.analysis.pytest_race", "--race", *pytest_args]
        )
    )
