"""Pass 1 of deep analysis: the whole-package symbol table.

The single-pass linter (:mod:`repro.analysis.rules`) sees one module
at a time; the deep rules (RL1xx/RL2xx/RL3xx) need to answer
questions like "which function does this call resolve to?" and "is
this module-level name a mutable dict?" across the whole package.
This module extracts, per file, everything those questions need:

- every function/method (qualified name, parameter list, nesting),
- every module-level assignment, classified by *kind* (mutable
  container, RNG stream, other),
- the module's import-alias table.

Extraction is pure AST work keyed only by file content, so the
results are cached between runs: :func:`build_symbol_table` accepts a
JSON cache path and re-extracts only files whose SHA-256 changed
(CI keeps the cache across runs via ``actions/cache``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analysis.rules import _ImportTable

#: Cache schema version; bump on any change to the dataclasses below.
CACHE_VERSION = 1

#: External constructors whose result is an RNG stream (module-level
#: assignments from these get ``kind="rng"``).
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

#: Internal helpers whose return value is an RNG stream.
RNG_SHIM_PREFIX = "repro.utils.rng."

#: Builtin factory calls whose result is a fresh mutable container.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


@dataclass(frozen=True)
class FunctionSymbol:
    """One function, method, or nested def in the package."""

    qualname: str  #: e.g. ``repro.core.ppr.PushKernel.push``
    module: str  #: e.g. ``repro.core.ppr``
    local_name: str  #: e.g. ``PushKernel.push``
    lineno: int
    params: tuple[str, ...]  #: positional(-or-keyword) names, in order
    kwonly: tuple[str, ...]
    has_varargs: bool
    has_kwargs: bool
    is_method: bool
    is_nested: bool

    def accepts(self, name: str) -> bool:
        """Whether ``name`` is a parameter (positional or kw-only)."""
        return name in self.params or name in self.kwonly


@dataclass(frozen=True)
class GlobalSymbol:
    """One module-level assignment target."""

    qualname: str  #: e.g. ``repro.core.ppr._POOL_STATE``
    module: str
    name: str
    lineno: int
    kind: str  #: ``"mutable"`` | ``"rng"`` | ``"other"``


@dataclass(frozen=True)
class ModuleSymbols:
    """Everything pass 1 extracts from one file."""

    module: str
    path: str
    functions: tuple[FunctionSymbol, ...]
    globals: tuple[GlobalSymbol, ...]
    imports: tuple[tuple[str, str], ...]  #: (local alias, dotted target)


def module_name(path: str) -> str:
    """Dotted module name for a file path.

    Anchored at the last ``src`` component (``src/repro/core/ppr.py``
    → ``repro.core.ppr``) or, failing that, the last ``tests``
    component; bare files fall back to their stem.  Deterministic in
    the path alone, so cached entries stay valid across machines.
    """
    posix = path.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    parts = [part for part in posix.split("/") if part]
    for anchor in ("src", "tests"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[idx + 1 :] if anchor == "src" else parts[idx:]
            if tail:
                if tail[-1] == "__init__":
                    tail = tail[:-1]
                if tail:
                    return ".".join(tail)
    return parts[-1] if parts else "<unknown>"


def _import_table(tree: ast.Module) -> _ImportTable:
    table = _ImportTable()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            table.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            table.add_import_from(node)
    return table


def _global_kind(value: ast.expr, table: _ImportTable) -> str:
    """Classify a module-level assignment's right-hand side."""
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                ast.SetComp)
    ):
        return "mutable"
    if isinstance(value, ast.Call):
        if isinstance(value.func, ast.Name):
            if value.func.id in _MUTABLE_FACTORIES:
                return "mutable"
        dotted = table.resolve(value.func)
        if dotted is not None:
            if dotted in RNG_CONSTRUCTORS or dotted.startswith(
                RNG_SHIM_PREFIX
            ):
                return "rng"
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf in _MUTABLE_FACTORIES:
                return "mutable"
    return "other"


class _Extractor(ast.NodeVisitor):
    """Collect function and global symbols from one module tree."""

    def __init__(self, module: str, table: _ImportTable) -> None:
        self.module = module
        self.table = table
        self.functions: list[FunctionSymbol] = []
        self.globals: list[GlobalSymbol] = []
        self._scope: list[tuple[str, str]] = []  #: (kind, name) stack

    def _add_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        local = ".".join([name for _, name in self._scope] + [node.name])
        args = node.args
        params = tuple(
            arg.arg for arg in args.posonlyargs + args.args
        )
        self.functions.append(
            FunctionSymbol(
                qualname=f"{self.module}.{local}",
                module=self.module,
                local_name=local,
                lineno=node.lineno,
                params=params,
                kwonly=tuple(arg.arg for arg in args.kwonlyargs),
                has_varargs=args.vararg is not None,
                has_kwargs=args.kwarg is not None,
                is_method=bool(self._scope) and self._scope[-1][0] == "class",
                is_nested=any(kind == "func" for kind, _ in self._scope),
            )
        )

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._add_function(node)
        self._scope.append(("func", node.name))
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(("class", node.name))
        self.generic_visit(node)
        self._scope.pop()

    def _add_global(self, target: ast.expr, value: ast.expr | None) -> None:
        if self._scope or not isinstance(target, ast.Name):
            return
        kind = _global_kind(value, self.table) if value is not None else "other"
        self.globals.append(
            GlobalSymbol(
                qualname=f"{self.module}.{target.id}",
                module=self.module,
                name=target.id,
                lineno=target.lineno,
                kind=kind,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._add_global(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._add_global(node.target, node.value)
        self.generic_visit(node)


def extract_module(tree: ast.Module, path: str) -> ModuleSymbols:
    """Extract one module's symbols from its parsed tree."""
    module = module_name(path)
    table = _import_table(tree)
    extractor = _Extractor(module, table)
    extractor.visit(tree)
    return ModuleSymbols(
        module=module,
        path=path,
        functions=tuple(extractor.functions),
        globals=tuple(extractor.globals),
        imports=tuple(sorted(table.aliases().items())),
    )


class SymbolTable:
    """Whole-package symbol index: modules, functions, classes, globals."""

    def __init__(self, modules: list[ModuleSymbols]) -> None:
        self._modules: dict[str, ModuleSymbols] = {}
        self._by_path: dict[str, ModuleSymbols] = {}
        self._functions: dict[str, FunctionSymbol] = {}
        self._classes: dict[str, dict[str, FunctionSymbol]] = {}
        self._globals: dict[str, GlobalSymbol] = {}
        for mod in modules:
            self._modules[mod.module] = mod
            self._by_path[mod.path] = mod
            for func in mod.functions:
                self._functions[func.qualname] = func
                if "." in func.local_name:
                    owner, method = func.local_name.rsplit(".", 1)
                    class_qual = f"{mod.module}.{owner}"
                    self._classes.setdefault(class_qual, {})[method] = func
            for glob in mod.globals:
                self._globals[glob.qualname] = glob

    def module(self, name: str) -> ModuleSymbols | None:
        return self._modules.get(name)

    def module_for_path(self, path: str) -> ModuleSymbols | None:
        return self._by_path.get(path)

    def modules(self) -> list[ModuleSymbols]:
        return [self._modules[name] for name in sorted(self._modules)]

    def function(self, qualname: str) -> FunctionSymbol | None:
        return self._functions.get(qualname)

    def functions(self) -> list[FunctionSymbol]:
        return [self._functions[name] for name in sorted(self._functions)]

    def class_methods(self, class_qual: str) -> dict[str, FunctionSymbol]:
        return self._classes.get(class_qual, {})

    def is_class(self, qualname: str) -> bool:
        return qualname in self._classes

    def global_symbol(self, qualname: str) -> GlobalSymbol | None:
        return self._globals.get(qualname)

    def resolve_callable(self, dotted: str) -> FunctionSymbol | None:
        """Map a dotted name to an internal function if one exists.

        Tries, in order: a plain function (``mod.f``), a method
        (``mod.Class.m``), a class constructor (``mod.Class`` →
        ``mod.Class.__init__``).
        """
        func = self._functions.get(dotted)
        if func is not None:
            return func
        methods = self._classes.get(dotted)
        if methods is not None:
            return methods.get("__init__")
        return None


# ----------------------------------------------------------------------
# content-hash cache
# ----------------------------------------------------------------------
def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _to_cache_entry(mod: ModuleSymbols) -> dict[str, object]:
    return asdict(mod)


def _from_cache_entry(raw: dict[str, object]) -> ModuleSymbols:
    functions = tuple(
        FunctionSymbol(
            qualname=str(f["qualname"]),
            module=str(f["module"]),
            local_name=str(f["local_name"]),
            lineno=int(f["lineno"]),
            params=tuple(str(p) for p in f["params"]),
            kwonly=tuple(str(p) for p in f["kwonly"]),
            has_varargs=bool(f["has_varargs"]),
            has_kwargs=bool(f["has_kwargs"]),
            is_method=bool(f["is_method"]),
            is_nested=bool(f["is_nested"]),
        )
        for f in raw["functions"]  # type: ignore[union-attr]
    )
    globs = tuple(
        GlobalSymbol(
            qualname=str(g["qualname"]),
            module=str(g["module"]),
            name=str(g["name"]),
            lineno=int(g["lineno"]),
            kind=str(g["kind"]),
        )
        for g in raw["globals"]  # type: ignore[union-attr]
    )
    imports = tuple(
        (str(alias), str(target))
        for alias, target in raw["imports"]  # type: ignore[union-attr]
    )
    return ModuleSymbols(
        module=str(raw["module"]),
        path=str(raw["path"]),
        functions=functions,
        globals=globs,
        imports=imports,
    )


def _load_cache(cache_path: Path) -> dict[str, dict[str, object]]:
    try:
        raw = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
        return {}
    files = raw.get("files")
    return files if isinstance(files, dict) else {}


def build_symbol_table(
    sources: dict[str, str],
    trees: dict[str, ast.Module],
    cache_path: str | Path | None = None,
) -> SymbolTable:
    """Build (or incrementally refresh) the whole-package symbol table.

    ``sources`` maps path → source text; ``trees`` holds the parsed
    module for every path that needs (re-)extraction — paths whose
    SHA-256 matches the cache are deserialised instead and their tree
    is never consulted.  When ``cache_path`` is given the refreshed
    cache is written back (best-effort; an unwritable path is ignored).
    """
    cached: dict[str, dict[str, object]] = {}
    if cache_path is not None:
        cached = _load_cache(Path(cache_path))
    modules: list[ModuleSymbols] = []
    fresh: dict[str, dict[str, object]] = {}
    for path in sorted(sources):
        sha = _sha256(sources[path])
        entry = cached.get(path)
        if (
            entry is not None
            and entry.get("sha") == sha
            and isinstance(entry.get("symbols"), dict)
        ):
            mod = _from_cache_entry(
                entry["symbols"]  # type: ignore[arg-type]
            )
        else:
            mod = extract_module(trees[path], path)
        modules.append(mod)
        fresh[path] = {"sha": sha, "symbols": _to_cache_entry(mod)}
    if cache_path is not None:
        payload = json.dumps(
            {"version": CACHE_VERSION, "files": fresh}, sort_keys=True
        )
        try:
            Path(cache_path).write_text(payload, encoding="utf-8")
        except OSError:
            pass
    return SymbolTable(modules)
