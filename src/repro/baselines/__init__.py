"""Baseline assignment/aggregation approaches (Sections 6.1 & 6.3.2).

Comparison baselines:

- :class:`RandomMV` — random assignment + majority voting,
- :class:`RandomEM` — random assignment + Dawid–Skene EM aggregation,
- :class:`AvgAccPV` — gold-injected average worker accuracy, assignment
  restricted to high-accuracy workers, probabilistic-verification
  aggregation (the CDAS approach [22]),

and the adaptive-assignment ablations of Section 6.3.2:

- :class:`QFOnly` — accuracies estimated from qualification only, never
  updated adaptively,
- :class:`BestEffort` — adaptive estimation, but each worker simply
  receives her own highest-accuracy task (no global scheme, no testing).

All of them satisfy :class:`repro.platform.PolicyProtocol`.
"""

from repro.baselines.random_mv import RandomMV
from repro.baselines.random_em import RandomEM
from repro.baselines.avgacc_pv import AvgAccPV
from repro.baselines.qf_only import QFOnly
from repro.baselines.best_effort import BestEffort
from repro.baselines.matching import MatchingPolicy

__all__ = [
    "AvgAccPV",
    "BestEffort",
    "MatchingPolicy",
    "QFOnly",
    "RandomEM",
    "RandomMV",
]
