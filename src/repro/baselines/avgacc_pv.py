"""AvgAccPV baseline (the CDAS approach [22]).

Estimates a single *average* accuracy per worker from gold-injected
qualification microtasks, keeps only workers above a threshold, and
aggregates answers with the probabilistic-verification model.  This is
the strongest non-adaptive baseline in the paper — and the one whose
blind spot (no per-domain accuracy) iCrowd exploits.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.aggregation.pv import probabilistic_verification
from repro.baselines.random_mv import RandomMV
from repro.core.qualification import WarmUp
from repro.core.types import (
    AnswerOutcome,
    Assignment,
    Label,
    TaskId,
    TaskSet,
    WorkerId,
)


class AvgAccPV(RandomMV):
    """Gold-injected average-accuracy policy with PV aggregation.

    Parameters
    ----------
    tasks:
        Full microtask set.
    qualification_tasks:
        The shared qualification set with requester-labelled truth.
    threshold:
        Minimum average qualification accuracy to keep a worker.
    k, seed:
        As in :class:`RandomMV`.
    """

    def __init__(
        self,
        tasks: TaskSet,
        qualification_tasks: Sequence[TaskId],
        threshold: float = 0.5,
        k: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(
            tasks, k=k, seed=seed, excluded_tasks=qualification_tasks
        )
        truth = {t: tasks[t].truth for t in qualification_tasks}
        self.warmup = WarmUp(truth, threshold=threshold)

    # ------------------------------------------------------------------
    def on_worker_request(
        self,
        worker_id: WorkerId,
        active_workers: Iterable[WorkerId] | None = None,
    ) -> Assignment | None:
        """Qualification first; then random tasks for qualified workers."""
        if not self.warmup.is_qualified(worker_id):
            return None
        pending = self.warmup.next_task(worker_id)
        if pending is not None:
            return Assignment(
                task_id=pending, worker_id=worker_id, is_test=True
            )
        return super().on_worker_request(worker_id, active_workers)

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool = False,
    ) -> AnswerOutcome:
        """Grade qualification answers; record the rest as votes.

        Idempotent like the base policy: a re-delivered qualification
        answer is reported ``DUPLICATE`` instead of re-graded.
        """
        if task_id in self.warmup.qualification_truth:
            if task_id in self.warmup.state_of(worker_id).graded:
                return AnswerOutcome.DUPLICATE
            self.warmup.grade(worker_id, task_id, label)
            return AnswerOutcome.ACCEPTED
        return super().on_answer(worker_id, task_id, label, is_test)

    def is_worker_rejected(self, worker_id: WorkerId) -> bool:
        """Whether warm-up eliminated this worker (platform hook)."""
        return not self.warmup.is_qualified(worker_id)

    # ------------------------------------------------------------------
    def worker_accuracies(self) -> dict[WorkerId, float]:
        """Average qualification accuracy per graded worker."""
        return {
            w: self.warmup.average_accuracy(w)
            for w in self.warmup.qualified_workers()
        }

    def predictions(self) -> dict[TaskId, Label]:
        """Probabilistic verification with average accuracies."""
        answers = self.all_answers()
        base = super(AvgAccPV, self).predictions()
        if not answers:
            return base
        pv = probabilistic_verification(answers, self.worker_accuracies())
        out: dict[TaskId, Label] = {}
        for task_id, label in base.items():
            if task_id in self.excluded:
                out[task_id] = label
            else:
                out[task_id] = pv.get(task_id, label)
        return out
