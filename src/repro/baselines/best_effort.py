"""BestEffort ablation (Section 6.3.2, strategy 2).

Adaptively updates accuracy estimates exactly like iCrowd, but assigns
each requesting worker her *own* best task — the eligible uncompleted
microtask with the highest estimated accuracy for that worker — with no
global scheme and no performance testing.  The paper shows this local
view backfires: the worker's best task usually has better candidates,
so low-accuracy votes leak into the majority and poison subsequent
estimation.
"""

from __future__ import annotations

from repro.core.framework import ICrowd
from repro.core.types import Assignment, WorkerId


class BestEffort(ICrowd):
    """iCrowd estimation + greedy per-worker (non-global) assignment."""

    def _choose_assignment(
        self, worker_id: WorkerId, actives: list[WorkerId]
    ) -> Assignment | None:
        accuracies = self._estimates[worker_id]
        best_task = None
        best_value = -1.0
        for state in self._states.values():
            if state.completed or state.remaining == 0:
                continue
            if state.has_seen(worker_id):
                continue
            value = float(accuracies[state.task_id])
            if value > best_value or (
                value == best_value
                and best_task is not None
                and state.task_id < best_task
            ):
                best_value = value
                best_task = state.task_id
        if best_task is None:
            return None
        return Assignment(task_id=best_task, worker_id=worker_id)
