"""Matching-based assignment comparator (related work [20]).

Uses iCrowd's estimation pipeline unchanged but replaces the greedy
set-packing assigner (Algorithm 3) with one-round maximum bipartite
matching via the Hungarian algorithm: each active worker is matched to
the task slot where her estimated accuracy is highest, subject to
one-slot-per-worker.  The ablation bench compares this against the
paper's set-packing view, which additionally prefers *completing*
tasks so consensus (and hence estimation feedback) arrives sooner.
"""

from __future__ import annotations

from repro.core.framework import ICrowd
from repro.core.hungarian import MatchingAssigner
from repro.core.types import Assignment, WorkerId


class MatchingPolicy(ICrowd):
    """iCrowd estimation + Hungarian matching assignment."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._matcher = MatchingAssigner()

    def _choose_assignment(
        self, worker_id: WorkerId, actives: list[WorkerId]
    ) -> Assignment | None:
        assignments = self._matcher.assign(
            list(self._states.values()), actives, self._estimates
        )
        for assignment in assignments:
            if assignment.worker_id == worker_id:
                return assignment
        return None
