"""QF-Only ablation (Section 6.3.2, strategy 1).

Uses iCrowd's graph-based estimation seeded by the qualification
microtasks, but never updates the estimates as workers complete real
tasks: the observed-accuracy vector ``q^w`` is frozen to the
qualification grades.  Assignment still runs the adaptive scheme, so
the only difference from full iCrowd (beyond worker testing, which is
pointless under frozen estimates) is the missing adaptive feedback —
which is exactly what Figure 8 isolates.
"""

from __future__ import annotations

from repro.core.framework import ICrowd
from repro.core.types import TaskId, WorkerId


class QFOnly(ICrowd):
    """iCrowd with estimation frozen to the qualification grades."""

    def _observed_of(self, worker_id: WorkerId) -> dict[TaskId, float]:
        """Only qualification answers contribute to ``q^w``."""
        observed: dict[TaskId, float] = {}
        truth = self.warmup.qualification_truth
        for answer in self._answers.get(worker_id, ()):
            gold = truth.get(answer.task_id)
            if gold is None:
                continue
            observed[answer.task_id] = 1.0 if answer.label == gold else 0.0
        return observed
