"""RandomEM baseline: random assignment + Dawid–Skene EM aggregation.

Same assignment strategy as :class:`repro.baselines.RandomMV`; the
final results are produced by the EM algorithm of [31, 8], which
iteratively estimates per-worker confusion matrices and task truths.
"""

from __future__ import annotations

from repro.aggregation.em import DawidSkene
from repro.baselines.random_mv import RandomMV
from repro.core.types import Label, TaskId


class RandomEM(RandomMV):
    """Random-assignment policy aggregated with Dawid–Skene EM.

    EM runs over the complete answer matrix whenever predictions are
    requested; partial runs fall back to majority voting for tasks EM
    has not seen (which cannot happen once the run finishes).
    """

    def predictions(self) -> dict[TaskId, Label]:
        """EM-aggregated results (majority fallback for unseen tasks)."""
        answers = self.all_answers()
        base = super().predictions()
        if not answers:
            return base
        em_result = DawidSkene().run(answers).predictions()
        out: dict[TaskId, Label] = {}
        for task_id, label in base.items():
            if task_id in self.excluded:
                out[task_id] = label  # ground truth
            else:
                out[task_id] = em_result.get(task_id, label)
        return out
