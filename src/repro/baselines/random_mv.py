"""RandomMV baseline: random task assignment + majority voting.

The paper's simplest baseline: every request is served with a uniformly
random uncompleted microtask the worker has not answered yet, and each
task's result is the majority of its ``k`` collected answers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.types import (
    Answer,
    Assignment,
    Label,
    TaskId,
    TaskSet,
    VoteState,
    WorkerId,
)
from repro.utils.rng import spawn_rng


class RandomMV:
    """Random-assignment, majority-voting policy.

    Parameters
    ----------
    tasks:
        The full microtask set.
    k:
        Assignment size per microtask.
    seed:
        RNG seed for assignment choices.
    excluded_tasks:
        Tasks not crowdsourced (the shared qualification set, already
        gold-labelled by the requester); their predictions fall back to
        ground truth like every other approach.
    """

    def __init__(
        self,
        tasks: TaskSet,
        k: int = 3,
        seed: int = 0,
        excluded_tasks: Sequence[TaskId] = (),
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.tasks = tasks
        self.k = k
        self.excluded: set[TaskId] = set(excluded_tasks)
        self._rng = spawn_rng(seed, "random-mv")
        self._votes: dict[TaskId, VoteState] = {
            t: VoteState(task_id=t, k=k)
            for t in tasks.ids()
            if t not in self.excluded
        }
        self._pending: dict[tuple[WorkerId, TaskId], bool] = {}
        self._holding: dict[TaskId, int] = {t: 0 for t in self._votes}
        self._seq = 0

    # ------------------------------------------------------------------
    def _eligible_tasks(self, worker_id: WorkerId) -> list[TaskId]:
        """Uncompleted tasks with spare capacity the worker hasn't seen."""
        eligible = []
        for task_id, votes in self._votes.items():
            if votes.is_complete():
                continue
            outstanding = len(votes.answers) + self._holding[task_id]
            if outstanding >= self.k:
                continue
            if worker_id in votes.workers():
                continue
            if (worker_id, task_id) in self._pending:
                continue
            eligible.append(task_id)
        return eligible

    def on_worker_request(
        self,
        worker_id: WorkerId,
        active_workers: Iterable[WorkerId] | None = None,
    ) -> Assignment | None:
        """Serve a uniformly random eligible task."""
        eligible = self._eligible_tasks(worker_id)
        if not eligible:
            return None
        task_id = eligible[int(self._rng.integers(0, len(eligible)))]
        self._pending[(worker_id, task_id)] = True
        self._holding[task_id] += 1
        return Assignment(task_id=task_id, worker_id=worker_id)

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool = False,
    ) -> None:
        """Record a vote."""
        if task_id in self.excluded:
            return
        self._seq += 1
        if self._pending.pop((worker_id, task_id), None) is not None:
            self._holding[task_id] -= 1
        self._votes[task_id].add(
            Answer(
                task_id=task_id,
                worker_id=worker_id,
                label=label,
                seq=self._seq,
            )
        )

    # ------------------------------------------------------------------
    def is_finished(self) -> bool:
        """True once every crowdsourced task reached its k votes."""
        return all(v.is_complete() for v in self._votes.values())

    def all_answers(self) -> list[Answer]:
        """Every collected answer (used by EM-style aggregations)."""
        return [a for votes in self._votes.values() for a in votes.answers]

    def predictions(self) -> dict[TaskId, Label]:
        """Majority vote per task; excluded tasks map to ground truth."""
        out: dict[TaskId, Label] = {}
        for task_id in self.tasks.ids():
            if task_id in self.excluded:
                out[task_id] = self.tasks[task_id].truth
            else:
                out[task_id] = self._votes[task_id].consensus()
        return out

    def completed_tasks(self) -> list[TaskId]:
        """Globally completed task ids (platform hook)."""
        return [t for t, v in self._votes.items() if v.is_complete()]
