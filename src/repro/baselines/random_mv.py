"""RandomMV baseline: random task assignment + majority voting.

The paper's simplest baseline: every request is served with a uniformly
random uncompleted microtask the worker has not answered yet, and each
task's result is the majority of its ``k`` collected answers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.types import (
    Answer,
    AnswerOutcome,
    Assignment,
    Label,
    TaskId,
    TaskSet,
    VoteState,
    WorkerId,
)
from repro.obs.metrics import NULL_RECORDER, Recorder
from repro.utils.rng import spawn_rng


class RandomMV:
    """Random-assignment, majority-voting policy.

    Parameters
    ----------
    tasks:
        The full microtask set.
    k:
        Assignment size per microtask.
    seed:
        RNG seed for assignment choices.
    excluded_tasks:
        Tasks not crowdsourced (the shared qualification set, already
        gold-labelled by the requester); their predictions fall back to
        ground truth like every other approach.
    recorder:
        Observability recorder (``None`` = disabled); counts served
        assignments so baseline runs expose the same policy-side
        telemetry surface as iCrowd (the platform records the rest).
    """

    def __init__(
        self,
        tasks: TaskSet,
        k: int = 3,
        seed: int = 0,
        excluded_tasks: Sequence[TaskId] = (),
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.recorder = recorder
        self.tasks = tasks
        self.k = k
        self.excluded: set[TaskId] = set(excluded_tasks)
        self._rng = spawn_rng(seed, "random-mv")
        self._votes: dict[TaskId, VoteState] = {
            t: VoteState(task_id=t, k=k)
            for t in tasks.ids()
            if t not in self.excluded
        }
        #: outstanding (worker, task) slots → policy-clock tick issued
        self._pending: dict[tuple[WorkerId, TaskId], int] = {}
        self._holding: dict[TaskId, int] = {t: 0 for t in self._votes}
        self._seq = 0
        self._clock = 0

    # ------------------------------------------------------------------
    def _eligible_tasks(self, worker_id: WorkerId) -> list[TaskId]:
        """Uncompleted tasks with spare capacity the worker hasn't seen."""
        eligible = []
        for task_id, votes in self._votes.items():
            if votes.is_complete():
                continue
            outstanding = len(votes.answers) + self._holding[task_id]
            if outstanding >= self.k:
                continue
            if worker_id in votes.workers():
                continue
            if (worker_id, task_id) in self._pending:
                continue
            eligible.append(task_id)
        return eligible

    def on_worker_request(
        self,
        worker_id: WorkerId,
        active_workers: Iterable[WorkerId] | None = None,
    ) -> Assignment | None:
        """Serve a uniformly random eligible task."""
        self._clock += 1
        eligible = self._eligible_tasks(worker_id)
        if not eligible:
            return None
        task_id = eligible[int(self._rng.integers(0, len(eligible)))]
        self._pending[(worker_id, task_id)] = self._clock
        self._holding[task_id] += 1
        self.recorder.counter(
            "repro_policy_assignments_total",
            "Assignments served by the policy.",
        ).inc()
        return Assignment(task_id=task_id, worker_id=worker_id)

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool = False,
    ) -> AnswerOutcome:
        """Record a vote, idempotently.

        A repeated ``(worker, task)`` delivery reports ``DUPLICATE``
        and changes nothing; a vote for a task that completed after the
        slot was requeued is ``IGNORED`` instead of stacking past ``k``.
        """
        if task_id in self.excluded:
            return AnswerOutcome.IGNORED
        self._clock += 1
        votes = self._votes[task_id]
        if worker_id in votes.workers():
            return AnswerOutcome.DUPLICATE
        held = self._pending.pop((worker_id, task_id), None)
        if held is not None:
            self._holding[task_id] -= 1
        if votes.is_complete():
            return AnswerOutcome.IGNORED
        self._seq += 1
        votes.add(
            Answer(
                task_id=task_id,
                worker_id=worker_id,
                label=label,
                seq=self._seq,
            )
        )
        return AnswerOutcome.ACCEPTED

    def release_assignment(self, worker_id: WorkerId, task_id: TaskId) -> bool:
        """Reopen an outstanding (unanswered) slot after lease expiry."""
        if self._pending.pop((worker_id, task_id), None) is None:
            return False
        self._holding[task_id] -= 1
        return True

    def expire_stale_assignments(
        self, max_age: int
    ) -> list[tuple[WorkerId, TaskId]]:
        """Release every slot held longer than ``max_age`` clock ticks."""
        if max_age < 0:
            raise ValueError("max_age must be >= 0")
        stale = [
            pair
            for pair, issued in self._pending.items()
            if self._clock - issued > max_age
        ]
        for worker_id, task_id in stale:
            self.release_assignment(worker_id, task_id)
        return stale

    def pending_assignments(self) -> dict[tuple[WorkerId, TaskId], int]:
        """Outstanding slots with their issue ticks (platform hook)."""
        return dict(self._pending)

    # ------------------------------------------------------------------
    def is_finished(self) -> bool:
        """True once every crowdsourced task reached its k votes."""
        return all(v.is_complete() for v in self._votes.values())

    def all_answers(self) -> list[Answer]:
        """Every collected answer (used by EM-style aggregations)."""
        return [a for votes in self._votes.values() for a in votes.answers]

    def predictions(self) -> dict[TaskId, Label]:
        """Majority vote per task; excluded tasks map to ground truth."""
        out: dict[TaskId, Label] = {}
        for task_id in self.tasks.ids():
            if task_id in self.excluded:
                out[task_id] = self.tasks[task_id].truth
            else:
                out[task_id] = self._votes[task_id].consensus()
        return out

    def completed_tasks(self) -> list[TaskId]:
        """Globally completed task ids (platform hook)."""
        return [t for t, v in self._votes.items() if v.is_complete()]
