"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig9 --dataset itemcompare --seed 7 --scale 0.33
    python -m repro.cli table5
    python -m repro.cli fig10 --sizes 25000 50000 100000

Each command prints the same rows/series the paper reports for that
experiment (see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.cli import (
    add_lint_arguments,
    run_lint,
    split_forwarded_args,
)
from repro.experiments import (
    fig6_diversity,
    fig7_qualification,
    fig8_adaptive,
    fig9_comparison,
    fig10_scalability,
    fig12_similarity,
    fig13_alpha,
    fig14_assignment_size,
    fig15_distribution,
    table4_datasets,
    table5_approximation,
)

#: Experiments taking the standard (dataset, seed, scale) signature.
_STANDARD = {
    "fig6": fig6_diversity,
    "fig7": fig7_qualification,
    "fig8": fig8_adaptive,
    "fig9": fig9_comparison,
    "fig12": fig12_similarity,
    "fig13": fig13_alpha,
    "fig14": fig14_assignment_size,
    "fig15": fig15_distribution,
}

_DESCRIPTIONS = {
    "table4": "dataset statistics",
    "fig6": "worker accuracy diversity across domains",
    "fig7": "qualification selection: RandomQF vs InfQF",
    "fig8": "adaptive assignment: QF-Only / BestEffort / Adapt",
    "fig9": "comparison with RandomMV / RandomEM / AvgAccPV",
    "fig10": "assignment scalability",
    "fig12": "similarity measures and thresholds",
    "fig13": "alpha parameter sweep",
    "fig14": "assignment size (k) sweep",
    "table5": "greedy assignment approximation error",
    "fig15": "assignment distribution over workers",
    "perf": "offline-phase timings: kernel, parallel basis, sharded, cache",
    "chaos": "interaction-loop resilience under injected faults",
    "telemetry": "instrumented run: span timings, counters, SLOs, trace",
    "timeline": "flight recorder: per-task timelines from a trace file",
    "lint": "repro-lint static analysis (RL001-RL007; RL1xx-RL4xx "
    "with --deep) and the --race dynamic lockset sanitizer",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with one subcommand per experiment."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate iCrowd (SIGMOD 2015) evaluation results.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    table4 = sub.add_parser("table4", help=_DESCRIPTIONS["table4"])
    table4.add_argument("--seed", type=int, default=7)
    for name, _ in _STANDARD.items():
        cmd = sub.add_parser(name, help=_DESCRIPTIONS[name])
        cmd.add_argument(
            "--dataset",
            choices=["itemcompare", "yahooqa"],
            default="itemcompare",
        )
        cmd.add_argument("--seed", type=int, default=7)
        cmd.add_argument(
            "--scale",
            type=float,
            default=0.33,
            help="fraction of the paper's task count (1.0 = full size)",
        )
    fig10 = sub.add_parser("fig10", help=_DESCRIPTIONS["fig10"])
    fig10.add_argument(
        "--sizes", type=int, nargs="+",
        default=[25_000, 50_000, 100_000, 200_000],
    )
    fig10.add_argument(
        "--neighbors", type=int, nargs="+", default=[20, 40]
    )
    fig10.add_argument("--requests", type=int, default=2000)
    fig10.add_argument("--seed", type=int, default=7)
    fig10.add_argument(
        "--insertion",
        action="store_true",
        help="run the Section 6.5 insertion protocol instead of the "
        "pre-built-graph sweep",
    )
    table5 = sub.add_parser("table5", help=_DESCRIPTIONS["table5"])
    table5.add_argument("--seed", type=int, default=7)
    table5.add_argument(
        "--workers", type=int, nargs="+", default=[3, 4, 5, 6, 7]
    )
    perf = sub.add_parser("perf", help=_DESCRIPTIONS["perf"])
    perf.add_argument(
        "--kernel-tasks", type=int, default=50_000,
        help="graph size for the push-kernel comparison",
    )
    perf.add_argument("--kernel-sources", type=int, default=3)
    perf.add_argument(
        "--basis-tasks", type=int, default=6_000,
        help="graph size for the serial vs parallel basis build",
    )
    perf.add_argument(
        "--cache-tasks", type=int, default=5_000,
        help="graph size for the cold vs warm estimator start",
    )
    perf.add_argument(
        "--workers", type=int, default=None,
        help="parallel-push pool size (default: one per core, min 2)",
    )
    perf.add_argument(
        "--cache-dir", default=None,
        help="basis cache directory (default: a throwaway temp dir; "
        "set REPRO_BASIS_CACHE to warm-start other commands too)",
    )
    perf.add_argument("--seed", type=int, default=7)
    perf.add_argument(
        "--sharded", dest="sharded", action="store_true", default=True,
        help="measure the sharded offline phase (default: on)",
    )
    perf.add_argument(
        "--no-sharded", dest="sharded", action="store_false",
        help="skip the sharded section",
    )
    perf.add_argument(
        "--shard-size", type=int, default=None,
        help="max tasks per shard for the sharded section "
        "(default: max(256, basis_tasks // (workers * 2)))",
    )
    perf.add_argument(
        "--incremental", dest="incremental", action="store_true",
        default=True,
        help="measure insertion-round basis repair vs full rebuild "
        "(default: on)",
    )
    perf.add_argument(
        "--no-incremental", dest="incremental", action="store_false",
        help="skip the incremental section",
    )
    perf.add_argument(
        "--stream-tasks", type=int, default=5_000,
        help="initial graph size for the incremental section",
    )
    perf.add_argument(
        "--stream-batch", type=int, default=100,
        help="tasks inserted per incremental round",
    )
    perf.add_argument(
        "--stream-rounds", type=int, default=3,
        help="insertion rounds in the incremental section",
    )
    perf.add_argument(
        "--sanitizer", dest="sanitizer", action="store_true",
        default=True,
        help="measure the race-sanitizer instrumentation tax "
        "(default: on)",
    )
    perf.add_argument(
        "--no-sanitizer", dest="sanitizer", action="store_false",
        help="skip the sanitizer section",
    )
    perf.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write machine-readable results to PATH",
    )
    perf.add_argument(
        "--profile", default=None, metavar="PATH",
        help="sample the measurement and write collapsed stacks "
        "(flamegraph input) to PATH",
    )
    chaos = sub.add_parser("chaos", help=_DESCRIPTIONS["chaos"])
    chaos.add_argument(
        "--dataset",
        choices=["itemcompare", "yahooqa"],
        default="itemcompare",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--scale",
        type=float,
        default=0.33,
        help="fraction of the paper's task count (1.0 = full size)",
    )
    chaos.add_argument(
        "--rates", type=float, nargs="+",
        default=[0.0, 0.05, 0.10, 0.20],
        help="fault rates to sweep (0 is the fault-free control)",
    )
    chaos.add_argument(
        "--approaches", nargs="+", default=["iCrowd", "RandomMV"],
        help="assignment policies to stress",
    )
    chaos.add_argument(
        "--abandonment", type=float, default=0.0,
        help="probability a worker walks away from an assignment",
    )
    chaos.add_argument(
        "--timeout", type=int, default=50,
        help="assignment lease lifetime in platform steps",
    )
    telemetry = sub.add_parser(
        "telemetry", help=_DESCRIPTIONS["telemetry"]
    )
    telemetry.add_argument(
        "setup",
        choices=["itemcompare", "yahooqa"],
        help="experiment setup (dataset) to run instrumented",
    )
    telemetry.add_argument("--seed", type=int, default=7)
    telemetry.add_argument(
        "--scale",
        type=float,
        default=0.33,
        help="fraction of the paper's task count (1.0 = full size)",
    )
    telemetry.add_argument(
        "--trace", default="telemetry_trace.jsonl", metavar="PATH",
        help="JSONL span+event trace output (use '' to disable)",
    )
    telemetry.add_argument(
        "--max-steps", type=int, default=None,
        help="platform step cap (default: generous auto cap)",
    )
    telemetry.add_argument(
        "--faults", type=float, default=0.0, metavar="RATE",
        help="run a traced chaos round: FaultConfig.chaos(RATE)",
    )
    telemetry.add_argument(
        "--profile", default=None, metavar="PATH",
        help="sample the run and write collapsed stacks to PATH",
    )
    telemetry.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (json = machine-readable as_dict payload)",
    )
    timeline = sub.add_parser(
        "timeline", help=_DESCRIPTIONS["timeline"]
    )
    timeline.add_argument(
        "trace",
        help="combined span+event JSONL trace (telemetry --trace output)",
    )
    timeline.add_argument(
        "--task", type=int, default=None, metavar="ID",
        help="show only this task's lifecycle timeline",
    )
    timeline.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="export a Chrome trace-event JSON file (Perfetto input)",
    )
    timeline.add_argument(
        "--validate", action="store_true",
        help="schema-check the Chrome trace; non-zero exit on errors",
    )
    timeline.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format for the timelines themselves",
    )
    lint = sub.add_parser("lint", help=_DESCRIPTIONS["lint"])
    add_lint_arguments(lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    own = list(sys.argv[1:]) if argv is None else list(argv)
    forwarded: list[str] = []
    if own[:1] == ["lint"]:
        own, forwarded = split_forwarded_args(own)
    args = build_parser().parse_args(own)
    if args.command == "lint":
        return run_lint(args, forwarded)
    if args.command == "list":
        for name, description in _DESCRIPTIONS.items():
            print(f"{name:<8} {description}")
        return 0
    if args.command == "table4":
        print(table4_datasets(seed=args.seed).format_table())
        return 0
    if args.command == "fig10":
        if args.insertion:
            from repro.experiments import fig10_insertion

            result = fig10_insertion(
                batch_size=args.sizes[0],
                rounds=len(args.sizes),
                max_neighbors=args.neighbors[0],
                requests_per_round=args.requests,
                seed=args.seed,
            )
        else:
            result = fig10_scalability(
                sizes=args.sizes,
                neighbor_bounds=args.neighbors,
                requests_per_size=args.requests,
                seed=args.seed,
            )
        print(result.format_table())
        return 0
    if args.command == "table5":
        result = table5_approximation(
            seed=args.seed, worker_counts=args.workers
        )
        print(result.format_table())
        return 0
    if args.command == "perf":
        from repro.experiments import perf_offline

        result = perf_offline(
            kernel_tasks=args.kernel_tasks,
            kernel_sources=args.kernel_sources,
            basis_tasks=args.basis_tasks,
            cache_tasks=args.cache_tasks,
            num_workers=args.workers,
            cache_dir=args.cache_dir,
            seed=args.seed,
            sharded=args.sharded,
            shard_size=args.shard_size,
            incremental=args.incremental,
            stream_tasks=args.stream_tasks,
            stream_batch=args.stream_batch,
            stream_rounds=args.stream_rounds,
            sanitizer=args.sanitizer,
            profile_path=args.profile,
        )
        print(result.format_table())
        if args.json:
            print(f"wrote {result.write_json(args.json)}")
        return 0
    if args.command == "chaos":
        from repro.experiments import chaos_resilience

        result = chaos_resilience(
            dataset=args.dataset,
            seed=args.seed,
            scale=args.scale,
            rates=tuple(args.rates),
            approaches=tuple(args.approaches),
            abandonment=args.abandonment,
            assignment_timeout=args.timeout,
        )
        print(result.format_table())
        return 0
    if args.command == "telemetry":
        from repro.experiments import run_telemetry

        result = run_telemetry(
            dataset=args.setup,
            seed=args.seed,
            scale=args.scale,
            trace_path=args.trace or None,
            max_steps=args.max_steps,
            faults_rate=args.faults,
            profile_path=args.profile,
        )
        if args.format == "json":
            print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        else:
            print(result.format_table())
        return 0
    if args.command == "timeline":
        from repro.obs.flight import FlightRecorder, validate_chrome_trace

        recorder = FlightRecorder.from_jsonl(args.trace)
        if args.chrome or args.validate:
            trace = recorder.chrome_trace()
            errors = validate_chrome_trace(trace) if args.validate else []
            for error in errors:
                print(f"invalid chrome trace: {error}", file=sys.stderr)
            if args.chrome:
                out = recorder.write_chrome(args.chrome)
                print(f"wrote {out}")
            if errors:
                return 1
        if args.format == "json":
            print(json.dumps(recorder.as_dict(), indent=2, sort_keys=True))
        else:
            print(recorder.format_table(task_id=args.task))
        return 0
    runner = _STANDARD[args.command]
    result = runner(args.dataset, seed=args.seed, scale=args.scale)
    print(result.format_table())
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `... | head`): the unix
        # convention is a quiet exit, not a traceback
        sys.stderr.close()
        sys.exit(141)
