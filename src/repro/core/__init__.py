"""iCrowd core: estimation, assignment, qualification (the paper's
primary contribution, Sections 3-5)."""

from repro.core.assigner import (
    AdaptiveAssigner,
    TaskState,
    TopWorkerSet,
    compute_top_worker_set,
    compute_top_worker_sets,
    greedy_assign,
    group_states_by_shard,
    merge_shard_schemes,
    scheme_value,
)
from repro.core.config import (
    AssignerConfig,
    EstimatorConfig,
    GraphConfig,
    ICrowdConfig,
    QualificationConfig,
)
from repro.core.estimator import AccuracyEstimator
from repro.core.early_stop import EarlyStopICrowd
from repro.core.framework import ICrowd
from repro.core.framework_multi import MultiICrowd, MultiTask
from repro.core.graph import SimilarityGraph
from repro.core.hungarian import MatchingAssigner, hungarian, max_accuracy_matching
from repro.core.multichoice import (
    MultiVoteState,
    multichoice_observed_accuracy,
    plurality_vote,
)
from repro.core.indexes import (
    ScalableAssigner,
    ShardedGraph,
    ShardIndex,
    SparseEstimateIndex,
)
from repro.core.streaming import GrowableGraph, StreamingAssigner
from repro.core.graph_selection import (
    GraphScore,
    score_graph,
    select_similarity,
)
from repro.core.observed import (
    ObservedAccuracyComputer,
    consensus_observed_accuracy,
)
from repro.core.persistence import (
    basis_cache_key,
    load_basis,
    load_checkpoint,
    restore_state,
    save_basis,
    save_checkpoint,
)
from repro.core.optimal import (
    approximation_error,
    bitmask_optimal,
    enumerate_optimal,
)
from repro.core.ppr import (
    ConvergenceWarning,
    PPRBasis,
    PushKernel,
    PushStats,
    ShardedBasis,
    forward_push,
    forward_push_reference,
    power_iteration,
    solve_exact,
)
from repro.core.qualification import (
    WarmUp,
    influence,
    select_qualification_tasks,
    select_random_tasks,
)
from repro.core.testing import PerformanceTester, beta_variance
from repro.core.types import (
    Answer,
    Assignment,
    Label,
    Task,
    TaskId,
    TaskResult,
    TaskSet,
    VoteState,
    WorkerId,
)

__all__ = [
    "AccuracyEstimator",
    "AdaptiveAssigner",
    "Answer",
    "Assignment",
    "AssignerConfig",
    "ConvergenceWarning",
    "PushKernel",
    "PushStats",
    "EarlyStopICrowd",
    "EstimatorConfig",
    "GraphConfig",
    "ICrowd",
    "GraphScore",
    "GrowableGraph",
    "ICrowdConfig",
    "Label",
    "MatchingAssigner",
    "MultiICrowd",
    "MultiTask",
    "MultiVoteState",
    "ObservedAccuracyComputer",
    "PerformanceTester",
    "PPRBasis",
    "QualificationConfig",
    "ScalableAssigner",
    "ShardedBasis",
    "ShardedGraph",
    "ShardIndex",
    "SimilarityGraph",
    "SparseEstimateIndex",
    "StreamingAssigner",
    "Task",
    "TaskId",
    "TaskResult",
    "TaskSet",
    "TaskState",
    "TopWorkerSet",
    "VoteState",
    "WarmUp",
    "WorkerId",
    "approximation_error",
    "basis_cache_key",
    "beta_variance",
    "bitmask_optimal",
    "compute_top_worker_set",
    "compute_top_worker_sets",
    "consensus_observed_accuracy",
    "enumerate_optimal",
    "forward_push",
    "forward_push_reference",
    "greedy_assign",
    "group_states_by_shard",
    "hungarian",
    "merge_shard_schemes",
    "influence",
    "load_basis",
    "load_checkpoint",
    "max_accuracy_matching",
    "multichoice_observed_accuracy",
    "plurality_vote",
    "power_iteration",
    "restore_state",
    "save_basis",
    "save_checkpoint",
    "scheme_value",
    "score_graph",
    "select_similarity",
    "select_qualification_tasks",
    "select_random_tasks",
    "solve_exact",
]
