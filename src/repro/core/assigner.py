"""Adaptive microtask assignment (Section 4).

Implements:

- **Top worker sets** (Definition 3): for each uncompleted task, the
  ``k' = k - |W^d(t_i)|`` eligible workers with the highest estimated
  accuracies.
- **Greedy optimal assignment** (Algorithm 3): the optimal microtask
  assignment of Definition 4 is NP-hard (Lemma 4, by reduction from
  k-set packing), so candidates are picked greedily by average worker
  accuracy, discarding candidates that share workers with selections.
- **Algorithm 2** (``assign``): top-worker generation, greedy selection,
  then performance testing for idle workers.

The greedy step uses a max-heap with lazy invalidation instead of the
naive O(|T|²) rescan: each pop either yields a still-valid candidate or
discards a stale one, giving O(|T| log |T| + overlaps).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import AssignerConfig
from repro.core.types import Assignment, TaskId, WorkerId
from repro.obs.metrics import NULL_RECORDER, Recorder

if TYPE_CHECKING:
    from repro.core.indexes import ShardIndex
    from repro.core.testing import PerformanceTester


@dataclass(frozen=True)
class TopWorkerSet:
    """A candidate assignment ⟨t_i, Ŵ(t_i)⟩ (Definition 3).

    ``workers`` is ordered by descending estimated accuracy and has size
    ``min(k', |eligible|)``.
    """

    task_id: TaskId
    workers: tuple[tuple[WorkerId, float], ...]

    @property
    def worker_ids(self) -> frozenset[WorkerId]:
        return frozenset(w for w, _ in self.workers)

    @property
    def sum_accuracy(self) -> float:
        """Overall accuracy ``Σ_{w∈Ŵ(t_i)} p_i^w`` (Definition 4)."""
        return sum(p for _, p in self.workers)

    @property
    def avg_accuracy(self) -> float:
        """Greedy selection score of Algorithm 3 (average accuracy)."""
        if not self.workers:
            return 0.0
        return self.sum_accuracy / len(self.workers)


@dataclass
class TaskState:
    """Assignment-relevant state of one task, as seen by the assigner.

    ``assigned_workers`` is ``W^d(t_i)``: workers that answered the task
    or are currently holding it (their answers count toward ``k``).
    ``tested_workers`` saw the task as a performance test; their answers
    do not count toward ``k`` but they must not see the task again.
    """

    task_id: TaskId
    k: int
    assigned_workers: set[WorkerId] = field(default_factory=set)
    tested_workers: set[WorkerId] = field(default_factory=set)
    completed: bool = False

    @property
    def remaining(self) -> int:
        """Available assignment size ``k' = k - |W^d(t_i)|``."""
        return max(0, self.k - len(self.assigned_workers))

    def has_seen(self, worker_id: WorkerId) -> bool:
        """Whether the worker already saw this task (vote or test)."""
        return (
            worker_id in self.assigned_workers
            or worker_id in self.tested_workers
        )

    def eligible(self, workers: Sequence[WorkerId]) -> list[WorkerId]:
        """Workers in ``W^u(t_i)`` = workers not already on this task."""
        return [w for w in workers if not self.has_seen(w)]


def compute_top_worker_set(
    state: TaskState,
    active_workers: Sequence[WorkerId],
    accuracies: Mapping[WorkerId, np.ndarray],
) -> TopWorkerSet | None:
    """Build Ŵ(t_i) for one task, or None when nothing can be assigned."""
    if state.completed or state.remaining == 0:
        return None
    eligible = state.eligible(active_workers)
    if not eligible:
        return None
    scored = sorted(
        ((w, float(accuracies[w][state.task_id])) for w in eligible),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return TopWorkerSet(
        task_id=state.task_id,
        workers=tuple(scored[: state.remaining]),
    )


def compute_top_worker_sets(
    states: Sequence[TaskState],
    active_workers: Sequence[WorkerId],
    accuracies: Mapping[WorkerId, np.ndarray],
) -> list[TopWorkerSet]:
    """Algorithm 2, step 1: top worker sets for all uncompleted tasks."""
    sets: list[TopWorkerSet] = []
    for state in states:
        top = compute_top_worker_set(state, active_workers, accuracies)
        if top is not None and top.workers:
            sets.append(top)
    return sets


def compute_top_worker_sets_fast(
    states: Sequence[TaskState],
    active_workers: Sequence[WorkerId],
    accuracies: Mapping[WorkerId, np.ndarray],
) -> list[TopWorkerSet]:
    """Vectorised equivalent of :func:`compute_top_worker_sets`.

    Stacks the per-worker accuracy vectors into one matrix and ranks
    each task's column with numpy.  Produces byte-identical output to
    the reference implementation (same ``(-accuracy, worker_id)`` tie
    ordering); the reference stays for differential testing.
    """
    workers = list(active_workers)
    if not workers:
        return []
    matrix = np.stack([np.asarray(accuracies[w]) for w in workers])
    # a stable ordering key per worker for deterministic tie-breaks
    worker_rank = np.argsort(np.argsort(np.array(workers)))
    sets: list[TopWorkerSet] = []
    for state in states:
        if state.completed or state.remaining == 0:
            continue
        column = matrix[:, state.task_id]
        if state.assigned_workers or state.tested_workers:
            mask = np.array(
                [not state.has_seen(w) for w in workers], dtype=bool
            )
            if not mask.any():
                continue
        else:
            mask = None
        if mask is None:
            scores = column
            order = np.lexsort((worker_rank, -scores))
        else:
            scores = np.where(mask, column, -np.inf)
            order = np.lexsort((worker_rank, -scores))
            order = order[: int(mask.sum())]
        top = order[: state.remaining]
        sets.append(
            TopWorkerSet(
                task_id=state.task_id,
                workers=tuple(
                    (workers[i], float(column[i])) for i in top
                ),
            )
        )
    return sets


def greedy_assign(candidates: Sequence[TopWorkerSet]) -> list[TopWorkerSet]:
    """Algorithm 3: greedy approximation of optimal microtask assignment.

    Repeatedly selects the candidate with the highest average worker
    accuracy whose workers are all still free, until no candidate
    remains.  Ties break by task id for determinism.
    """
    heap: list[tuple[float, TaskId, TopWorkerSet]] = [
        (-c.avg_accuracy, c.task_id, c) for c in candidates if c.workers
    ]
    heapq.heapify(heap)
    used_workers: set[WorkerId] = set()
    scheme: list[TopWorkerSet] = []
    while heap:
        _, _, candidate = heapq.heappop(heap)
        if candidate.worker_ids & used_workers:
            continue  # stale: overlaps an earlier selection
        scheme.append(candidate)
        used_workers |= candidate.worker_ids
    return scheme


def scheme_value(scheme: Sequence[TopWorkerSet]) -> float:
    """Objective of Definition 4: Σ over selected tasks of Σ p_i^w."""
    return sum(c.sum_accuracy for c in scheme)


def group_states_by_shard(
    states: Sequence[TaskState], index: "ShardIndex"
) -> dict[int, list[TaskState]]:
    """Task states grouped by owning shard, shards in ascending order
    (deterministic: groups are built sorted, members keep input order)."""
    buckets: dict[int, list[TaskState]] = {}
    for state in states:
        buckets.setdefault(index.shard_of(state.task_id), []).append(state)
    return {shard_id: buckets[shard_id] for shard_id in sorted(buckets)}


def merge_shard_schemes(
    shard_schemes: Mapping[int, Sequence[TopWorkerSet]],
) -> list[TopWorkerSet]:
    """Cross-shard pass: one global greedy over the shards' selections.

    Each shard's local greedy already resolved intra-shard worker
    conflicts, so the merge only has to arbitrate workers claimed by
    selections in *different* shards — its input is the (small) union
    of local winners, not every candidate.  When shards are
    worker-disjoint no selection conflicts and the local schemes pass
    through unchanged, which is the property the whole-graph-equality
    test pins down.
    """
    candidates = [
        candidate
        for shard_id in sorted(shard_schemes)
        for candidate in shard_schemes[shard_id]
    ]
    return greedy_assign(candidates)


@dataclass
class _RoundCache:
    """One computed greedy scheme, reused across the requests of a round.

    ``key`` is ``(epoch, frozenset(actives))`` — the scheme stays valid
    while no answer has arrived (the framework bumps the epoch on every
    state mutation) and the active worker set is unchanged.  ``served``
    tracks workers whose scheme slot was already issued: issuing a slot
    mutates task state exactly as the scheme prescribed, so the rest of
    the scheme remains consistent, but re-serving the same slot would
    hand the worker a duplicate task.
    """

    key: tuple[int, frozenset[WorkerId]]
    scheme: list[TopWorkerSet]
    by_worker: dict[WorkerId, TopWorkerSet]
    served: set[WorkerId] = field(default_factory=set)
    #: Per-shard local schemes backing ``scheme`` when the assigner is
    #: sharded; lets a mid-round re-request refresh only the stale
    #: shard and re-merge instead of recomputing every shard.
    shard_schemes: dict[int, list[TopWorkerSet]] | None = None


class AdaptiveAssigner:
    """Algorithm 2: the full adaptive assignment framework.

    Combines top-worker-set generation, greedy scheme selection and
    worker performance testing (delegated to a
    :class:`repro.core.testing.PerformanceTester` supplied by the
    framework).

    The greedy scheme is worker-disjoint, so one scheme answers a whole
    *round* of per-worker requests: when the framework supplies its
    invalidation ``epoch``, the scheme is cached and every request of
    the round is served by a dictionary lookup instead of a fresh
    O(|T| log |T|) computation.  The cache is dropped when the epoch
    advances (an answer arrived), the active set changes, or a worker
    re-requests an already-issued slot.
    """

    def __init__(
        self,
        config: AssignerConfig | None = None,
        tester: "PerformanceTester | None" = None,
        shard_index: "ShardIndex | None" = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.config = config or AssignerConfig()
        self.tester = tester
        #: When set, greedy schemes are computed per shard and merged
        #: with a cross-shard pass (see :func:`merge_shard_schemes`);
        #: None keeps the whole-graph walk.
        self.shard_index = shard_index
        self.recorder = recorder
        self._round_cache: _RoundCache | None = None
        #: Number of greedy scheme computations performed (tests assert
        #: amortisation: one per invalidation epoch, not one per request).
        self.scheme_computations = 0

    def _compute_shard_schemes(
        self,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
        refresh: set[int] | None = None,
        previous: dict[int, list[TopWorkerSet]] | None = None,
    ) -> dict[int, list[TopWorkerSet]]:
        """Local greedy scheme per shard (shards in ascending order).

        With ``refresh``/``previous`` given, only the named shards are
        recomputed and the rest are carried over from ``previous`` —
        the mid-round partial-invalidation path.
        """
        index = self.shard_index
        assert index is not None
        schemes: dict[int, list[TopWorkerSet]] = {}
        for shard_id, members in group_states_by_shard(
            states, index
        ).items():
            if (
                refresh is not None
                and previous is not None
                and shard_id not in refresh
            ):
                schemes[shard_id] = previous.get(shard_id, [])
                continue
            self.recorder.counter(
                "repro_assigner_shard_scheme_builds_total",
                "Per-shard greedy schemes computed.",
            ).inc()
            candidates = compute_top_worker_sets_fast(
                members, active_workers, accuracies
            )
            schemes[shard_id] = greedy_assign(candidates)
        return schemes

    def _compute_scheme(
        self,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
    ) -> tuple[list[TopWorkerSet], dict[int, list[TopWorkerSet]] | None]:
        """Shared scheme walk: top worker sets, then greedy selection.

        Returns the merged scheme plus, when sharded, the per-shard
        local schemes it was merged from (for partial round refresh).
        """
        self.scheme_computations += 1
        self.recorder.counter(
            "repro_assigner_scheme_builds_total",
            "Greedy assignment schemes computed from scratch.",
        ).inc()
        with self.recorder.span("assigner.scheme"):
            if self.shard_index is not None:
                shard_schemes = self._compute_shard_schemes(
                    states, active_workers, accuracies
                )
                return merge_shard_schemes(shard_schemes), shard_schemes
            candidates = compute_top_worker_sets_fast(
                states, active_workers, accuracies
            )
            return greedy_assign(candidates), None

    def invalidate(self) -> None:
        """Drop the cached round scheme (state changed out of band)."""
        self._round_cache = None

    def _scheme_for_round(
        self,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
        epoch: int | None,
    ) -> _RoundCache:
        key = (epoch, frozenset(active_workers))
        if (
            epoch is not None
            and self._round_cache is not None
            and self._round_cache.key == key
        ):
            self.recorder.counter(
                "repro_assigner_round_cache_hits_total",
                "Worker requests served from the cached round scheme.",
            ).inc()
            return self._round_cache
        scheme, shard_schemes = self._compute_scheme(
            states, active_workers, accuracies
        )
        cache = _RoundCache(
            key=key,
            scheme=scheme,
            by_worker=self._index_by_worker(scheme),
            shard_schemes=shard_schemes,
        )
        self._round_cache = cache if epoch is not None else None
        return cache

    @staticmethod
    def _index_by_worker(
        scheme: Sequence[TopWorkerSet],
    ) -> dict[WorkerId, TopWorkerSet]:
        by_worker: dict[WorkerId, TopWorkerSet] = {}
        for selected in scheme:
            for scheme_worker, _ in selected.workers:
                by_worker[scheme_worker] = selected
        return by_worker

    def _refresh_round_shard(
        self,
        cache: _RoundCache,
        shard_id: int,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
    ) -> _RoundCache:
        """Recompute one stale shard's local scheme and re-merge.

        Within a round (fixed epoch + active set) estimates cannot
        change, so when a worker re-requests mid-round only the shard
        owning her held task is stale — every other shard's local
        scheme is still valid and is reused as-is.
        """
        assert cache.shard_schemes is not None
        self.recorder.counter(
            "repro_assigner_shard_refreshes_total",
            "Mid-round scheme refreshes limited to the stale shard.",
        ).inc()
        with self.recorder.span("assigner.shard_refresh", shard=shard_id):
            shard_schemes = self._compute_shard_schemes(
                states,
                active_workers,
                accuracies,
                refresh={shard_id},
                previous=cache.shard_schemes,
            )
            scheme = merge_shard_schemes(shard_schemes)
        refreshed = _RoundCache(
            key=cache.key,
            scheme=scheme,
            by_worker=self._index_by_worker(scheme),
            served=cache.served,
            shard_schemes=shard_schemes,
        )
        if self._round_cache is cache:
            self._round_cache = refreshed
        return refreshed

    def assign(
        self,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
    ) -> list[Assignment]:
        """Produce assignments for the current active worker set.

        Returns one :class:`Assignment` per (worker, task) pair in the
        greedy scheme, plus test assignments (``is_test=True``) for
        workers left idle when a tester is configured.
        """
        scheme, _ = self._compute_scheme(states, active_workers, accuracies)
        assignments: list[Assignment] = []
        assigned_workers: set[WorkerId] = set()
        for selected in scheme:
            for worker_id, _ in selected.workers:
                assignments.append(
                    Assignment(task_id=selected.task_id, worker_id=worker_id)
                )
                assigned_workers.add(worker_id)
        if self.tester is not None:
            for worker_id in active_workers:
                if worker_id in assigned_workers:
                    continue
                test_task = self.tester.choose_test_task(
                    worker_id, states, accuracies
                )
                if test_task is not None:
                    assignments.append(
                        Assignment(
                            task_id=test_task,
                            worker_id=worker_id,
                            is_test=True,
                        )
                    )
        return assignments

    def assign_for_worker(
        self,
        worker_id: WorkerId,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
        epoch: int | None = None,
    ) -> Assignment | None:
        """Assignment for one requesting worker (the platform's unit of
        interaction — each iteration is triggered by a worker request).

        Runs the full scheme over all active workers so the requesting
        worker is only given a task for which she is part of the best
        scheme; falls back to a performance test otherwise.  When the
        caller supplies its invalidation ``epoch``, the scheme is
        computed once per (epoch, active set) round and each request is
        served from the cached scheme.
        """
        if worker_id not in active_workers:
            raise ValueError(f"worker {worker_id!r} is not active")
        cache = self._scheme_for_round(
            states, active_workers, accuracies, epoch
        )
        if worker_id in cache.served:
            # the worker re-requests while still holding her scheme slot:
            # recompute against current state (she is excluded from the
            # held task, so a fresh scheme may place her elsewhere).
            held = cache.by_worker.get(worker_id)
            if (
                self.shard_index is not None
                and cache.shard_schemes is not None
                and held is not None
            ):
                # only the shard owning her held task went stale;
                # refresh it alone and re-merge with the other shards'
                # still-valid local schemes.
                cache = self._refresh_round_shard(
                    cache,
                    self.shard_index.shard_of(held.task_id),
                    states,
                    active_workers,
                    accuracies,
                )
            else:
                self._round_cache = None
                cache = self._scheme_for_round(
                    states, active_workers, accuracies, epoch
                )
        selected = cache.by_worker.get(worker_id)
        if selected is not None:
            cache.served.add(worker_id)
            return Assignment(
                task_id=selected.task_id, worker_id=worker_id
            )
        # the requester is in no selected top worker set: test her
        # performance instead (Algorithm 2, step 3) — but only her; the
        # other idle workers get their tests when they request.
        if self.tester is None:
            return None
        test_task = self.tester.choose_test_task(
            worker_id, states, accuracies
        )
        if test_task is None:
            return None
        return Assignment(task_id=test_task, worker_id=worker_id, is_test=True)
