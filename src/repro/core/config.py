"""Configuration for the iCrowd framework.

All tunables named in the paper live here with the paper's defaults:

- ``alpha`` — Eq. (2) balance between graph smoothness and fidelity to the
  observed accuracies; the paper's Appendix D.2 settles on ``alpha = 1.0``.
- ``k`` — assignment size per microtask (paper default 3).
- ``num_qualification`` — number Q of qualification microtasks (paper uses
  10 in Section 6.3.1).
- ``qualification_threshold`` — warm-up elimination threshold (Section 2.2
  example: 0.6, i.e. reject a worker answering fewer than 3 of 5 correctly).
- ``similarity_threshold`` — edges below this similarity are dropped
  (Appendix D.1 settles on 0.8 for cos(topic); 0.5 in the running example).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class EstimatorConfig:
    """Knobs of the graph-based accuracy estimator (Section 3)."""

    #: Eq. (2) trade-off; larger pulls estimates toward observations.
    alpha: float = 1.0
    #: Convergence tolerance of the personalized-PageRank iteration.
    ppr_tol: float = 1e-8
    #: Hard cap on PPR iterations (Eq. 4 converges geometrically).
    ppr_max_iter: int = 200
    #: Entries of a basis vector below this value are truncated to keep the
    #: offline basis sparse (localised PPR); 0 disables truncation.
    basis_epsilon: float = 1e-6
    #: Default accuracy for workers with no observations at all; the paper
    #: uses the warm-up average before the first estimate exists.
    prior_accuracy: float = 0.5
    #: Process count for the parallel offline basis (``parallel-push``);
    #: 0 = one worker per CPU core.  The parallel path is only auto-
    #: selected when more than one worker resolves.
    num_workers: int = 0
    #: Directory for the on-disk offline-basis cache; None disables it
    #: (the ``REPRO_BASIS_CACHE`` environment variable then acts as the
    #: fallback default, see :class:`repro.core.AccuracyEstimator`).
    basis_cache_dir: str | None = None
    #: Shard-size cap for the sharded offline phase: 0 (default) keeps
    #: the whole-graph basis; > 0 partitions the similarity graph by
    #: connected components (components above the cap are split, small
    #: ones packed) and stores the basis as per-shard row blocks, with
    #: assignment running per-shard greedy + cross-shard merge.
    shard_size: int = 0
    #: Route graph updates through incremental basis repair
    #: (:meth:`repro.core.ppr.PPRBasis.repair`): when the estimator's
    #: graph is swapped via ``update_graph`` and a basis already
    #: exists, only the rows the change perturbs are re-pushed — the
    #: repaired basis stays within ``basis_epsilon`` of a cold rebuild.
    #: False (default) recomputes from scratch on every graph change.
    incremental: bool = False

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if not 0 <= self.prior_accuracy <= 1:
            raise ValueError(
                f"prior_accuracy must be in [0, 1], got {self.prior_accuracy}"
            )
        if self.ppr_max_iter <= 0:
            raise ValueError("ppr_max_iter must be positive")
        if self.ppr_tol <= 0:
            raise ValueError("ppr_tol must be positive")
        if self.basis_epsilon < 0:
            raise ValueError("basis_epsilon must be >= 0")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.shard_size < 0:
            raise ValueError("shard_size must be >= 0")

    @property
    def damping(self) -> float:
        """PPR follow probability ``1 / (1 + alpha)`` from Eq. (4).

        Clamped strictly below 1 so the α→0 end of the Appendix D.2
        sweep (pure graph smoothing) stays numerically solvable; the
        iteration cap then acts as the effective smoothing horizon.
        """
        return min(1.0 / (1.0 + self.alpha), 1.0 - 1e-6)

    @property
    def restart(self) -> float:
        """PPR restart probability ``alpha / (1 + alpha)`` from Eq. (4)."""
        return self.alpha / (1.0 + self.alpha)


@dataclass(frozen=True)
class AssignerConfig:
    """Knobs of the adaptive assignment framework (Section 4)."""

    #: Assignment size per microtask (odd for simple majority voting).
    k: int = 3
    #: Weight of the beta-variance uncertainty term in worker performance
    #: testing (Section 4.1 Step 3); the co-worker quality term gets
    #: ``1 - uncertainty_weight``.
    uncertainty_weight: float = 0.5
    #: Time window (in platform ticks) after which a silent worker is
    #: treated as inactive (paper suggests a 30-minute window).
    active_window: int = 50

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if not 0 <= self.uncertainty_weight <= 1:
            raise ValueError("uncertainty_weight must be in [0, 1]")
        if self.active_window <= 0:
            raise ValueError("active_window must be positive")


@dataclass(frozen=True)
class QualificationConfig:
    """Knobs of warm-up and qualification selection (Sections 2.2 & 5)."""

    #: Number Q of qualification microtasks to select / assign.
    num_qualification: int = 10
    #: Minimum average qualification accuracy to keep a worker.  The
    #: paper's Section 2.2 example uses 0.6; with strongly
    #: domain-diverse populations (Figure 6) a domain expert averages
    #: near 0.5 over a cross-domain qualification set, so the default
    #: here is 0.5 — strict enough to drop spammers without starving
    #: the pool of experts.
    qualification_threshold: float = 0.5
    #: Strategy for picking qualification tasks: "influence" (Alg. 4) or
    #: "random" (the RandomQF baseline in Section 6.3.1).
    selection: str = "influence"

    def __post_init__(self) -> None:
        if self.num_qualification <= 0:
            raise ValueError("num_qualification must be positive")
        if not 0 <= self.qualification_threshold <= 1:
            raise ValueError("qualification_threshold must be in [0, 1]")
        if self.selection not in ("influence", "random"):
            raise ValueError(
                f"selection must be 'influence' or 'random', "
                f"got {self.selection!r}"
            )


@dataclass(frozen=True)
class GraphConfig:
    """Knobs of similarity-graph construction (Section 3.3, Appendix D.1)."""

    #: Similarity measure: "jaccard", "tfidf", "topic" or "euclidean".
    measure: str = "topic"
    #: Edges with similarity below the threshold are dropped.
    threshold: float = 0.8
    #: Number of LDA topics for the "topic" measure.
    num_topics: int = 8
    #: Upper bound on neighbours kept per task (Fig. 10's "maximal number
    #: of neighbours"); 0 keeps all above-threshold edges.
    max_neighbors: int = 0

    def __post_init__(self) -> None:
        if self.measure not in ("jaccard", "tfidf", "topic", "euclidean"):
            raise ValueError(f"unknown similarity measure {self.measure!r}")
        if not 0 <= self.threshold <= 1:
            raise ValueError("threshold must be in [0, 1]")
        if self.num_topics <= 1:
            raise ValueError("num_topics must be > 1")
        if self.max_neighbors < 0:
            raise ValueError("max_neighbors must be >= 0")


@dataclass(frozen=True)
class ICrowdConfig:
    """Top-level configuration bundle for :class:`repro.core.ICrowd`."""

    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    assigner: AssignerConfig = field(default_factory=AssignerConfig)
    qualification: QualificationConfig = field(
        default_factory=QualificationConfig
    )
    graph: GraphConfig = field(default_factory=GraphConfig)
    #: Consensus rule once k answers are in: "majority" (the paper's
    #: default simple majority voting) or "weighted" (votes weighted by
    #: the voters' current estimated accuracies — the "(weighted)
    #: majority voting" variant Section 2.1 mentions).
    consensus: str = "majority"
    #: Seed for any internal stochastic choices (random qualification,
    #: tie breaking); experiments thread their own RNGs for workloads.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.consensus not in ("majority", "weighted"):
            raise ValueError(
                f"consensus must be 'majority' or 'weighted', "
                f"got {self.consensus!r}"
            )

    @classmethod
    def paper_defaults(cls) -> "ICrowdConfig":
        """The configuration used across the paper's experiments."""
        return cls()

    def with_k(self, k: int) -> "ICrowdConfig":
        """Copy of this config with a different assignment size."""
        return replace(self, assigner=replace(self.assigner, k=k))

    def with_alpha(self, alpha: float) -> "ICrowdConfig":
        """Copy of this config with a different estimation alpha."""
        return replace(self, estimator=replace(self.estimator, alpha=alpha))

    def with_consensus(self, consensus: str) -> "ICrowdConfig":
        """Copy of this config with a different consensus rule."""
        return replace(self, consensus=consensus)
