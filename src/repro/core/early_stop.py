"""Confidence-based early stopping (related work [26]).

The paper fixes the assignment size at ``k`` votes per task;
Parameswaran et al. (CrowdScreen, cited as [26]) study how many
assignments a task actually *needs*.  iCrowd's accuracy estimates make
a simple adaptive rule possible: after each answer, compute the
probabilistic-verification posterior of the current vote set under the
voters' estimated accuracies, and declare the task globally completed
as soon as that posterior clears a confidence threshold — up to at most
``k`` votes as before.

The effect is budget savings: easy tasks (two confident agreeing
experts) finish with 2 votes instead of 3, and the saved assignments
flow to harder tasks.  The cost-efficiency bench quantifies the trade.
"""

from __future__ import annotations

from typing import Any

from repro.aggregation.pv import verification_posterior
from repro.core.framework import ICrowd
from repro.core.types import Label, TaskId, WorkerId


class EarlyStopICrowd(ICrowd):
    """iCrowd with confidence-based early task completion.

    Parameters (beyond :class:`ICrowd`)
    -----------------------------------
    confidence_threshold:
        Posterior confidence at which a task completes early.  The
        calibrated estimator is deliberately conservative (estimates
        hover near the prior until real evidence accumulates), so
        thresholds in the 0.6-0.8 range are the practical operating
        points; 0.95+ effectively disables early stopping early in a
        job.  At least ``min_votes`` answers are required so a single
        confident voter cannot close a task alone.
    min_votes:
        Minimum answers before early stopping may trigger.
    """

    def __init__(
        self,
        *args: Any,
        confidence_threshold: float = 0.75,
        min_votes: int = 2,
        **kwargs: Any,
    ) -> None:
        if not 0.5 < confidence_threshold < 1.0:
            raise ValueError(
                "confidence_threshold must be in (0.5, 1.0), got "
                f"{confidence_threshold}"
            )
        if min_votes < 1:
            raise ValueError("min_votes must be >= 1")
        super().__init__(*args, **kwargs)
        self.confidence_threshold = confidence_threshold
        self.min_votes = min_votes

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool = False,
    ) -> None:
        """Record the answer, then check for confident early consensus."""
        super().on_answer(worker_id, task_id, label, is_test)
        if is_test or task_id in self.warmup.qualification_truth:
            return
        state = self._states[task_id]
        if state.completed:
            return
        vote_state = self._votes[task_id]
        if len(vote_state.answers) < self.min_votes:
            return
        votes = [
            (vote.label, self._accuracy_of(vote.worker_id, task_id))
            for vote in vote_state.answers
        ]
        posterior_yes = verification_posterior(votes)
        confidence = max(posterior_yes, 1.0 - posterior_yes)
        if confidence >= self.confidence_threshold:
            state.completed = True
            self._consensus[task_id] = (
                Label.YES if posterior_yes > 0.5 else Label.NO
            )
            for vote in vote_state.answers:
                self._dirty.add(vote.worker_id)

    def votes_spent(self) -> int:
        """Total non-test answers collected (the budget actually used)."""
        qualification = set(self.warmup.qualification_truth)
        return sum(
            1
            for answers in self._answers.values()
            for answer in answers
            if answer.task_id not in qualification
        )
