"""Graph-based accuracy estimation (Section 3, Algorithm 1).

The estimator ties together the similarity graph, the offline PPR basis
and the observed accuracies:

- **offline** — build ``S'`` and precompute the basis vector ``p_{t_i}``
  for every task (Lemma 3 makes the online phase a weighted sum);
- **online** — given a worker's sparse observed accuracies ``q^w``,
  return the estimated vector ``p^w = Σ_i q_i^w · p_{t_i}``.

The offline phase is the dominant cost of a run, so it is both
parallelisable (``EstimatorConfig.num_workers`` shards the push rows
over a process pool) and cacheable: when a cache directory is
configured — explicitly, via ``EstimatorConfig.basis_cache_dir``, or
via the ``REPRO_BASIS_CACHE`` environment variable — the computed basis
is persisted keyed by a content hash of ``(S', damping, epsilon)`` and
later runs load it bit-identically instead of recomputing.

A subtlety the paper leaves implicit: the raw combination scales with
the number of observations (a worker with many completed tasks would get
arbitrarily large "accuracies").  The estimator therefore exposes both
the raw linear combination (used for *ranking* workers, which is all the
assigner needs) and a calibrated variant that renormalises by the
combination of an all-ones restart restricted to the observed support,
blending with the prior where the graph carries no signal.  The
all-ones "mass" vector depends only on the observed *support*, which
for a live worker is stable across many estimate refreshes — it is
memoised per support set.
"""

from __future__ import annotations

import os
import pathlib
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.config import EstimatorConfig
from repro.core.graph import SimilarityGraph
from repro.core.indexes import ShardIndex
from repro.core.ppr import PPRBasis, ShardedBasis, power_iteration
from repro.core.types import TaskId
from repro.obs.metrics import NULL_RECORDER, Recorder

#: Environment variable naming a default basis-cache directory; used
#: when neither the constructor nor the config names one (lets CLI and
#: experiment runs opt into warm starts without threading a parameter
#: through every call site).
BASIS_CACHE_ENV = "REPRO_BASIS_CACHE"

#: Memoised all-ones restart masses kept per estimator before the cache
#: is dropped (support sets churn slowly, so this is rarely hit).
_MASS_CACHE_LIMIT = 4096


class AccuracyEstimator:
    """Similarity-based accuracy estimation (Definition 2).

    Parameters
    ----------
    graph:
        The microtask similarity graph.
    config:
        Estimation knobs (``alpha``, tolerances, truncation,
        parallelism, caching).
    basis_method:
        ``"auto"`` (default), ``"push"``, ``"parallel-push"``,
        ``"batch"`` or ``"power"`` for the offline basis computation.
    cache_dir:
        Overrides the basis-cache directory (takes precedence over
        ``config.basis_cache_dir`` and the ``REPRO_BASIS_CACHE``
        environment variable); None falls back to those.
    recorder:
        Observability recorder (``None`` = disabled).  Records basis
        cache hits/misses, estimate refreshes and support-mass cache
        traffic; rebindable via :attr:`recorder` because experiment
        setups share one estimator across runs.
    """

    def __init__(
        self,
        graph: SimilarityGraph,
        config: EstimatorConfig | None = None,
        basis_method: str = "auto",
        cache_dir: str | pathlib.Path | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.graph = graph
        self.config = config or EstimatorConfig()
        self._basis_method = basis_method
        self._basis: PPRBasis | ShardedBasis | None = None
        self._shard_index: ShardIndex | None = None
        self._cache_dir = self._resolve_cache_dir(cache_dir)
        self.recorder = recorder
        #: True when the current basis was served from the on-disk
        #: cache rather than computed (diagnostics / benches).
        self.basis_from_cache = False
        self._mass_cache: dict[frozenset[TaskId], np.ndarray] = {}

    def _resolve_cache_dir(
        self, explicit: str | pathlib.Path | None
    ) -> pathlib.Path | None:
        candidate = (
            explicit
            or self.config.basis_cache_dir
            or os.environ.get(BASIS_CACHE_ENV)
        )
        return pathlib.Path(candidate) if candidate else None

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    @property
    def shard_index(self) -> ShardIndex | None:
        """Task partition of the sharded offline phase, or None when
        ``config.shard_size`` is 0 (unsharded).  Computed once — the
        partition is a pure function of the graph and the cap, so the
        maps stay stable for the lifetime of the estimator."""
        if self.config.shard_size <= 0:
            return None
        if self._shard_index is None:
            sharded = self.graph.partition(
                max_shard_tasks=self.config.shard_size
            )
            self._shard_index = sharded.index
        return self._shard_index

    @property
    def basis(self) -> PPRBasis | ShardedBasis:
        """The offline PPR basis (per-shard blocks when sharding is
        configured); loaded from cache or computed lazily on first
        access."""
        if self._basis is None:
            self._basis = self._load_or_compute_basis()
        return self._basis

    def _load_or_compute_basis(self) -> PPRBasis | ShardedBasis:
        with self.recorder.span("estimator.offline"):
            return self._load_or_compute_basis_inner()

    def _load_or_compute_basis_inner(self) -> PPRBasis | ShardedBasis:
        key = None
        if self._cache_dir is not None:
            from repro.core.persistence import (
                basis_cache_key,
                load_basis,
                save_basis,
            )

            key = basis_cache_key(
                self.graph.normalized,
                self.config.damping,
                self.config.basis_epsilon,
            )
            cached = load_basis(self._cache_dir, key)
            if cached is not None:
                self.basis_from_cache = True
                self.recorder.counter(
                    "repro_estimator_basis_cache_hits_total",
                    "Offline bases served from the on-disk cache.",
                ).inc()
                if self.shard_index is not None:
                    # the cache stores the whole-graph form; re-block
                    # it (cheap row slicing, no recomputation)
                    return ShardedBasis.from_global(
                        cached, self.shard_index
                    )
                return cached
        if self._cache_dir is not None:
            self.recorder.counter(
                "repro_estimator_basis_cache_misses_total",
                "Offline bases computed because the cache missed.",
            ).inc()
        basis: PPRBasis | ShardedBasis
        if self.shard_index is not None:
            basis = ShardedBasis.compute(
                self.graph.normalized,
                self.shard_index,
                damping=self.config.damping,
                epsilon=self.config.basis_epsilon,
                num_workers=self.config.num_workers or None,
                recorder=self.recorder,
            )
        else:
            basis = PPRBasis.compute(
                self.graph.normalized,
                damping=self.config.damping,
                epsilon=self.config.basis_epsilon,
                method=self._basis_method,
                tol=self.config.ppr_tol,
                max_iter=self.config.ppr_max_iter,
                num_workers=self.config.num_workers or None,
                recorder=self.recorder,
            )
        self.basis_from_cache = False
        if key is not None:
            save_basis(basis, self._cache_dir, key)
        return basis

    def precompute(self) -> None:
        """Force the offline basis computation (Algorithm 1 lines 2-4)."""
        _ = self.basis

    def update_graph(
        self,
        graph: SimilarityGraph,
        dirty: "Sequence[TaskId]" = (),
    ) -> None:
        """Swap in a grown graph, maintaining the basis incrementally.

        ``graph`` must contain the old task set as a prefix (task ids
        are stable; the stream only appends).  ``dirty`` names every
        old task whose row of ``S'`` changed — pass
        ``GrowableGraph.delta().dirty_rows`` — new tasks are implied
        by the size difference and need not be listed.

        With ``config.incremental`` set and a basis already
        materialised, the basis is repaired in place of a recompute
        (:meth:`repro.core.ppr.PPRBasis.repair`): only perturbed and
        new rows are re-pushed, and the result — within
        ``basis_epsilon`` of a cold rebuild — is re-keyed into the
        on-disk cache under the new graph's content hash.  When
        sharding is configured, the partition is recomputed on the new
        graph and a change confined to one shard repairs only that
        shard (clean blocks with unchanged membership are reused
        zero-copy).  Without ``incremental`` (or before any basis
        exists), the basis is simply dropped and the next access
        recomputes cold.
        """
        old_graph = self.graph
        self.graph = graph
        self._mass_cache.clear()
        self._shard_index = None
        if not (self.config.incremental and self._basis is not None):
            self._basis = None
            self.basis_from_cache = False
            return
        if graph.num_tasks < old_graph.num_tasks:
            raise ValueError(
                "update_graph cannot shrink the task set "
                f"({old_graph.num_tasks} -> {graph.num_tasks})"
            )
        basis = self._basis
        index = self.shard_index
        repaired: PPRBasis | ShardedBasis
        with self.recorder.span(
            "estimator.repair", tasks=graph.num_tasks
        ):
            if isinstance(basis, ShardedBasis):
                if index is not None:
                    repaired = basis.repair(
                        graph.normalized,
                        dirty,
                        index,
                        damping=self.config.damping,
                        epsilon=self.config.basis_epsilon,
                        recorder=self.recorder,
                    )
                else:
                    # sharding switched off since the basis was built
                    repaired = PPRBasis(basis.to_global()).repair(
                        graph.normalized,
                        dirty,
                        damping=self.config.damping,
                        epsilon=self.config.basis_epsilon,
                        recorder=self.recorder,
                    )
            else:
                repaired = basis.repair(
                    graph.normalized,
                    dirty,
                    damping=self.config.damping,
                    epsilon=self.config.basis_epsilon,
                    recorder=self.recorder,
                )
                if index is not None:
                    repaired = ShardedBasis.from_global(repaired, index)
        self._basis = repaired
        self.basis_from_cache = False
        if self._cache_dir is not None:
            from repro.core.persistence import basis_cache_key, save_basis

            key = basis_cache_key(
                graph.normalized,
                self.config.damping,
                self.config.basis_epsilon,
            )
            save_basis(repaired, self._cache_dir, key)

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def estimate_raw(self, observed: Mapping[TaskId, float]) -> np.ndarray:
        """Raw linear combination ``Σ q_i · p_{t_i}`` (Lemma 3).

        Monotone in each observation; suitable for ranking tasks/workers
        but not calibrated as a probability.
        """
        return self.basis.combine(dict(observed))

    def _support_mass(self, support: frozenset[TaskId]) -> np.ndarray:
        """All-ones restart mass over ``support`` (memoised).

        The mass depends only on *which* tasks were observed, not on
        the observed values, so successive estimates for a worker whose
        support has not changed reuse it.  Callers must not mutate the
        returned array.
        """
        mass = self._mass_cache.get(support)
        if mass is None:
            self.recorder.counter(
                "repro_estimator_mass_cache_misses_total",
                "Support-mass vectors computed afresh.",
            ).inc()
            mass = self.basis.combine({t: 1.0 for t in support})
            if len(self._mass_cache) >= _MASS_CACHE_LIMIT:
                self._mass_cache.clear()
            self._mass_cache[support] = mass
        else:
            self.recorder.counter(
                "repro_estimator_mass_cache_hits_total",
                "Support-mass vectors served from the memo cache.",
            ).inc()
        return mass

    def estimate(self, observed: Mapping[TaskId, float]) -> np.ndarray:
        """Calibrated accuracy vector ``p^w`` over all tasks.

        The raw combination is normalised entry-wise by the "mass"
        reaching each task from the observed support under a unit
        restart (i.e. the same combination with every observed ``q_i``
        replaced by 1).  Entries receiving negligible mass fall back to
        the configured prior.  The result lies in ``[0, 1]`` and equals
        the exact Eq. (3) solution up to basis truncation wherever the
        support covers the graph.
        """
        self.recorder.counter(
            "repro_estimator_estimates_total",
            "Calibrated accuracy-vector refreshes computed.",
        ).inc()
        observed = dict(observed)
        if not observed:
            return np.full(
                self.graph.num_tasks, self.config.prior_accuracy
            )
        raw = self.basis.combine(observed)
        mass = self._support_mass(frozenset(observed))
        prior = self.config.prior_accuracy
        out = np.full(self.graph.num_tasks, prior, dtype=np.float64)
        reached = mass > 1e-9
        # Blend toward the prior where mass is weak: an entry with total
        # incoming mass m gets m-weighted evidence and (1-m)-weighted
        # prior, capping the evidence weight at 1.
        evidence = np.zeros_like(out)
        evidence[reached] = raw[reached] / mass[reached]
        weight = np.clip(mass, 0.0, 1.0)
        out = weight * evidence + (1.0 - weight) * prior
        np.clip(out, 0.0, 1.0, out=out)
        return out

    def estimate_exact(self, observed: Mapping[TaskId, float]) -> np.ndarray:
        """Reference implementation: run Eq. (4) directly on ``q``.

        Used by tests to validate the basis path; O(iterations × nnz)
        instead of O(|T|).
        """
        q = np.zeros(self.graph.num_tasks)
        for task_id, value in observed.items():
            q[task_id] = value
        return power_iteration(
            self.graph.normalized,
            q,
            damping=self.config.damping,
            tol=self.config.ppr_tol,
            max_iter=self.config.ppr_max_iter,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def influence_support(self, task_id: TaskId) -> set[TaskId]:
        """Tasks with a non-zero basis entry from ``t_i`` (Section 5's
        influence set, used by qualification selection)."""
        row = self.basis.row(task_id)
        return {int(i) for i in np.flatnonzero(row)}
