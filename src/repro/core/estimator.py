"""Graph-based accuracy estimation (Section 3, Algorithm 1).

The estimator ties together the similarity graph, the offline PPR basis
and the observed accuracies:

- **offline** — build ``S'`` and precompute the basis vector ``p_{t_i}``
  for every task (Lemma 3 makes the online phase a weighted sum);
- **online** — given a worker's sparse observed accuracies ``q^w``,
  return the estimated vector ``p^w = Σ_i q_i^w · p_{t_i}``.

A subtlety the paper leaves implicit: the raw combination scales with
the number of observations (a worker with many completed tasks would get
arbitrarily large "accuracies").  The estimator therefore exposes both
the raw linear combination (used for *ranking* workers, which is all the
assigner needs) and a calibrated variant that renormalises by the
combination of an all-ones restart restricted to the observed support,
blending with the prior where the graph carries no signal.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.config import EstimatorConfig
from repro.core.graph import SimilarityGraph
from repro.core.ppr import PPRBasis, power_iteration
from repro.core.types import TaskId


class AccuracyEstimator:
    """Similarity-based accuracy estimation (Definition 2).

    Parameters
    ----------
    graph:
        The microtask similarity graph.
    config:
        Estimation knobs (``alpha``, tolerances, truncation).
    basis_method:
        ``"push"`` (localized, default) or ``"power"`` for the offline
        basis computation.
    """

    def __init__(
        self,
        graph: SimilarityGraph,
        config: EstimatorConfig | None = None,
        basis_method: str = "auto",
    ) -> None:
        self.graph = graph
        self.config = config or EstimatorConfig()
        self._basis_method = basis_method
        self._basis: PPRBasis | None = None

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    @property
    def basis(self) -> PPRBasis:
        """The offline PPR basis; computed lazily on first access."""
        if self._basis is None:
            self._basis = PPRBasis.compute(
                self.graph.normalized,
                damping=self.config.damping,
                epsilon=self.config.basis_epsilon,
                method=self._basis_method,
                tol=self.config.ppr_tol,
                max_iter=self.config.ppr_max_iter,
            )
        return self._basis

    def precompute(self) -> None:
        """Force the offline basis computation (Algorithm 1 lines 2-4)."""
        _ = self.basis

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def estimate_raw(self, observed: Mapping[TaskId, float]) -> np.ndarray:
        """Raw linear combination ``Σ q_i · p_{t_i}`` (Lemma 3).

        Monotone in each observation; suitable for ranking tasks/workers
        but not calibrated as a probability.
        """
        return self.basis.combine(dict(observed))

    def estimate(self, observed: Mapping[TaskId, float]) -> np.ndarray:
        """Calibrated accuracy vector ``p^w`` over all tasks.

        The raw combination is normalised entry-wise by the "mass"
        reaching each task from the observed support under a unit
        restart (i.e. the same combination with every observed ``q_i``
        replaced by 1).  Entries receiving negligible mass fall back to
        the configured prior.  The result lies in ``[0, 1]`` and equals
        the exact Eq. (3) solution up to basis truncation wherever the
        support covers the graph.
        """
        observed = dict(observed)
        if not observed:
            return np.full(
                self.graph.num_tasks, self.config.prior_accuracy
            )
        raw = self.basis.combine(observed)
        mass = self.basis.combine({t: 1.0 for t in observed})
        prior = self.config.prior_accuracy
        out = np.full(self.graph.num_tasks, prior, dtype=np.float64)
        reached = mass > 1e-9
        # Blend toward the prior where mass is weak: an entry with total
        # incoming mass m gets m-weighted evidence and (1-m)-weighted
        # prior, capping the evidence weight at 1.
        evidence = np.zeros_like(out)
        evidence[reached] = raw[reached] / mass[reached]
        weight = np.clip(mass, 0.0, 1.0)
        out = weight * evidence + (1.0 - weight) * prior
        np.clip(out, 0.0, 1.0, out=out)
        return out

    def estimate_exact(self, observed: Mapping[TaskId, float]) -> np.ndarray:
        """Reference implementation: run Eq. (4) directly on ``q``.

        Used by tests to validate the basis path; O(iterations × nnz)
        instead of O(|T|).
        """
        q = np.zeros(self.graph.num_tasks)
        for task_id, value in observed.items():
            q[task_id] = value
        return power_iteration(
            self.graph.normalized,
            q,
            damping=self.config.damping,
            tol=self.config.ppr_tol,
            max_iter=self.config.ppr_max_iter,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def influence_support(self, task_id: TaskId) -> set[TaskId]:
        """Tasks with a non-zero basis entry from ``t_i`` (Section 5's
        influence set, used by qualification selection)."""
        row = self.basis.row(task_id)
        return {int(i) for i in np.flatnonzero(row)}
