"""The iCrowd framework (Figure 1): adaptive assigner + warm-up.

This is the stateful orchestrator a platform interacts with:

- :meth:`ICrowd.on_worker_request` — a worker asks for work; warm-up
  tasks come first, then adaptive assignment (Algorithm 2) over the
  currently active workers, then performance testing for idle workers.
- :meth:`ICrowd.on_answer` — a worker submits an answer; qualification
  answers are graded, consensus answers accumulate toward global
  completion, and the accuracy estimates of every worker touching the
  task are invalidated for lazy re-estimation.
- :meth:`ICrowd.predictions` — consensus results for evaluation.

Accuracy estimation follows Section 3 exactly: observed accuracies
``q^w`` via Eq. (5) over globally completed tasks (qualification tasks
count as globally completed), estimated vectors ``p^w`` via the offline
PPR basis and Lemma 3's linear combination.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.assigner import AdaptiveAssigner, TaskState
from repro.core.config import ICrowdConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.observed import ObservedAccuracyComputer
from repro.core.qualification import (
    WarmUp,
    select_qualification_tasks,
    select_random_tasks,
)
from repro.core.testing import PerformanceTester
from repro.core.types import (
    Answer,
    AnswerOutcome,
    Assignment,
    Label,
    TaskId,
    TaskSet,
    VoteState,
    WorkerId,
)
from repro.obs.metrics import NULL_RECORDER, Recorder
from repro.utils.rng import spawn_rng


class ICrowd:
    """Adaptive crowdsourcing framework over a task set.

    Parameters
    ----------
    tasks:
        The microtask set ``T``.
    config:
        Framework configuration (paper defaults when omitted).
    graph:
        Pre-built similarity graph; built from ``config.graph`` when
        omitted.
    qualification_tasks:
        Explicit qualification set; selected per
        ``config.qualification.selection`` when omitted.
    recorder:
        Observability recorder threaded into the estimator and the
        adaptive assigner (``None`` = disabled).  When both a recorder
        and a pre-built ``estimator`` are supplied, the estimator is
        re-bound to this recorder so a telemetry run observes the
        shared setup's estimator too.
    """

    def __init__(
        self,
        tasks: TaskSet,
        config: ICrowdConfig | None = None,
        graph: SimilarityGraph | None = None,
        qualification_tasks: Sequence[TaskId] | None = None,
        estimator: AccuracyEstimator | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.recorder = recorder
        self.tasks = tasks
        self.config = config or ICrowdConfig.paper_defaults()
        self.graph = graph or (
            estimator.graph
            if estimator is not None
            else SimilarityGraph.from_tasks(
                list(tasks), self.config.graph, seed=self.config.seed
            )
        )
        if self.graph.num_tasks != len(tasks):
            raise ValueError(
                f"graph covers {self.graph.num_tasks} tasks but task set "
                f"has {len(tasks)}"
            )
        if estimator is not None and estimator.graph is not self.graph:
            raise ValueError("estimator was built on a different graph")
        self.estimator = estimator or AccuracyEstimator(
            self.graph, self.config.estimator, recorder=self.recorder
        )
        if estimator is not None and recorder is not None:
            self.estimator.recorder = self.recorder
        self.estimator.precompute()

        if qualification_tasks is None:
            qualification_tasks = self._select_qualification()
        self.qualification_tasks: list[TaskId] = list(qualification_tasks)
        truth = {t: tasks[t].truth for t in self.qualification_tasks}
        self.warmup = WarmUp(
            truth,
            threshold=self.config.qualification.qualification_threshold,
        )
        self._observed_computer = ObservedAccuracyComputer(truth)

        k = self.config.assigner.k
        self._votes: dict[TaskId, VoteState] = {
            t: VoteState(task_id=t, k=k)
            for t in tasks.ids()
            if t not in truth
        }
        self._states: dict[TaskId, TaskState] = {
            t: TaskState(task_id=t, k=k) for t in self._votes
        }
        self._consensus: dict[TaskId, Label] = {}
        self._answers: dict[WorkerId, list[Answer]] = {}
        self._test_answers: dict[WorkerId, list[Answer]] = {}
        self._estimates: dict[WorkerId, np.ndarray] = {}
        self._dirty: set[WorkerId] = set()
        self._last_seen: dict[WorkerId, int] = {}
        #: outstanding real assignments: (worker, task) → clock issued
        self._pending: dict[tuple[WorkerId, TaskId], int] = {}
        self._clock = 0
        self._seq = 0
        #: Assignment invalidation epoch: bumped on every state change
        #: that can alter the greedy scheme (answers, releases), so the
        #: assigner can serve a whole round of worker requests from one
        #: cached scheme computation.
        self._assign_epoch = 0

        tester = PerformanceTester(
            self.graph,
            observed_of=self._observed_of,
            uncertainty_weight=self.config.assigner.uncertainty_weight,
            prior_accuracy=self.config.estimator.prior_accuracy,
        )
        self.assigner = AdaptiveAssigner(
            self.config.assigner,
            tester=tester,
            # sharded offline phase ⇒ per-shard greedy + merge online
            shard_index=self.estimator.shard_index,
            recorder=self.recorder,
        )

    # ------------------------------------------------------------------
    # qualification selection
    # ------------------------------------------------------------------
    def _select_qualification(self) -> list[TaskId]:
        budget = self.config.qualification.num_qualification
        if self.config.qualification.selection == "influence":
            return select_qualification_tasks(self.estimator.basis, budget)
        rng = spawn_rng(self.config.seed, "random-qualification")
        return select_random_tasks(len(self.tasks), budget, rng)

    # ------------------------------------------------------------------
    # worker interaction
    # ------------------------------------------------------------------
    def on_worker_request(
        self,
        worker_id: WorkerId,
        active_workers: Iterable[WorkerId] | None = None,
    ) -> Assignment | None:
        """Handle a task request from ``worker_id``.

        Returns the assignment for the worker, or None when she is
        rejected / nothing remains assignable.  ``active_workers``
        defaults to workers seen within the configured activity window.
        """
        self._clock += 1
        self._last_seen[worker_id] = self._clock
        if not self.warmup.is_qualified(worker_id):
            return None
        pending = self.warmup.next_task(worker_id)
        if pending is not None:
            return Assignment(
                task_id=pending, worker_id=worker_id, is_test=True
            )
        if not self.warmup.has_finished(worker_id):
            return None  # defensive: unreachable with next_task above
        actives = (
            list(active_workers)
            if active_workers is not None
            else self.active_workers()
        )
        if worker_id not in actives:
            actives.append(worker_id)
        actives = [w for w in actives if self._is_assignable(w)]
        self._refresh_estimates(actives)
        assignment = self._choose_assignment(worker_id, actives)
        if assignment is not None:
            state = self._states[assignment.task_id]
            if assignment.is_test:
                state.tested_workers.add(worker_id)
            else:
                state.assigned_workers.add(worker_id)
                self._pending[(worker_id, assignment.task_id)] = self._clock
        return assignment

    def on_answer(
        self, worker_id: WorkerId, task_id: TaskId, label: Label,
        is_test: bool = False,
    ) -> AnswerOutcome:
        """Record a submitted answer and update framework state.

        Idempotent: re-delivered submissions (client retries, duplicate
        POSTs) leave every piece of state — votes, clocks, estimates —
        untouched and report :attr:`AnswerOutcome.DUPLICATE`; votes for
        tasks that completed in the meantime are ``IGNORED`` rather
        than appended past ``k``.
        """
        outcome = self._classify_answer(worker_id, task_id, is_test)
        if not outcome.accepted:
            return outcome
        self._clock += 1
        self._last_seen[worker_id] = self._clock
        self._seq += 1
        self._assign_epoch += 1
        answer = Answer(
            task_id=task_id, worker_id=worker_id, label=label, seq=self._seq
        )
        if task_id in self.warmup.qualification_truth:
            self.warmup.grade(worker_id, task_id, label)
            self._answers.setdefault(worker_id, []).append(answer)
            self._dirty.add(worker_id)
            return outcome
        if is_test:
            self._test_answers.setdefault(worker_id, []).append(answer)
            self._states[task_id].tested_workers.add(worker_id)
            self._dirty.add(worker_id)
            return outcome
        vote_state = self._votes[task_id]
        vote_state.add(answer)
        self._answers.setdefault(worker_id, []).append(answer)
        self._pending.pop((worker_id, task_id), None)
        state = self._states[task_id]
        state.assigned_workers.add(worker_id)
        if vote_state.is_complete() and not state.completed:
            state.completed = True
            self._consensus[task_id] = self._consensus_label(vote_state)
            # a fresh consensus re-grades everyone who voted on the task
            for vote in vote_state.answers:
                self._dirty.add(vote.worker_id)
        else:
            self._dirty.add(worker_id)
        return outcome

    def _classify_answer(
        self, worker_id: WorkerId, task_id: TaskId, is_test: bool
    ) -> AnswerOutcome:
        """Decide whether an incoming answer may mutate state."""
        if task_id in self.warmup.qualification_truth:
            if task_id in self.warmup.state_of(worker_id).graded:
                return AnswerOutcome.DUPLICATE
            return AnswerOutcome.ACCEPTED
        if is_test:
            already = any(
                a.task_id == task_id
                for a in self._test_answers.get(worker_id, ())
            )
            return (
                AnswerOutcome.DUPLICATE if already else AnswerOutcome.ACCEPTED
            )
        vote_state = self._votes[task_id]
        if worker_id in vote_state.workers():
            return AnswerOutcome.DUPLICATE
        if self._states[task_id].completed:
            # the slot was requeued and filled by someone else first
            return AnswerOutcome.IGNORED
        return AnswerOutcome.ACCEPTED

    def _choose_assignment(
        self, worker_id: WorkerId, actives: list[WorkerId]
    ) -> Assignment | None:
        """Assignment decision for one requesting worker.

        The default is the full adaptive scheme of Algorithm 2;
        baseline strategies (BestEffort, QF-Only) override this hook.
        """
        return self.assigner.assign_for_worker(
            worker_id,
            list(self._states.values()),
            actives,
            self._estimates,
            epoch=self._assign_epoch,
        )

    def _consensus_label(self, vote_state: VoteState) -> Label:
        """Consensus under the configured rule (Section 2.1).

        "majority" is the paper's default simple majority; "weighted"
        weighs each vote by the voter's current estimated accuracy on
        the task, which lets one demonstrated expert overrule two
        doubtful voters.
        """
        if self.config.consensus == "majority":
            return vote_state.consensus()
        score = 0.0
        for vote in vote_state.answers:
            weight = self._accuracy_of(vote.worker_id, vote.task_id)
            score += weight if vote.label is Label.YES else -weight
        return Label.YES if score > 0 else Label.NO

    # ------------------------------------------------------------------
    # estimation plumbing
    # ------------------------------------------------------------------
    def _observed_of(self, worker_id: WorkerId) -> dict[TaskId, float]:
        """Sparse observed accuracies ``q^w`` (Eq. 5) for a worker."""
        votes_by_task = {
            t: vs.answers for t, vs in self._votes.items() if vs.answers
        }
        answers = list(self._answers.get(worker_id, ()))
        observed = self._observed_computer.compute(
            answers,
            votes_by_task,
            self._consensus,
            self._accuracy_of,
        )
        # grade test answers against the (already formed) consensus; the
        # test vote itself joins the Eq. (5) vote list
        for answer in self._test_answers.get(worker_id, ()):
            consensus = self._consensus.get(answer.task_id)
            if consensus is None:
                continue
            votes = list(votes_by_task.get(answer.task_id, ())) + [answer]
            observed[answer.task_id] = (
                self._observed_computer.observed_for_answer(
                    answer, votes, consensus, self._accuracy_of
                )
            )
        return observed

    def _accuracy_of(self, worker_id: WorkerId, task_id: TaskId) -> float:
        """Previously estimated accuracy of a co-voter (Section 3.2)."""
        vector = self._estimates.get(worker_id)
        if vector is not None:
            return float(vector[task_id])
        if self.warmup.state_of(worker_id).num_answered:
            return self.warmup.average_accuracy(worker_id)
        return self.config.estimator.prior_accuracy

    def _refresh_estimates(self, workers: Iterable[WorkerId]) -> None:
        for worker_id in workers:
            if worker_id in self._estimates and worker_id not in self._dirty:
                continue
            observed = self._observed_of(worker_id)
            self._estimates[worker_id] = self.estimator.estimate(observed)
            self._dirty.discard(worker_id)

    def estimate_for(self, worker_id: WorkerId) -> np.ndarray:
        """Current accuracy vector ``p^w`` (recomputed when stale)."""
        self._refresh_estimates([worker_id])
        return self._estimates[worker_id]

    # ------------------------------------------------------------------
    # bookkeeping / results
    # ------------------------------------------------------------------
    def _is_assignable(self, worker_id: WorkerId) -> bool:
        return self.warmup.is_qualified(worker_id) and self.warmup.has_finished(
            worker_id
        )

    def release_assignment(self, worker_id: WorkerId, task_id: TaskId) -> bool:
        """Release an outstanding (unanswered) assignment.

        The MTurk analogue is a worker *returning* a HIT (Appendix A):
        the slot reopens so another worker can take it, and the
        returning worker may even receive the task again later.
        Returns False when no such assignment is outstanding.
        """
        if self._pending.pop((worker_id, task_id), None) is None:
            return False
        state = self._states.get(task_id)
        if state is not None:
            state.assigned_workers.discard(worker_id)
        self._assign_epoch += 1
        return True

    @property
    def assignment_epoch(self) -> int:
        """Current assignment invalidation epoch (see ``_assign_epoch``)."""
        return self._assign_epoch

    def expire_stale_assignments(self, max_age: int) -> list[tuple[WorkerId, TaskId]]:
        """Release every outstanding assignment older than ``max_age``
        clock ticks (abandoned HITs).  Returns the released pairs."""
        if max_age < 0:
            raise ValueError("max_age must be >= 0")
        stale = [
            pair
            for pair, issued in self._pending.items()
            if self._clock - issued > max_age
        ]
        for worker_id, task_id in stale:
            self.release_assignment(worker_id, task_id)
        return stale

    def pending_assignments(self) -> dict[tuple[WorkerId, TaskId], int]:
        """Outstanding real assignments with their issue ticks."""
        return dict(self._pending)

    def active_workers(self) -> list[WorkerId]:
        """Workers seen within the activity window (Section 4.1, Step 1)."""
        window = self.config.assigner.active_window
        return [
            w
            for w, seen in self._last_seen.items()
            if self._clock - seen <= window
        ]

    def uncompleted_tasks(self) -> list[TaskId]:
        """Tasks not yet globally completed (qualification excluded)."""
        return [t for t, s in self._states.items() if not s.completed]

    def completed_tasks(self) -> list[TaskId]:
        """Globally completed non-qualification tasks (platform hook)."""
        return [t for t, s in self._states.items() if s.completed]

    def is_worker_rejected(self, worker_id: WorkerId) -> bool:
        """Whether warm-up eliminated this worker (platform hook)."""
        return not self.warmup.is_qualified(worker_id)

    def is_finished(self) -> bool:
        """True once every non-qualification task reached consensus."""
        return not self.uncompleted_tasks()

    def predictions(self) -> dict[TaskId, Label]:
        """Current results: consensus where complete, else running
        majority (ties toward NO); qualification tasks map to their
        ground truth (the requester labelled them)."""
        out: dict[TaskId, Label] = {}
        for task_id in self.tasks.ids():
            if task_id in self.warmup.qualification_truth:
                out[task_id] = self.warmup.qualification_truth[task_id]
            elif task_id in self._consensus:
                out[task_id] = self._consensus[task_id]
            else:
                out[task_id] = self._votes[task_id].consensus()
        return out

    def answers_of(self, worker_id: WorkerId) -> list[Answer]:
        """All recorded (non-test) answers of a worker."""
        return list(self._answers.get(worker_id, ()))

    def assignment_counts(self) -> dict[WorkerId, int]:
        """Completed assignments per worker (Figure 15's distribution)."""
        counts: dict[WorkerId, int] = {}
        for worker_id, answers in self._answers.items():
            non_qual = [
                a
                for a in answers
                if a.task_id not in self.warmup.qualification_truth
            ]
            counts[worker_id] = len(non_qual)
        return counts

    def votes(self) -> Mapping[TaskId, VoteState]:
        """Read-only view of per-task vote state."""
        return dict(self._votes)
