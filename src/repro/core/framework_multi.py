"""Multi-choice iCrowd orchestrator (the full Section 2.1 extension).

:class:`MultiICrowd` is the m-choice counterpart of
:class:`repro.core.ICrowd`: plurality voting replaces majority voting
(:class:`repro.core.multichoice.MultiVoteState`), and the generalised
Eq. (5) grades workers against the plurality consensus.  Everything
above the voting layer — the similarity graph, the PPR estimator, the
adaptive assigner with top worker sets, warm-up elimination — is reused
unchanged, which is precisely the paper's point that the techniques
"can be extended to microtasks with more than two choices".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.assigner import AdaptiveAssigner, TaskState
from repro.core.config import ICrowdConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.multichoice import (
    Choice,
    MultiVoteState,
    multichoice_observed_accuracy,
)
from repro.core.qualification import WarmUp, select_qualification_tasks
from repro.core.testing import PerformanceTester
from repro.core.types import AnswerOutcome, Assignment, TaskId, WorkerId
from repro.obs.metrics import NULL_RECORDER, Recorder


@dataclass(frozen=True)
class MultiTask:
    """A microtask whose answer is one of ``m`` choices."""

    task_id: TaskId
    text: str
    domain: str
    truth: Choice
    features: tuple[float, ...] | None = None


class MultiICrowd:
    """Adaptive crowdsourcing over multi-choice microtasks.

    Parameters
    ----------
    tasks:
        Dense-id :class:`MultiTask` sequence.
    choices:
        The shared answer alphabet (every task offers the same
        choices; per-task alphabets only need a per-task ``m`` in the
        observed-accuracy call).
    config:
        Standard framework configuration.
    graph / qualification_tasks:
        As in :class:`repro.core.ICrowd`.
    """

    def __init__(
        self,
        tasks: Sequence[MultiTask],
        choices: Sequence[Choice],
        config: ICrowdConfig | None = None,
        graph: SimilarityGraph | None = None,
        qualification_tasks: Sequence[TaskId] | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.recorder = recorder
        tasks = list(tasks)
        for expected, task in enumerate(tasks):
            if task.task_id != expected:
                raise ValueError("task ids must be dense 0..n-1")
        if len(set(choices)) < 2:
            raise ValueError("need at least two distinct choices")
        for task in tasks:
            if task.truth not in set(choices):
                raise ValueError(
                    f"task {task.task_id} truth {task.truth!r} not in "
                    f"the choice set"
                )
        self.tasks = tasks
        self.choices = tuple(choices)
        self.config = config or ICrowdConfig.paper_defaults()
        self.graph = graph or SimilarityGraph.from_tasks(
            tasks, self.config.graph, seed=self.config.seed
        )
        if self.graph.num_tasks != len(tasks):
            raise ValueError("graph size does not match the task set")
        self.estimator = AccuracyEstimator(
            self.graph, self.config.estimator, recorder=self.recorder
        )
        self.estimator.precompute()

        if qualification_tasks is None:
            qualification_tasks = select_qualification_tasks(
                self.estimator.basis,
                self.config.qualification.num_qualification,
            )
        self.qualification_tasks = list(qualification_tasks)
        truth = {t: tasks[t].truth for t in self.qualification_tasks}
        self.warmup = WarmUp(
            truth,
            threshold=self.config.qualification.qualification_threshold,
        )

        k = self.config.assigner.k
        self._votes: dict[TaskId, MultiVoteState] = {
            t.task_id: MultiVoteState(
                task_id=t.task_id, k=k, choices=self.choices
            )
            for t in tasks
            if t.task_id not in truth
        }
        self._states: dict[TaskId, TaskState] = {
            t: TaskState(task_id=t, k=k) for t in self._votes
        }
        self._consensus: dict[TaskId, Choice] = {}
        self._answers: dict[WorkerId, list[tuple[TaskId, Choice]]] = {}
        self._estimates: dict[WorkerId, np.ndarray] = {}
        self._dirty: set[WorkerId] = set()
        self._assign_epoch = 0
        tester = PerformanceTester(
            self.graph,
            observed_of=self._observed_of,
            uncertainty_weight=self.config.assigner.uncertainty_weight,
            prior_accuracy=self.config.estimator.prior_accuracy,
        )
        self.assigner = AdaptiveAssigner(
            self.config.assigner, tester=tester, recorder=self.recorder
        )

    # ------------------------------------------------------------------
    def on_worker_request(
        self,
        worker_id: WorkerId,
        active_workers: Iterable[WorkerId] | None = None,
    ) -> Assignment | None:
        """Serve the next assignment (warm-up first, then adaptive)."""
        if not self.warmup.is_qualified(worker_id):
            return None
        pending = self.warmup.next_task(worker_id)
        if pending is not None:
            return Assignment(
                task_id=pending, worker_id=worker_id, is_test=True
            )
        actives = list(active_workers or [])
        if worker_id not in actives:
            actives.append(worker_id)
        actives = [
            w
            for w in actives
            if self.warmup.is_qualified(w) and self.warmup.has_finished(w)
        ]
        self._refresh_estimates(actives)
        assignment = self.assigner.assign_for_worker(
            worker_id, list(self._states.values()), actives,
            self._estimates, epoch=self._assign_epoch,
        )
        if assignment is not None:
            state = self._states[assignment.task_id]
            if assignment.is_test:
                state.tested_workers.add(worker_id)
            else:
                state.assigned_workers.add(worker_id)
        return assignment

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        choice: Choice,
        is_test: bool = False,
    ) -> AnswerOutcome:
        """Record a multi-choice answer.

        Idempotent like :meth:`repro.core.ICrowd.on_answer`: duplicate
        ``(worker, task)`` deliveries and votes for already-completed
        tasks leave all state untouched.
        """
        if task_id in self.warmup.qualification_truth:
            if task_id in self.warmup.state_of(worker_id).graded:
                return AnswerOutcome.DUPLICATE
            self._assign_epoch += 1
            self.warmup.grade(worker_id, task_id, choice)
            self._answers.setdefault(worker_id, []).append(
                (task_id, choice)
            )
            self._dirty.add(worker_id)
            return AnswerOutcome.ACCEPTED
        vote_state = self._votes[task_id]
        state = self._states[task_id]
        if is_test:
            if worker_id in state.tested_workers and any(
                t == task_id for t, _ in self._answers.get(worker_id, ())
            ):
                return AnswerOutcome.DUPLICATE
            self._assign_epoch += 1
            state.tested_workers.add(worker_id)
        else:
            if any(w == worker_id for w, _ in vote_state.answers):
                return AnswerOutcome.DUPLICATE
            if state.completed:
                # the slot was requeued and filled by someone else first
                return AnswerOutcome.IGNORED
            self._assign_epoch += 1
            vote_state.add(worker_id, choice)
            state.assigned_workers.add(worker_id)
            if vote_state.is_complete() and not state.completed:
                state.completed = True
                self._consensus[task_id] = vote_state.consensus()
                for voter, _ in vote_state.answers:
                    self._dirty.add(voter)
        self._answers.setdefault(worker_id, []).append((task_id, choice))
        self._dirty.add(worker_id)
        return AnswerOutcome.ACCEPTED

    # ------------------------------------------------------------------
    def _observed_of(self, worker_id: WorkerId) -> dict[TaskId, float]:
        """Sparse ``q^w`` from qualification grades and plurality
        consensus via the generalised Eq. (5)."""
        observed: dict[TaskId, float] = {}
        truth = self.warmup.qualification_truth
        for task_id, choice in self._answers.get(worker_id, ()):
            gold = truth.get(task_id)
            if gold is not None:
                observed[task_id] = 1.0 if choice == gold else 0.0
                continue
            consensus = self._consensus.get(task_id)
            if consensus is None:
                continue
            votes = [
                (c, self._accuracy_of(w, task_id))
                for w, c in self._votes[task_id].answers
            ]
            observed[task_id] = multichoice_observed_accuracy(
                choice, consensus, votes, num_choices=len(self.choices)
            )
        return observed

    def _accuracy_of(self, worker_id: WorkerId, task_id: TaskId) -> float:
        vector = self._estimates.get(worker_id)
        if vector is not None:
            return float(vector[task_id])
        if self.warmup.state_of(worker_id).num_answered:
            return self.warmup.average_accuracy(worker_id)
        return self.config.estimator.prior_accuracy

    def _refresh_estimates(self, workers: Iterable[WorkerId]) -> None:
        for worker_id in workers:
            if worker_id in self._estimates and worker_id not in self._dirty:
                continue
            observed = self._observed_of(worker_id)
            self._estimates[worker_id] = self.estimator.estimate(observed)
            self._dirty.discard(worker_id)

    def estimate_for(self, worker_id: WorkerId) -> np.ndarray:
        """Current accuracy vector of a worker (lazily recomputed)."""
        self._refresh_estimates([worker_id])
        return self._estimates[worker_id]

    # ------------------------------------------------------------------
    def release_assignment(self, worker_id: WorkerId, task_id: TaskId) -> bool:
        """Reopen a slot whose assignment lease expired unanswered.

        Returns False when there is nothing to release — the vote
        already landed, or the worker never held the slot.
        """
        state = self._states.get(task_id)
        if state is None:
            return False
        if any(w == worker_id for w, _ in self._votes[task_id].answers):
            return False
        if worker_id not in state.assigned_workers:
            return False
        state.assigned_workers.discard(worker_id)
        self._assign_epoch += 1
        return True

    def expire_stale_assignments(
        self, max_age: int
    ) -> list[tuple[WorkerId, TaskId]]:
        """Policy-clock expiry hook (documented protocol default).

        ``MultiICrowd`` keeps no per-assignment issue clock; slot
        reclamation is driven by the platform's lease ledger calling
        :meth:`release_assignment`, so this is a no-op returning ``[]``.
        """
        if max_age < 0:
            raise ValueError("max_age must be >= 0")
        return []

    def is_finished(self) -> bool:
        """True once every non-qualification task reached k votes."""
        return all(s.completed for s in self._states.values())

    def completed_tasks(self) -> list[TaskId]:
        """Globally completed task ids."""
        return [t for t, s in self._states.items() if s.completed]

    def is_worker_rejected(self, worker_id: WorkerId) -> bool:
        """Whether warm-up eliminated this worker."""
        return not self.warmup.is_qualified(worker_id)

    def predictions(self) -> dict[TaskId, Choice]:
        """Plurality results; qualification tasks map to ground truth."""
        out: dict[TaskId, Choice] = {}
        for task in self.tasks:
            task_id = task.task_id
            if task_id in self.warmup.qualification_truth:
                out[task_id] = self.warmup.qualification_truth[task_id]
            elif task_id in self._consensus:
                out[task_id] = self._consensus[task_id]
            else:
                votes = self._votes[task_id]
                out[task_id] = (
                    votes.consensus() if votes.answers else self.choices[0]
                )
        return out
