"""Microtask similarity graph (Section 3).

A similarity graph ``G = (T, E)`` is a weighted undirected graph over
microtasks; an edge ``e_ij`` with weight ``s_ij`` records that ``t_i``
and ``t_j`` are similar.  The estimator consumes the symmetric
normalisation ``S' = D^{-1/2} S D^{-1/2}`` where ``D_ii = Σ_j s_ij``
(Section 3.1).

The graph is stored sparsely (CSR) so that the Figure 10 scalability
experiment — millions of tasks with a bounded neighbour count — stays
memory-feasible.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse

from repro.core.config import GraphConfig
from repro.core.similarity import compute_similarity
from repro.core.types import Task, TaskId

if TYPE_CHECKING:
    from repro.core.indexes import ShardedGraph


class SimilarityGraph:
    """Sparse weighted similarity graph with its normalised matrix.

    Construct directly from a dense similarity matrix via
    :meth:`from_matrix`, from tasks + config via :meth:`from_tasks`, or
    from an explicit edge list via :meth:`from_edges` (used by the
    random-graph scalability workload).
    """

    def __init__(self, matrix: sparse.csr_matrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"similarity matrix must be square, got {matrix.shape}")
        diff = abs(matrix - matrix.T)
        if diff.nnz and diff.max() > 1e-9:
            raise ValueError("similarity matrix must be symmetric")
        if matrix.nnz and matrix.data.min() < 0:
            raise ValueError("similarities must be non-negative")
        matrix = matrix.copy()
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        self._matrix: sparse.csr_matrix = matrix.tocsr()
        self._normalized: sparse.csr_matrix | None = None
        self._adjacency: list[list[tuple[TaskId, float]]] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        similarity: np.ndarray,
        threshold: float = 0.0,
        max_neighbors: int = 0,
    ) -> "SimilarityGraph":
        """Build a graph by thresholding a dense similarity matrix.

        Entries strictly below ``threshold`` are dropped (the paper keeps
        pairs whose similarity is "not smaller than" the threshold).
        When ``max_neighbors > 0`` each node keeps only its strongest
        ``max_neighbors`` edges (then the union is re-symmetrised) —
        this is Figure 10's neighbour bound.
        """
        sim = np.array(similarity, dtype=np.float64, copy=True)
        if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
            raise ValueError("similarity must be a square 2-D array")
        np.fill_diagonal(sim, 0.0)
        if threshold > 0:
            sim[sim < threshold] = 0.0
        if max_neighbors > 0:
            keep = np.zeros_like(sim, dtype=bool)
            n = sim.shape[0]
            for i in range(n):
                row = sim[i]
                nnz = np.flatnonzero(row)
                if len(nnz) > max_neighbors:
                    top = nnz[np.argsort(row[nnz])[::-1][:max_neighbors]]
                else:
                    top = nnz
                keep[i, top] = True
            keep |= keep.T  # keep an edge if either endpoint ranked it
            sim[~keep] = 0.0
        return cls(sparse.csr_matrix(sim))

    @classmethod
    def from_tasks(
        cls, tasks: Sequence[Task], config: GraphConfig, seed: int = 0
    ) -> "SimilarityGraph":
        """Compute similarities per ``config`` and threshold them."""
        sim = compute_similarity(
            tasks,
            measure=config.measure,
            num_topics=config.num_topics,
            seed=seed,
        )
        return cls.from_matrix(
            sim,
            threshold=config.threshold,
            max_neighbors=config.max_neighbors,
        )

    @classmethod
    def from_edges(
        cls,
        num_tasks: int,
        edges: Iterable[tuple[TaskId, TaskId, float]],
    ) -> "SimilarityGraph":
        """Build from an explicit undirected weighted edge list."""
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for i, j, weight in edges:
            if i == j:
                continue
            if not 0 <= i < num_tasks or not 0 <= j < num_tasks:
                raise ValueError(f"edge ({i}, {j}) out of range")
            if weight <= 0:
                raise ValueError(f"edge weight must be positive, got {weight}")
            rows.extend((i, j))
            cols.extend((j, i))
            data.extend((weight, weight))
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(num_tasks, num_tasks)
        )
        # duplicate edges sum under COO→CSR conversion; rescale to the max
        matrix.sum_duplicates()
        return cls(matrix)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self._matrix.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._matrix.nnz // 2

    @property
    def matrix(self) -> sparse.csr_matrix:
        """Raw symmetric similarity matrix ``S`` (zero diagonal)."""
        return self._matrix

    @property
    def normalized(self) -> sparse.csr_matrix:
        """Symmetric normalisation ``S' = D^{-1/2} S D^{-1/2}``.

        Isolated nodes (zero degree) keep all-zero rows: the estimator's
        restart term alone determines their accuracy, which matches the
        paper's intent that estimation cannot propagate to disconnected
        tasks.
        """
        if self._normalized is None:
            degrees = np.asarray(self._matrix.sum(axis=1)).ravel()
            with np.errstate(divide="ignore"):
                inv_sqrt = 1.0 / np.sqrt(degrees)
            inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
            d_inv = sparse.diags(inv_sqrt)
            self._normalized = (d_inv @ self._matrix @ d_inv).tocsr()
        return self._normalized

    def neighbors(self, task_id: TaskId) -> list[tuple[TaskId, float]]:
        """Adjacent tasks of ``task_id`` with their similarities.

        Adjacency lists are materialised once on first use; repeated
        neighbourhood lookups (the performance tester's hot path) are
        then plain list reads.
        """
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task id {task_id} out of range")
        if self._adjacency is None:
            indptr = self._matrix.indptr
            indices = self._matrix.indices
            data = self._matrix.data
            self._adjacency = [
                [
                    (int(indices[k]), float(data[k]))
                    for k in range(indptr[i], indptr[i + 1])
                ]
                for i in range(self.num_tasks)
            ]
        return self._adjacency[task_id]

    def degree(self, task_id: TaskId) -> float:
        """Weighted degree ``D_ii`` of a task."""
        return float(self._matrix.getrow(task_id).sum())

    def similarity(self, i: TaskId, j: TaskId) -> float:
        """Similarity ``s_ij`` (0 when no edge)."""
        return float(self._matrix[i, j])

    def connected_components(self) -> list[set[TaskId]]:
        """Connected components (useful for diagnostics and tests)."""
        n_components, labels = sparse.csgraph.connected_components(
            self._matrix, directed=False
        )
        components: list[set[TaskId]] = [set() for _ in range(n_components)]
        for task_id, label in enumerate(labels):
            components[label].add(task_id)
        return components

    # ------------------------------------------------------------------
    # partitioning (the sharded offline phase)
    # ------------------------------------------------------------------
    def _component_members(self) -> list[np.ndarray]:
        """Connected components as sorted id arrays, in deterministic
        order (each component appears at its smallest member's rank —
        scipy labels components by first-visited node)."""
        _, labels = sparse.csgraph.connected_components(
            self._matrix, directed=False
        )
        order = np.argsort(labels, kind="stable")
        boundaries = np.flatnonzero(np.diff(labels[order])) + 1
        return [np.asarray(part) for part in np.split(order, boundaries)]

    def _bfs_order(self, members: np.ndarray) -> np.ndarray:
        """Deterministic BFS visitation order over one component.

        Starts at the smallest member and expands neighbours in
        ascending id order, so equal graphs always produce equal
        orders.  Used by the split heuristic: cutting a BFS order into
        contiguous chunks keeps each chunk neighbourhood-dense, which
        is a cheap proxy for a small edge cut.
        """
        indptr = self._matrix.indptr
        indices = self._matrix.indices
        pending = np.zeros(self.num_tasks, dtype=bool)
        pending[members] = True
        order = np.empty(members.size, dtype=np.int64)
        filled = 0
        queue: deque[int] = deque([int(members[0])])
        pending[members[0]] = False
        while queue:
            node = queue.popleft()
            order[filled] = node
            filled += 1
            neighbors = np.sort(indices[indptr[node] : indptr[node + 1]])
            for neighbor in neighbors.tolist():
                if pending[neighbor]:
                    pending[neighbor] = False
                    queue.append(int(neighbor))
        # components are connected, so BFS reaches every member
        return order

    def partition(
        self, max_shard_tasks: int | None = None
    ) -> "ShardedGraph":
        """Shard the task set for the sharded offline phase.

        Shards follow connected components: small components are packed
        together greedily (in deterministic smallest-member order) up
        to ``max_shard_tasks``, and components *larger* than the cap are
        split by a cheap deterministic edge-cut heuristic — contiguous
        chunks of the component's BFS order (see :meth:`_bfs_order`).
        With ``max_shard_tasks=None`` every component becomes its own
        shard and no edge is cut.

        Returns a :class:`repro.core.indexes.ShardedGraph` carrying the
        stable task ↔ (shard, local-id) maps plus partition diagnostics
        (``cut_edges``, ``split_components``).
        """
        from repro.core.indexes import ShardedGraph, ShardIndex

        if max_shard_tasks is not None and max_shard_tasks <= 0:
            raise ValueError(
                f"max_shard_tasks must be positive, got {max_shard_tasks}"
            )
        shards: list[np.ndarray] = []
        split_components = 0
        pack: list[np.ndarray] = []
        packed = 0
        for members in self._component_members():
            if max_shard_tasks is None:
                shards.append(members)
                continue
            if members.size > max_shard_tasks:
                split_components += 1
                bfs = self._bfs_order(members)
                for start in range(0, bfs.size, max_shard_tasks):
                    shards.append(
                        np.sort(bfs[start : start + max_shard_tasks])
                    )
                continue
            if packed and packed + members.size > max_shard_tasks:
                shards.append(np.concatenate(pack))
                pack, packed = [], 0
            pack.append(members)
            packed += members.size
        if pack:
            shards.append(np.concatenate(pack))
        index = ShardIndex(shards, self.num_tasks)
        coo = self._matrix.tocoo()
        cut = int(
            np.count_nonzero(
                index.shards_of(coo.row) != index.shards_of(coo.col)
            )
            // 2
        )
        return ShardedGraph(
            self, index, cut_edges=cut, split_components=split_components
        )
