"""Microtask similarity graph (Section 3).

A similarity graph ``G = (T, E)`` is a weighted undirected graph over
microtasks; an edge ``e_ij`` with weight ``s_ij`` records that ``t_i``
and ``t_j`` are similar.  The estimator consumes the symmetric
normalisation ``S' = D^{-1/2} S D^{-1/2}`` where ``D_ii = Σ_j s_ij``
(Section 3.1).

The graph is stored sparsely (CSR) so that the Figure 10 scalability
experiment — millions of tasks with a bounded neighbour count — stays
memory-feasible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.core.config import GraphConfig
from repro.core.similarity import compute_similarity
from repro.core.types import Task, TaskId


class SimilarityGraph:
    """Sparse weighted similarity graph with its normalised matrix.

    Construct directly from a dense similarity matrix via
    :meth:`from_matrix`, from tasks + config via :meth:`from_tasks`, or
    from an explicit edge list via :meth:`from_edges` (used by the
    random-graph scalability workload).
    """

    def __init__(self, matrix: sparse.csr_matrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"similarity matrix must be square, got {matrix.shape}")
        diff = abs(matrix - matrix.T)
        if diff.nnz and diff.max() > 1e-9:
            raise ValueError("similarity matrix must be symmetric")
        if matrix.nnz and matrix.data.min() < 0:
            raise ValueError("similarities must be non-negative")
        matrix = matrix.copy()
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        self._matrix: sparse.csr_matrix = matrix.tocsr()
        self._normalized: sparse.csr_matrix | None = None
        self._adjacency: list[list[tuple[TaskId, float]]] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        similarity: np.ndarray,
        threshold: float = 0.0,
        max_neighbors: int = 0,
    ) -> "SimilarityGraph":
        """Build a graph by thresholding a dense similarity matrix.

        Entries strictly below ``threshold`` are dropped (the paper keeps
        pairs whose similarity is "not smaller than" the threshold).
        When ``max_neighbors > 0`` each node keeps only its strongest
        ``max_neighbors`` edges (then the union is re-symmetrised) —
        this is Figure 10's neighbour bound.
        """
        sim = np.array(similarity, dtype=np.float64, copy=True)
        if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
            raise ValueError("similarity must be a square 2-D array")
        np.fill_diagonal(sim, 0.0)
        if threshold > 0:
            sim[sim < threshold] = 0.0
        if max_neighbors > 0:
            keep = np.zeros_like(sim, dtype=bool)
            n = sim.shape[0]
            for i in range(n):
                row = sim[i]
                nnz = np.flatnonzero(row)
                if len(nnz) > max_neighbors:
                    top = nnz[np.argsort(row[nnz])[::-1][:max_neighbors]]
                else:
                    top = nnz
                keep[i, top] = True
            keep |= keep.T  # keep an edge if either endpoint ranked it
            sim[~keep] = 0.0
        return cls(sparse.csr_matrix(sim))

    @classmethod
    def from_tasks(
        cls, tasks: Sequence[Task], config: GraphConfig, seed: int = 0
    ) -> "SimilarityGraph":
        """Compute similarities per ``config`` and threshold them."""
        sim = compute_similarity(
            tasks,
            measure=config.measure,
            num_topics=config.num_topics,
            seed=seed,
        )
        return cls.from_matrix(
            sim,
            threshold=config.threshold,
            max_neighbors=config.max_neighbors,
        )

    @classmethod
    def from_edges(
        cls,
        num_tasks: int,
        edges: Iterable[tuple[TaskId, TaskId, float]],
    ) -> "SimilarityGraph":
        """Build from an explicit undirected weighted edge list."""
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for i, j, weight in edges:
            if i == j:
                continue
            if not 0 <= i < num_tasks or not 0 <= j < num_tasks:
                raise ValueError(f"edge ({i}, {j}) out of range")
            if weight <= 0:
                raise ValueError(f"edge weight must be positive, got {weight}")
            rows.extend((i, j))
            cols.extend((j, i))
            data.extend((weight, weight))
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(num_tasks, num_tasks)
        )
        # duplicate edges sum under COO→CSR conversion; rescale to the max
        matrix.sum_duplicates()
        return cls(matrix)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self._matrix.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._matrix.nnz // 2

    @property
    def matrix(self) -> sparse.csr_matrix:
        """Raw symmetric similarity matrix ``S`` (zero diagonal)."""
        return self._matrix

    @property
    def normalized(self) -> sparse.csr_matrix:
        """Symmetric normalisation ``S' = D^{-1/2} S D^{-1/2}``.

        Isolated nodes (zero degree) keep all-zero rows: the estimator's
        restart term alone determines their accuracy, which matches the
        paper's intent that estimation cannot propagate to disconnected
        tasks.
        """
        if self._normalized is None:
            degrees = np.asarray(self._matrix.sum(axis=1)).ravel()
            with np.errstate(divide="ignore"):
                inv_sqrt = 1.0 / np.sqrt(degrees)
            inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
            d_inv = sparse.diags(inv_sqrt)
            self._normalized = (d_inv @ self._matrix @ d_inv).tocsr()
        return self._normalized

    def neighbors(self, task_id: TaskId) -> list[tuple[TaskId, float]]:
        """Adjacent tasks of ``task_id`` with their similarities.

        Adjacency lists are materialised once on first use; repeated
        neighbourhood lookups (the performance tester's hot path) are
        then plain list reads.
        """
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task id {task_id} out of range")
        if self._adjacency is None:
            indptr = self._matrix.indptr
            indices = self._matrix.indices
            data = self._matrix.data
            self._adjacency = [
                [
                    (int(indices[k]), float(data[k]))
                    for k in range(indptr[i], indptr[i + 1])
                ]
                for i in range(self.num_tasks)
            ]
        return self._adjacency[task_id]

    def degree(self, task_id: TaskId) -> float:
        """Weighted degree ``D_ii`` of a task."""
        return float(self._matrix.getrow(task_id).sum())

    def similarity(self, i: TaskId, j: TaskId) -> float:
        """Similarity ``s_ij`` (0 when no edge)."""
        return float(self._matrix[i, j])

    def connected_components(self) -> list[set[TaskId]]:
        """Connected components (useful for diagnostics and tests)."""
        n_components, labels = sparse.csgraph.connected_components(
            self._matrix, directed=False
        )
        components: list[set[TaskId]] = [set() for _ in range(n_components)]
        for task_id, label in enumerate(labels):
            components[label].add(task_id)
        return components
