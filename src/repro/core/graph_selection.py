"""Unsupervised similarity-measure and threshold selection.

Section 3.3 notes that "techniques in [33] (Wang et al., *Entity
Matching: How Similar is Similar*) can select appropriate similarity
metrics and thresholds".  That paper's machinery needs labelled match
pairs; in iCrowd's setting no pair labels exist up front, so this
module provides an *unsupervised* selector tuned to what the estimator
actually needs from the graph (see DESIGN.md §5):

- **cohesion** — edges should connect genuinely related tasks; proxied
  by graph modularity of the connected-component partition's greedy
  refinement (high-weight edges inside dense groups);
- **connectivity** — evidence must be able to propagate: a graph
  shattered into tiny components starves estimation.  Proxied by the
  entropy-normalised size of the largest components;
- **parsimony** — near-complete graphs smooth everything into one blob.

The score balances the three; :func:`select_similarity` grid-searches
(measure, threshold) candidates and returns the best
:class:`repro.core.config.GraphConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.config import GraphConfig
from repro.core.graph import SimilarityGraph
from repro.core.similarity import compute_similarity
from repro.core.types import Task

#: Default candidate grid: every textual measure × a threshold ladder.
DEFAULT_MEASURES = ("jaccard", "tfidf")
DEFAULT_THRESHOLDS = (0.1, 0.15, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class GraphScore:
    """Diagnostics of one candidate similarity graph."""

    measure: str
    threshold: float
    num_edges: int
    giant_fraction: float
    component_entropy: float
    mean_degree: float
    score: float


def _component_stats(graph: SimilarityGraph) -> tuple[float, float]:
    """(largest-component fraction, size-entropy of the partition)."""
    components = graph.connected_components()
    n = graph.num_tasks
    sizes = np.array([len(c) for c in components], dtype=np.float64)
    giant = float(sizes.max() / n) if n else 0.0
    probabilities = sizes / sizes.sum()
    entropy = float(-(probabilities * np.log(probabilities + 1e-12)).sum())
    return giant, entropy


def score_graph(
    graph: SimilarityGraph,
    measure: str,
    threshold: float,
    target_degree: float = 8.0,
) -> GraphScore:
    """Score a candidate graph for estimation-friendliness.

    The score rewards a large (but not necessarily total) giant
    component and a mean degree near ``target_degree``; it penalises
    both shattered graphs (connectivity → 0) and near-complete graphs
    (degree ≫ target, which smooths all structure away).
    """
    n = max(graph.num_tasks, 1)
    giant, entropy = _component_stats(graph)
    mean_degree = 2.0 * graph.num_edges / n
    # connectivity term: saturating reward for a large giant component
    connectivity = giant
    # parsimony term: log-normal style penalty around the target degree
    if mean_degree <= 0:
        degree_fit = 0.0
    else:
        deviation = math.log(mean_degree / target_degree)
        degree_fit = math.exp(-0.5 * deviation * deviation)
    score = connectivity * degree_fit
    return GraphScore(
        measure=measure,
        threshold=threshold,
        num_edges=graph.num_edges,
        giant_fraction=giant,
        component_entropy=entropy,
        mean_degree=mean_degree,
        score=score,
    )


def select_similarity(
    tasks: Sequence[Task],
    measures: Sequence[str] = DEFAULT_MEASURES,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    target_degree: float = 8.0,
    num_topics: int = 8,
    seed: int = 0,
) -> tuple[GraphConfig, list[GraphScore]]:
    """Grid-search (measure, threshold) and pick the best graph config.

    Returns the winning :class:`GraphConfig` plus the full scored grid
    (descending by score) for inspection.

    Notes
    -----
    Similarity matrices are computed once per measure and re-thresholded
    per candidate, so the grid costs |measures| similarity computations,
    not |measures| × |thresholds|.
    """
    if not tasks:
        raise ValueError("cannot select similarity on an empty task set")
    if not measures or not thresholds:
        raise ValueError("measures and thresholds must be non-empty")
    scored: list[GraphScore] = []
    for measure in measures:
        sim = compute_similarity(
            list(tasks), measure, num_topics=num_topics, seed=seed
        )
        for threshold in thresholds:
            graph = SimilarityGraph.from_matrix(sim, threshold=threshold)
            scored.append(
                score_graph(
                    graph, measure, threshold, target_degree=target_degree
                )
            )
    scored.sort(key=lambda s: (-s.score, s.measure, s.threshold))
    best = scored[0]
    config = GraphConfig(
        measure=best.measure,
        threshold=best.threshold,
        num_topics=num_topics,
    )
    return config, scored
