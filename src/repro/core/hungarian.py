"""Hungarian algorithm and matching-based assignment (related work [20]).

The paper's related-work section points at the Hungarian method (Kuhn)
as the classical tool for assignment problems.  iCrowd's own problem is
*not* bipartite matching — a task needs a whole worker *set*, which is
why Definition 4 reduces from k-set packing — but a matching-based
assigner is a natural comparator: in each round, match each available
worker to one task slot so the summed estimated accuracy is maximal.

This module implements:

- :func:`hungarian` — the O(n³) Kuhn–Munkres algorithm on a rectangular
  cost matrix (minimisation), written from scratch (no scipy.optimize
  dependency) using the standard potentials-and-augmenting-path
  formulation;
- :func:`max_accuracy_matching` — convenience wrapper maximising summed
  accuracy of worker→task-slot pairs;
- :class:`MatchingAssigner` — a drop-in alternative to the greedy
  Algorithm 3 for one assignment round, used by the ablation bench to
  quantify what the set-packing view buys over per-worker matching.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.assigner import TaskState
from repro.core.types import Assignment, TaskId, WorkerId


def hungarian(cost: np.ndarray) -> list[tuple[int, int]]:
    """Minimum-cost assignment on a rectangular matrix.

    Parameters
    ----------
    cost:
        ``(n_rows, n_cols)`` cost matrix; every row is assigned to a
        distinct column (requires ``n_rows <= n_cols``).

    Returns
    -------
    list of (row, column)
        One entry per row, columns pairwise distinct, minimising the
        total cost.

    Notes
    -----
    Implements the JV-style potentials formulation: rows are inserted
    one at a time, each insertion finds a shortest augmenting path in
    O(n_cols²), for O(n_rows · n_cols²) total.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"hungarian needs n_rows <= n_cols, got {cost.shape}; "
            f"transpose the matrix and swap the output pairs"
        )
    INF = np.inf
    # potentials; column 0 is a virtual column simplifying the loop
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    # match[j] = row currently assigned to column j (1-based virtual 0)
    match = np.zeros(n_cols + 1, dtype=np.int64)

    for row in range(1, n_rows + 1):
        match[0] = row
        j0 = 0
        minv = np.full(n_cols + 1, INF)
        used = np.zeros(n_cols + 1, dtype=bool)
        way = np.zeros(n_cols + 1, dtype=np.int64)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = INF
            j1 = -1
            for j in range(1, n_cols + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n_cols + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # augment along the found path
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    pairs = [
        (int(match[j]) - 1, j - 1)
        for j in range(1, n_cols + 1)
        if match[j] != 0
    ]
    pairs.sort()
    return pairs


def max_accuracy_matching(
    accuracy: np.ndarray,
) -> list[tuple[int, int]]:
    """Maximum-total-accuracy assignment (rows=workers, cols=slots)."""
    accuracy = np.asarray(accuracy, dtype=np.float64)
    return hungarian(accuracy.max() - accuracy)


class MatchingAssigner:
    """One-round worker→task matching via the Hungarian algorithm.

    Expands each uncompleted task into ``k'`` identical slots, builds
    the worker × slot accuracy matrix (ineligible pairs get a strongly
    negative value) and solves a single maximum matching.  Unlike
    Algorithm 3 it never leaves a worker idle while any slot remains,
    but it also cannot prefer *completing* a task over spreading
    workers thin — which is exactly the behaviour the paper's
    set-packing objective encodes, and what the ablation bench
    measures.
    """

    #: accuracy assigned to (worker, slot) pairs that must not match
    FORBIDDEN = -1e6

    def assign(
        self,
        states: Sequence[TaskState],
        active_workers: Sequence[WorkerId],
        accuracies: Mapping[WorkerId, np.ndarray],
    ) -> list[Assignment]:
        """Match every available worker to at most one task slot."""
        workers = list(active_workers)
        if not workers:
            return []
        slots: list[TaskId] = []
        for state in states:
            if state.completed:
                continue
            slots.extend([state.task_id] * state.remaining)
        if not slots:
            return []
        state_by_id = {s.task_id: s for s in states}
        matrix = np.full((len(workers), len(slots)), self.FORBIDDEN)
        for wi, worker in enumerate(workers):
            vector = accuracies[worker]
            for si, task_id in enumerate(slots):
                if state_by_id[task_id].has_seen(worker):
                    continue
                matrix[wi, si] = float(vector[task_id])
        if len(workers) > len(slots):
            # Hungarian needs rows <= cols: pad with dummy slots
            pad = np.full(
                (len(workers), len(workers) - len(slots)), self.FORBIDDEN
            )
            matrix = np.hstack([matrix, pad])
        pairs = max_accuracy_matching(matrix)
        assignments: list[Assignment] = []
        seen_tasks: dict[WorkerId, set[TaskId]] = {}
        for wi, si in pairs:
            if si >= len(slots):
                continue  # dummy slot
            if matrix[wi, si] <= self.FORBIDDEN / 2:
                continue  # forbidden pair chosen only to stay feasible
            worker = workers[wi]
            task_id = slots[si]
            if task_id in seen_tasks.setdefault(worker, set()):
                continue
            seen_tasks[worker].add(task_id)
            assignments.append(
                Assignment(task_id=task_id, worker_id=worker)
            )
        return assignments
