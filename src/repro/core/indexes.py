"""Index structures for large-scale assignment (Section 6.5 / Figure 10).

The paper's efficiency experiment inserts 0.2M microtasks at a time (up
to 1M) with a bounded neighbour count per task and reports sub-linear
growth of assignment time, crediting "effective index structures".  The
key to sub-linearity is that per-request work must depend on the *local*
neighbourhood a worker's evidence reaches — never on |T|:

- worker accuracy estimates are kept **sparse**: a dict over the support
  of the forward-push PPR combination (everything else sits at the
  prior),
- each worker carries a lazy max-heap over her support, so "best task
  for this worker" pops in O(log |support|),
- tasks at the prior (no evidence either way) are served from a shared
  frontier stack, O(1) amortised.

:class:`ScalableAssigner` packages these indexes behind the same
request/answer interaction the full framework uses, trading the global
greedy scheme for the indexed per-worker argmax — the regime the paper's
scalability simulation measures.
"""

from __future__ import annotations

import heapq
from collections.abc import Container, Mapping

from scipy import sparse

from repro.core.ppr import PushKernel
from repro.core.types import TaskId, WorkerId


class SparseEstimateIndex:
    """Per-worker sparse accuracy estimate with a lazy max-heap.

    The estimate is the forward-push PPR combination of the worker's
    observed accuracies; coordinates outside the support are implicitly
    at ``prior``.
    """

    def __init__(self, prior: float = 0.5) -> None:
        self.prior = prior
        self._values: dict[TaskId, float] = {}
        self._heap: list[tuple[float, TaskId]] = []

    def update(self, values: Mapping[TaskId, float]) -> None:
        """Merge new estimate entries (heap entries are lazily refreshed)."""
        for task_id, value in values.items():
            self._values[task_id] = value
            heapq.heappush(self._heap, (-value, task_id))

    def value(self, task_id: TaskId) -> float:
        """Current estimate for a task (prior when unobserved)."""
        return self._values.get(task_id, self.prior)

    @property
    def support_size(self) -> int:
        return len(self._values)

    def pop_best(self, excluded: Container[TaskId]) -> TaskId | None:
        """Highest-estimate task not in ``excluded`` (lazy deletion).

        Stale heap entries (superseded values or excluded tasks) are
        discarded on the way; each entry is popped at most once, so the
        amortised cost is O(log |support|).
        """
        while self._heap:
            neg_value, task_id = heapq.heappop(self._heap)
            if task_id in excluded:
                continue
            if self._values.get(task_id) != -neg_value:
                continue  # superseded by an update
            return task_id
        return None


class ScalableAssigner:
    """Indexed assignment for the Figure 10 scalability regime.

    Parameters
    ----------
    normalized:
        ``S'`` of the (large) similarity graph, CSR.
    damping:
        PPR follow probability ``1/(1+alpha)``.
    k:
        Assignment size per task.
    prior:
        Accuracy prior for unobserved coordinates.
    push_epsilon:
        Forward-push truncation; bounds per-observation work by the
        neighbourhood actually reached.
    """

    def __init__(
        self,
        normalized: sparse.csr_matrix,
        damping: float,
        k: int = 3,
        prior: float = 0.5,
        push_epsilon: float = 1e-4,
        neighborhood_only: bool = True,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.normalized = normalized
        self.damping = damping
        self.k = k
        self.prior = prior
        self.push_epsilon = push_epsilon
        #: Section 6.5 bounds "the maximal number of neighbours which
        #: can be influenced by a microtask in our accuracy inference":
        #: an observation updates the task itself and its direct
        #: neighbours only (one Neumann term), making per-observation
        #: work O(degree) — exactly the neighbour bound of Figure 10.
        #: Set False for the full localized push.
        self.neighborhood_only = neighborhood_only
        self.num_tasks = normalized.shape[0]
        self._indexes: dict[WorkerId, SparseEstimateIndex] = {}
        self._seen: dict[WorkerId, set[TaskId]] = {}
        self._votes: dict[TaskId, int] = {}
        self._completed: set[TaskId] = set()
        # frontier of prior-valued tasks, served LIFO
        self._frontier: list[TaskId] = list(range(self.num_tasks - 1, -1, -1))
        self._basis_cache: dict[TaskId, dict[TaskId, float]] = {}
        # shared flat-array push workspace: localized pushes for
        # different observed tasks reuse one set of dense buffers
        self._push_kernel: PushKernel | None = None

    # ------------------------------------------------------------------
    def _index_of(self, worker_id: WorkerId) -> SparseEstimateIndex:
        index = self._indexes.get(worker_id)
        if index is None:
            index = SparseEstimateIndex(prior=self.prior)
            self._indexes[worker_id] = index
        return index

    def observe(
        self, worker_id: WorkerId, task_id: TaskId, observed: float
    ) -> None:
        """Fold one observed accuracy into the worker's sparse estimate.

        Runs (or reuses) the localized PPR push from ``task_id`` and adds
        the ``observed``-weighted basis row into the worker's index —
        Lemma 3's linearity, restricted to the touched support.
        """
        basis_row = self._basis_cache.get(task_id)
        if basis_row is None:
            if self.neighborhood_only:
                basis_row = self._one_hop_row(task_id)
            else:
                if self._push_kernel is None:
                    self._push_kernel = PushKernel(self.normalized)
                nodes, values, _ = self._push_kernel.push(
                    task_id, self.damping, epsilon=self.push_epsilon
                )
                basis_row = {
                    int(node): float(value)
                    for node, value in zip(nodes.tolist(), values.tolist())
                }
            self._basis_cache[task_id] = basis_row
        index = self._index_of(worker_id)
        mass = self._mass_cache(task_id)
        updates: dict[TaskId, float] = {}
        for neighbor, value in basis_row.items():
            m = mass.get(neighbor, 0.0)
            if m <= 0:
                continue
            evidence = observed * value / m
            weight = min(m, 1.0)
            blended = weight * evidence + (1.0 - weight) * self.prior
            prev = index.value(neighbor)
            # average with any existing evidence (cheap online merge)
            if neighbor in index._values:
                blended = 0.5 * (prev + blended)
            updates[neighbor] = min(max(blended, 0.0), 1.0)
        index.update(updates)

    def _one_hop_row(self, task_id: TaskId) -> dict[TaskId, float]:
        """Two-term Neumann truncation of the basis row.

        ``p ≈ (1-c)·e_s + c(1-c)·S' e_s`` — the observation influences
        the task itself plus its direct neighbours, bounding work by
        the configured neighbour count.
        """
        c = self.damping
        indptr = self.normalized.indptr
        indices = self.normalized.indices
        data = self.normalized.data
        row: dict[TaskId, float] = {task_id: 1.0 - c}
        start, end = indptr[task_id], indptr[task_id + 1]
        for idx in range(start, end):
            neighbor = int(indices[idx])
            value = c * (1.0 - c) * float(data[idx])
            if neighbor == task_id:
                row[task_id] += value
            else:
                row[neighbor] = row.get(neighbor, 0.0) + value
        return row

    def _mass_cache(self, task_id: TaskId) -> dict[TaskId, float]:
        # for a single observation the mass equals the basis row itself
        return self._basis_cache[task_id]

    # ------------------------------------------------------------------
    def request(self, worker_id: WorkerId) -> TaskId | None:
        """Serve the worker her best available task.

        Prefers the highest entry of her sparse estimate; falls back to
        the shared frontier of unevidenced tasks.  O(log |support|) —
        independent of |T|.
        """
        seen = self._seen.setdefault(worker_id, set())
        index = self._index_of(worker_id)
        excluded = seen | self._completed
        best = index.pop_best(excluded)
        if best is not None and index.value(best) > self.prior:
            seen.add(best)
            return best
        # fall back to the frontier (skipping completed/seen lazily)
        while self._frontier:
            candidate = self._frontier.pop()
            if candidate in self._completed or candidate in seen:
                continue
            seen.add(candidate)
            return candidate
        if best is not None:
            seen.add(best)
            return best
        return None

    def answer(
        self, worker_id: WorkerId, task_id: TaskId, observed: float
    ) -> None:
        """Record an answer: vote count, completion, estimate update."""
        votes = self._votes.get(task_id, 0) + 1
        self._votes[task_id] = votes
        if votes >= self.k:
            self._completed.add(task_id)
        self.observe(worker_id, task_id, observed)

    @property
    def num_completed(self) -> int:
        return len(self._completed)
