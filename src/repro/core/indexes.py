"""Index structures for large-scale assignment (Section 6.5 / Figure 10).

The paper's efficiency experiment inserts 0.2M microtasks at a time (up
to 1M) with a bounded neighbour count per task and reports sub-linear
growth of assignment time, crediting "effective index structures".  The
key to sub-linearity is that per-request work must depend on the *local*
neighbourhood a worker's evidence reaches — never on |T|:

- worker accuracy estimates are kept **sparse**: a dict over the support
  of the forward-push PPR combination (everything else sits at the
  prior),
- each worker carries a lazy max-heap over her support, so "best task
  for this worker" pops in O(log |support|),
- tasks at the prior (no evidence either way) are served from a shared
  frontier stack, O(1) amortised.

:class:`ScalableAssigner` packages these indexes behind the same
request/answer interaction the full framework uses, trading the global
greedy scheme for the indexed per-worker argmax — the regime the paper's
scalability simulation measures.

:class:`ShardIndex` and :class:`ShardedGraph` carry the task partition
of the sharded offline phase: stable task-id ↔ (shard, local-id) maps
produced by :meth:`repro.core.graph.SimilarityGraph.partition`, consumed
by the shared-memory basis builder (:class:`repro.core.ppr.ShardedBasis`)
and the per-shard greedy assignment in
:class:`repro.core.assigner.AdaptiveAssigner`.
"""

from __future__ import annotations

import heapq
from collections.abc import Container, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse

from repro.core.ppr import PushKernel
from repro.core.types import TaskId, WorkerId

if TYPE_CHECKING:
    from repro.core.graph import SimilarityGraph


class ShardIndex:
    """Stable task-id ↔ (shard, local-id) maps over a task partition.

    A shard is a non-empty set of task ids; shards must partition
    ``range(num_tasks)`` exactly (every task in exactly one shard).
    Task ids within a shard are kept sorted ascending, and a task's
    *local id* is its rank inside its shard's sorted id array — so the
    maps are a pure function of the partition, independent of the
    order shards or members were supplied in.
    """

    def __init__(
        self, shards: Sequence[Iterable[TaskId]], num_tasks: int
    ) -> None:
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        shard_of = np.full(num_tasks, -1, dtype=np.int64)
        local_of = np.full(num_tasks, -1, dtype=np.int64)
        shard_tasks: list[np.ndarray] = []
        for shard_id, members in enumerate(shards):
            tasks = np.asarray(sorted(members), dtype=np.int64)
            if tasks.size == 0:
                raise ValueError(f"shard {shard_id} is empty")
            if tasks[0] < 0 or tasks[-1] >= num_tasks:
                raise ValueError(
                    f"shard {shard_id} contains out-of-range task ids"
                )
            if np.unique(tasks).size != tasks.size:
                raise ValueError(f"shard {shard_id} repeats a task id")
            taken = shard_of[tasks] >= 0
            if bool(taken.any()):
                raise ValueError(
                    f"tasks {tasks[taken][:5].tolist()} appear in more "
                    f"than one shard"
                )
            shard_of[tasks] = shard_id
            local_of[tasks] = np.arange(tasks.size, dtype=np.int64)
            shard_tasks.append(tasks)
        uncovered = np.flatnonzero(shard_of < 0)
        if uncovered.size:
            raise ValueError(
                f"tasks {uncovered[:5].tolist()} belong to no shard"
            )
        self._shard_of = shard_of
        self._local_of = local_of
        self._shard_tasks = shard_tasks

    @property
    def num_tasks(self) -> int:
        return int(self._shard_of.shape[0])

    @property
    def num_shards(self) -> int:
        return len(self._shard_tasks)

    def shard_of(self, task_id: TaskId) -> int:
        """Owning shard of a task."""
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task id {task_id} out of range")
        return int(self._shard_of[task_id])

    def shards_of(self, task_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of` over an id array."""
        return self._shard_of[np.asarray(task_ids, dtype=np.int64)]

    def local_of(self, task_id: TaskId) -> int:
        """Local row index of a task inside its owning shard."""
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task id {task_id} out of range")
        return int(self._local_of[task_id])

    def locate(self, task_id: TaskId) -> tuple[int, int]:
        """``(shard, local-id)`` of a task in one lookup."""
        return self.shard_of(task_id), self.local_of(task_id)

    def shard_tasks(self, shard_id: int) -> np.ndarray:
        """Sorted global task ids of one shard (do not mutate)."""
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"shard id {shard_id} out of range")
        return self._shard_tasks[shard_id]

    def shard_sizes(self) -> list[int]:
        """Task count per shard, in shard order."""
        return [int(tasks.size) for tasks in self._shard_tasks]

    def group(
        self, task_ids: Iterable[TaskId]
    ) -> dict[int, list[TaskId]]:
        """Group task ids by owning shard (shards in ascending order,
        members in input order)."""
        grouped: dict[int, list[TaskId]] = {}
        for task_id in task_ids:
            grouped.setdefault(self.shard_of(task_id), []).append(task_id)
        return {shard: grouped[shard] for shard in sorted(grouped)}


class ShardedGraph:
    """A similarity graph together with its task partition.

    Produced by :meth:`repro.core.graph.SimilarityGraph.partition`;
    bundles the graph, the :class:`ShardIndex` and the partition
    diagnostics (how many connected components were split, how many
    similarity edges the split cut).  Cut edges are a *diagnostic*, not
    a correctness concern: the sharded basis builder always pushes on
    the full matrix, so basis values are unaffected by where the
    partition cuts.
    """

    def __init__(
        self,
        graph: "SimilarityGraph",
        index: ShardIndex,
        cut_edges: int = 0,
        split_components: int = 0,
    ) -> None:
        if graph.num_tasks != index.num_tasks:
            raise ValueError(
                f"index covers {index.num_tasks} tasks but graph has "
                f"{graph.num_tasks}"
            )
        self.graph = graph
        self.index = index
        #: Undirected similarity edges whose endpoints landed in
        #: different shards (0 when every shard is a component union).
        self.cut_edges = cut_edges
        #: Connected components larger than the shard cap that the
        #: edge-cut heuristic had to split.
        self.split_components = split_components

    @property
    def num_shards(self) -> int:
        return self.index.num_shards

    @property
    def num_tasks(self) -> int:
        return self.graph.num_tasks

    def shard_normalized(self, shard_id: int) -> sparse.csr_matrix:
        """Shard-local view of ``S'`` (rows/columns restricted to the
        shard's tasks, in local-id order); diagnostic helper."""
        tasks = self.index.shard_tasks(shard_id)
        return self.graph.normalized[tasks][:, tasks].tocsr()


class SparseEstimateIndex:
    """Per-worker sparse accuracy estimate with a lazy max-heap.

    The estimate is the forward-push PPR combination of the worker's
    observed accuracies; coordinates outside the support are implicitly
    at ``prior``.
    """

    def __init__(self, prior: float = 0.5) -> None:
        self.prior = prior
        self._values: dict[TaskId, float] = {}
        self._heap: list[tuple[float, TaskId]] = []

    def update(self, values: Mapping[TaskId, float]) -> None:
        """Merge new estimate entries (heap entries are lazily refreshed)."""
        for task_id, value in values.items():
            self._values[task_id] = value
            heapq.heappush(self._heap, (-value, task_id))

    def value(self, task_id: TaskId) -> float:
        """Current estimate for a task (prior when unobserved)."""
        return self._values.get(task_id, self.prior)

    def observed(self, task_id: TaskId) -> bool:
        """True when the task has an explicit estimate entry (i.e. is
        inside the support rather than implicitly at ``prior``)."""
        return task_id in self._values

    def __contains__(self, task_id: TaskId) -> bool:
        return self.observed(task_id)

    @property
    def support_size(self) -> int:
        return len(self._values)

    def pop_best(self, excluded: Container[TaskId]) -> TaskId | None:
        """Highest-estimate task not in ``excluded`` (lazy deletion).

        Stale heap entries (superseded values or excluded tasks) are
        discarded on the way; each entry is popped at most once, so the
        amortised cost is O(log |support|).
        """
        while self._heap:
            neg_value, task_id = heapq.heappop(self._heap)
            if task_id in excluded:
                continue
            if self._values.get(task_id) != -neg_value:
                continue  # superseded by an update
            return task_id
        return None

    def restore(self, task_id: TaskId) -> None:
        """Re-push a task consumed by :meth:`pop_best` but not served.

        An assigner that pops the best entry and then decides to serve
        something else (e.g. a frontier candidate) must put the entry
        back, or the task could never again be reached by estimate
        order.  No-op for tasks outside the support; duplicate pushes
        are harmless under lazy deletion.
        """
        value = self._values.get(task_id)
        if value is not None:
            heapq.heappush(self._heap, (-value, task_id))


class ScalableAssigner:
    """Indexed assignment for the Figure 10 scalability regime.

    Parameters
    ----------
    normalized:
        ``S'`` of the (large) similarity graph, CSR.
    damping:
        PPR follow probability ``1/(1+alpha)``.
    k:
        Assignment size per task.
    prior:
        Accuracy prior for unobserved coordinates.
    push_epsilon:
        Forward-push truncation; bounds per-observation work by the
        neighbourhood actually reached.
    """

    def __init__(
        self,
        normalized: sparse.csr_matrix,
        damping: float,
        k: int = 3,
        prior: float = 0.5,
        push_epsilon: float = 1e-4,
        neighborhood_only: bool = True,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.normalized = normalized
        self.damping = damping
        self.k = k
        self.prior = prior
        self.push_epsilon = push_epsilon
        #: Section 6.5 bounds "the maximal number of neighbours which
        #: can be influenced by a microtask in our accuracy inference":
        #: an observation updates the task itself and its direct
        #: neighbours only (one Neumann term), making per-observation
        #: work O(degree) — exactly the neighbour bound of Figure 10.
        #: Set False for the full localized push.
        self.neighborhood_only = neighborhood_only
        self.num_tasks = normalized.shape[0]
        self._indexes: dict[WorkerId, SparseEstimateIndex] = {}
        self._seen: dict[WorkerId, set[TaskId]] = {}
        self._votes: dict[TaskId, int] = {}
        self._completed: set[TaskId] = set()
        # frontier of prior-valued tasks, served LIFO
        self._frontier: list[TaskId] = list(range(self.num_tasks - 1, -1, -1))
        self._basis_cache: dict[TaskId, dict[TaskId, float]] = {}
        # shared flat-array push workspace: localized pushes for
        # different observed tasks reuse one set of dense buffers
        self._push_kernel: PushKernel | None = None

    # ------------------------------------------------------------------
    def _index_of(self, worker_id: WorkerId) -> SparseEstimateIndex:
        index = self._indexes.get(worker_id)
        if index is None:
            index = SparseEstimateIndex(prior=self.prior)
            self._indexes[worker_id] = index
        return index

    def observe(
        self, worker_id: WorkerId, task_id: TaskId, observed: float
    ) -> None:
        """Fold one observed accuracy into the worker's sparse estimate.

        Runs (or reuses) the localized PPR push from ``task_id`` and adds
        the ``observed``-weighted basis row into the worker's index —
        Lemma 3's linearity, restricted to the touched support.
        """
        basis_row = self._basis_cache.get(task_id)
        if basis_row is None:
            if self.neighborhood_only:
                basis_row = self._one_hop_row(task_id)
            else:
                if self._push_kernel is None:
                    self._push_kernel = PushKernel(self.normalized)
                nodes, values, _ = self._push_kernel.push(
                    task_id, self.damping, epsilon=self.push_epsilon
                )
                basis_row = {
                    int(node): float(value)
                    for node, value in zip(nodes.tolist(), values.tolist())
                }
            self._basis_cache[task_id] = basis_row
        index = self._index_of(worker_id)
        mass = self._mass_cache(task_id)
        updates: dict[TaskId, float] = {}
        for neighbor, value in basis_row.items():
            m = mass.get(neighbor, 0.0)
            if m <= 0:
                continue
            evidence = observed * value / m
            weight = min(m, 1.0)
            blended = weight * evidence + (1.0 - weight) * self.prior
            prev = index.value(neighbor)
            # average with any existing evidence (cheap online merge)
            if index.observed(neighbor):
                blended = 0.5 * (prev + blended)
            updates[neighbor] = min(max(blended, 0.0), 1.0)
        index.update(updates)

    def _one_hop_row(self, task_id: TaskId) -> dict[TaskId, float]:
        """Two-term Neumann truncation of the basis row.

        ``p ≈ (1-c)·e_s + c(1-c)·S' e_s`` — the observation influences
        the task itself plus its direct neighbours, bounding work by
        the configured neighbour count.
        """
        c = self.damping
        indptr = self.normalized.indptr
        indices = self.normalized.indices
        data = self.normalized.data
        row: dict[TaskId, float] = {task_id: 1.0 - c}
        start, end = indptr[task_id], indptr[task_id + 1]
        for idx in range(start, end):
            neighbor = int(indices[idx])
            value = c * (1.0 - c) * float(data[idx])
            if neighbor == task_id:
                row[task_id] += value
            else:
                row[neighbor] = row.get(neighbor, 0.0) + value
        return row

    def _mass_cache(self, task_id: TaskId) -> dict[TaskId, float]:
        # for a single observation the mass equals the basis row itself
        return self._basis_cache[task_id]

    # ------------------------------------------------------------------
    def request(self, worker_id: WorkerId) -> TaskId | None:
        """Serve the worker her best available task.

        Prefers the highest entry of her sparse estimate; falls back to
        the shared frontier of unevidenced tasks.  O(log |support|) —
        independent of |T|.
        """
        seen = self._seen.setdefault(worker_id, set())
        index = self._index_of(worker_id)
        excluded = seen | self._completed
        best = index.pop_best(excluded)
        if best is not None and index.value(best) > self.prior:
            seen.add(best)
            return best
        # fall back to the frontier (skipping completed/seen lazily)
        while self._frontier:
            candidate = self._frontier.pop()
            if candidate in self._completed or candidate in seen:
                continue
            if best is not None:
                # serving a frontier candidate instead: re-push the
                # heap entry pop_best consumed, or the task could
                # never again be served by estimate order
                index.restore(best)
            seen.add(candidate)
            return candidate
        if best is not None:
            seen.add(best)
            return best
        return None

    def answer(
        self, worker_id: WorkerId, task_id: TaskId, observed: float
    ) -> None:
        """Record an answer: vote count, completion, estimate update."""
        votes = self._votes.get(task_id, 0) + 1
        self._votes[task_id] = votes
        if votes >= self.k:
            self._completed.add(task_id)
        self.observe(worker_id, task_id, observed)

    @property
    def num_completed(self) -> int:
        return len(self._completed)
