"""Multi-choice microtask extension (Section 2.1, footnote on choices).

The paper presents binary microtasks "for ease of presentation" and
notes the techniques extend to more than two choices.  This module
provides that extension for the voting/observed-accuracy layer:

- :class:`MultiVoteState` — plurality voting over an arbitrary label
  set, with completion at ``k`` answers;
- :func:`plurality_vote` — batch aggregation;
- :func:`multichoice_observed_accuracy` — Eq. (5) generalised: with
  ``m`` choices an incorrect worker picks a specific wrong label with
  probability ``(1 - p) / (m - 1)`` (the symmetric-error model that
  Dawid–Skene also reduces to), and the observed accuracy is the
  posterior that the consensus label is the true one given everyone's
  votes under that model.

The estimator and assigner layers are label-agnostic (they consume only
observed accuracies), so this module is all that is needed to run
iCrowd on multi-choice workloads.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Sequence

from repro.core.types import TaskId, WorkerId

#: A multi-choice answer label (any hashable; strings in practice).
Choice = Hashable


@dataclass
class MultiVoteState:
    """Voting state for one multi-choice microtask."""

    task_id: TaskId
    k: int
    choices: tuple[Choice, ...]
    answers: list[tuple[WorkerId, Choice]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if len(self.choices) < 2:
            raise ValueError("a microtask needs at least two choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError("choices must be distinct")

    def add(self, worker_id: WorkerId, choice: Choice) -> None:
        """Record a vote (one per worker; choice must be valid)."""
        if choice not in self.choices:
            raise ValueError(f"choice {choice!r} not among {self.choices}")
        if any(w == worker_id for w, _ in self.answers):
            raise ValueError(
                f"worker {worker_id!r} already voted on task {self.task_id}"
            )
        self.answers.append((worker_id, choice))

    def is_complete(self) -> bool:
        """True once k answers are collected."""
        return len(self.answers) >= self.k

    def tallies(self) -> Counter:
        """Vote counts per choice."""
        return Counter(choice for _, choice in self.answers)

    def consensus(self) -> Choice:
        """Plurality winner; ties break by choice order (stable)."""
        tallies = self.tallies()
        best_count = max(tallies.values(), default=0)
        for choice in self.choices:
            if tallies.get(choice, 0) == best_count:
                return choice
        return self.choices[0]


def plurality_vote(
    votes: Iterable[tuple[TaskId, WorkerId, Choice]],
    choices: Sequence[Choice],
) -> dict[TaskId, Choice]:
    """Batch plurality aggregation over a flat vote list."""
    by_task: dict[TaskId, Counter] = {}
    for task_id, _, choice in votes:
        by_task.setdefault(task_id, Counter())[choice] += 1
    results: dict[TaskId, Choice] = {}
    for task_id, tallies in by_task.items():
        best_count = max(tallies.values())
        for choice in choices:
            if tallies.get(choice, 0) == best_count:
                results[task_id] = choice
                break
    return results


def _clamp(p: float) -> float:
    return min(max(p, 1e-6), 1.0 - 1e-6)


def multichoice_observed_accuracy(
    worker_choice: Choice,
    consensus: Choice,
    votes: Iterable[tuple[Choice, float]],
    num_choices: int,
) -> float:
    """Generalised Eq. (5) under the symmetric-error model.

    Computes the posterior that the consensus label is the true label
    given all votes (each worker answers correctly w.p. her accuracy
    and picks each specific wrong label w.p. ``(1-p)/(m-1)``), assuming
    a uniform prior over the ``m`` labels restricted to the labels that
    actually received votes plus the consensus.  The worker's observed
    accuracy is that posterior when she agrees with the consensus, and
    the posterior of *her own* label being true when she does not —
    exactly the binary Eq. (5) at ``m = 2``.
    """
    if num_choices < 2:
        raise ValueError("num_choices must be at least 2")
    votes = list(votes)
    candidates = {consensus, worker_choice} | {c for c, _ in votes}

    def log_likelihood(true_label: Choice) -> float:
        total = 0.0
        for choice, accuracy in votes:
            accuracy = _clamp(accuracy)
            if choice == true_label:
                total += math.log(accuracy)
            else:
                total += math.log((1.0 - accuracy) / (num_choices - 1))
        return total

    log_posts = {c: log_likelihood(c) for c in candidates}
    shift = max(log_posts.values())
    posts = {c: math.exp(v - shift) for c, v in log_posts.items()}
    normaliser = sum(posts.values())
    # repro-lint: disable=RL004 -- exact-zero guard before division
    if normaliser == 0.0:
        return 1.0 / num_choices
    if worker_choice == consensus:
        return posts[consensus] / normaliser
    return posts[worker_choice] / normaliser
