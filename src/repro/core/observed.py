"""Observed accuracy estimation (Section 3.2, Equation 5).

The observed accuracy ``q_i^w`` models how well worker ``w`` did on a
globally completed microtask ``t_i``:

- For a **qualification** task with ground truth, ``q_i^w`` is 1 when
  the answer matches the gold label and 0 otherwise.
- For a **consensus** task, partition the task's workers into ``W1``
  (answer equals consensus) and ``W2`` (answer differs).  With
  ``P1 = Π_{w'∈W1} p_i^{w'}`` and bars denoting complements,

      q_i^w = P1·P̄2 / (P1·P̄2 + P̄1·P2)    if ans_i^w = ans_i*
      q_i^w = P̄1·P2 / (P1·P̄2 + P̄1·P2)    otherwise

  i.e. the posterior probability that the consensus (resp. minority)
  answer is the correct one, given the current accuracy estimates of
  everyone who voted — the worker herself included.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.core.types import Answer, Label, TaskId, WorkerId

#: Callback giving the current accuracy estimate of a worker on a task.
AccuracyLookup = Callable[[WorkerId, TaskId], float]


def _clamp(p: float, floor: float = 1e-6) -> float:
    """Keep probabilities strictly inside (0, 1) so products stay sane."""
    return min(max(p, floor), 1.0 - floor)


def consensus_observed_accuracy(
    worker_label: Label,
    consensus: Label,
    votes: Iterable[tuple[Label, float]],
) -> float:
    """Equation (5) for one worker on one consensus task.

    Parameters
    ----------
    worker_label:
        The answer submitted by the worker being scored.
    consensus:
        The task's majority answer.
    votes:
        ``(label, estimated_accuracy)`` for *every* worker that voted on
        the task, including the worker being scored.

    Returns
    -------
    float
        ``q_i^w`` in (0, 1).
    """
    p_agree = 1.0  # P1:  all agreeing workers answer correctly
    p_agree_bar = 1.0  # P̄1: all agreeing workers answer incorrectly
    p_disagree = 1.0  # P2
    p_disagree_bar = 1.0  # P̄2
    for label, accuracy in votes:
        accuracy = _clamp(accuracy)
        if label == consensus:
            p_agree *= accuracy
            p_agree_bar *= 1.0 - accuracy
        else:
            p_disagree *= accuracy
            p_disagree_bar *= 1.0 - accuracy
    numerator_match = p_agree * p_disagree_bar
    numerator_mismatch = p_agree_bar * p_disagree
    denominator = numerator_match + numerator_mismatch
    # repro-lint: disable=RL004 -- exact-zero guard before division
    if denominator == 0.0:
        # degenerate accuracies cancelled out; fall back to a coin flip
        return 0.5
    if worker_label == consensus:
        return numerator_match / denominator
    return numerator_mismatch / denominator


class ObservedAccuracyComputer:
    """Builds the sparse observed-accuracy vector ``q^w`` (Algorithm 1,
    function ``ComputeObserved``).

    The computer is stateless with respect to workers: callers pass the
    worker's answers on globally completed tasks, the per-task vote
    records, and an accuracy lookup for co-voters.
    """

    def __init__(self, qualification_truth: Mapping[TaskId, Label]) -> None:
        """``qualification_truth`` maps qualification task id → gold label."""
        self._qualification_truth = dict(qualification_truth)

    @property
    def qualification_tasks(self) -> set[TaskId]:
        return set(self._qualification_truth)

    def observed_for_answer(
        self,
        answer: Answer,
        task_votes: Iterable[Answer],
        consensus: Label,
        accuracy_of: AccuracyLookup,
    ) -> float:
        """Observed accuracy of a single answer.

        Qualification tasks short-circuit to exact 0/1 grading; consensus
        tasks evaluate Eq. (5) over all recorded votes.
        """
        truth = self._qualification_truth.get(answer.task_id)
        if truth is not None:
            return 1.0 if answer.label == truth else 0.0
        votes = [
            (vote.label, accuracy_of(vote.worker_id, vote.task_id))
            for vote in task_votes
        ]
        return consensus_observed_accuracy(answer.label, consensus, votes)

    def compute(
        self,
        worker_answers: Iterable[Answer],
        votes_by_task: Mapping[TaskId, list[Answer]],
        consensus_by_task: Mapping[TaskId, Label],
        accuracy_of: AccuracyLookup,
    ) -> dict[TaskId, float]:
        """Observed-accuracy vector ``q^w`` as a sparse dict.

        Only answers on globally completed tasks (present in
        ``consensus_by_task`` or among the qualification tasks) receive
        an entry; in-flight tasks are skipped, matching the paper's use
        of ``T^d`` only.
        """
        observed: dict[TaskId, float] = {}
        for answer in worker_answers:
            task_id = answer.task_id
            if task_id in self._qualification_truth:
                truth = self._qualification_truth[task_id]
                observed[task_id] = 1.0 if answer.label == truth else 0.0
                continue
            consensus = consensus_by_task.get(task_id)
            if consensus is None:
                continue  # task not globally completed yet
            observed[task_id] = self.observed_for_answer(
                answer,
                votes_by_task.get(task_id, [answer]),
                consensus,
                accuracy_of,
            )
        return observed
