"""Exact optimal microtask assignment (Definition 4; Appendix D.4).

The optimal assignment problem — pick a subset of ⟨task, top-worker-set⟩
candidates with pairwise-disjoint worker sets maximising the summed
worker accuracy — is NP-hard (Lemma 4: reduction from weighted k-set
packing).  The paper's Appendix D.4 compares the greedy Algorithm 3
against an enumeration-based optimum for small active-worker counts
(3–7 workers) and reports < 2% approximation error.

Two exact solvers are provided:

- :func:`enumerate_optimal` — depth-first enumeration with
  branch-and-bound pruning; faithful to the paper's "enumerate all
  feasible assignment schemes" but pruned so the Table 5 bench finishes.
- :func:`bitmask_optimal` — dynamic programming over worker subsets,
  exact and fast whenever the active worker pool is small (≤ ~20),
  which is exactly the regime of Appendix D.4.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.assigner import TopWorkerSet, scheme_value


def _validate(candidates: Sequence[TopWorkerSet]) -> list[TopWorkerSet]:
    out = [c for c in candidates if c.workers]
    for candidate in out:
        if len(candidate.worker_ids) != len(candidate.workers):
            raise ValueError(
                f"candidate for task {candidate.task_id} repeats a worker"
            )
    return out


def enumerate_optimal(
    candidates: Sequence[TopWorkerSet],
) -> tuple[float, list[TopWorkerSet]]:
    """Exhaustive search for the optimal scheme with B&B pruning.

    Candidates are sorted by descending value; at each node the residual
    upper bound (sum of remaining candidate values, ignoring conflicts)
    prunes branches that cannot beat the incumbent.

    Returns
    -------
    (value, scheme)
        Objective value and one optimal scheme (possibly empty).
    """
    cands = sorted(
        _validate(candidates),
        key=lambda c: (-c.sum_accuracy, c.task_id),
    )
    n = len(cands)
    # suffix_bound[i] = sum of values of candidates i..n-1
    suffix_bound = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_bound[i] = suffix_bound[i + 1] + cands[i].sum_accuracy

    best_value = 0.0
    best_scheme: list[TopWorkerSet] = []
    chosen: list[TopWorkerSet] = []

    def dfs(index: int, used: frozenset, value: float) -> None:
        nonlocal best_value, best_scheme
        if value > best_value:
            best_value = value
            best_scheme = list(chosen)
        if index >= n or value + suffix_bound[index] <= best_value:
            return
        candidate = cands[index]
        if not (candidate.worker_ids & used):
            chosen.append(candidate)
            dfs(
                index + 1,
                used | candidate.worker_ids,
                value + candidate.sum_accuracy,
            )
            chosen.pop()
        dfs(index + 1, used, value)

    dfs(0, frozenset(), 0.0)
    return best_value, best_scheme


def bitmask_optimal(
    candidates: Sequence[TopWorkerSet],
) -> tuple[float, list[TopWorkerSet]]:
    """Exact DP over worker subsets.

    State = set of busy workers (bitmask); for each candidate either
    skip it or, when its workers are free, take it.  Complexity
    O(|candidates| · 2^|workers|) — exact and practical for the small
    active pools of Appendix D.4.
    """
    cands = _validate(candidates)
    workers = sorted({w for c in cands for w in c.worker_ids})
    if len(workers) > 24:
        raise ValueError(
            f"bitmask solver supports ≤ 24 distinct workers, got "
            f"{len(workers)}; use enumerate_optimal"
        )
    index_of = {w: i for i, w in enumerate(workers)}
    masks = [
        sum(1 << index_of[w] for w in c.worker_ids) for c in cands
    ]

    # best[mask] = (value, chosen candidate indices) reachable with the
    # exact busy-set `mask`
    best: dict[int, tuple[float, tuple[int, ...]]] = {0: (0.0, ())}
    for idx, (candidate, mask) in enumerate(zip(cands, masks)):
        updates: dict[int, tuple[float, tuple[int, ...]]] = {}
        for busy, (value, picks) in best.items():
            if busy & mask:
                continue
            new_busy = busy | mask
            new_value = value + candidate.sum_accuracy
            incumbent = best.get(new_busy, updates.get(new_busy))
            if incumbent is None or new_value > incumbent[0]:
                updates[new_busy] = (new_value, picks + (idx,))
        for busy, entry in updates.items():
            incumbent = best.get(busy)
            if incumbent is None or entry[0] > incumbent[0]:
                best[busy] = entry

    value, picks = max(best.values(), key=lambda entry: entry[0])
    return value, [cands[i] for i in picks]


def approximation_error(
    candidates: Sequence[TopWorkerSet],
    greedy_scheme: Sequence[TopWorkerSet],
    solver: str = "bitmask",
) -> float:
    """Appendix D.4's error metric ``(OPT − APP) / OPT × 100%``.

    Returns 0 when the optimum is zero (empty instance).
    """
    if solver == "bitmask":
        opt, _ = bitmask_optimal(candidates)
    elif solver == "enumerate":
        opt, _ = enumerate_optimal(candidates)
    else:
        raise ValueError(f"unknown solver {solver!r}")
    app = scheme_value(greedy_scheme)
    if opt <= 0:
        return 0.0
    return (opt - app) / opt * 100.0
