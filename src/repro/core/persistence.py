"""Checkpointing a live iCrowd job to disk + the offline-basis cache.

A deployed iCrowd (the Appendix A web server) must survive restarts
mid-job: answers already paid for cannot be re-collected.  This module
serialises the full interaction state — answers, test answers, vote
tallies, consensus, warm-up grades, activity clocks — as versioned
JSON, and rebuilds an equivalent :class:`repro.core.ICrowd` from it.

It also hosts the **offline PPR basis cache**: the basis is a pure
function of ``(normalized matrix, damping, epsilon)``, so repeated
experiment/CLI runs over the same workload can skip Algorithm 1's
offline phase entirely.  Cache entries are ``.npz`` files holding the
exact CSR arrays of the basis, keyed by a SHA-256 content hash of the
three inputs; loads are bit-identical to the compute they replace.
Changing any of the three inputs changes the key (automatic
invalidation); stale entries are never wrong, only unused.

Accuracy estimates ARE persisted, and necessarily so: Eq. (5) grades a
worker's consensus answers using her co-voters' *current* estimates, so
the estimate cache is a fixed point of the interaction history, not a
pure function of the stored observations.  Recomputing estimates from
scratch after a restore would converge to a (slightly) different fixed
point and change subsequent assignments — the checkpoint-transparency
property test in ``tests/properties`` exists precisely to catch that.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import numpy as np
from scipy import sparse

from repro.core.config import ICrowdConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.framework import ICrowd
from repro.core.graph import SimilarityGraph
from repro.core.ppr import PPRBasis, ShardedBasis
from repro.core.qualification import WarmUpState
from repro.core.types import Answer, Label, TaskSet

#: Schema version of the checkpoint format.
CHECKPOINT_VERSION = 1

#: Schema version of the on-disk basis cache (baked into the key, so a
#: format change silently misses rather than mis-loads old entries).
BASIS_CACHE_VERSION = 1


# ----------------------------------------------------------------------
# offline PPR basis cache
# ----------------------------------------------------------------------
def basis_cache_key(
    normalized: sparse.csr_matrix, damping: float, epsilon: float
) -> str:
    """Content hash identifying one offline basis.

    Hashes the canonicalised CSR arrays of ``S'`` together with the
    damping and truncation epsilon — exactly the inputs the basis is a
    pure function of.  Two graphs with equal entries hash equally
    regardless of how their CSR structure was built.
    """
    matrix = normalized.tocsr().sorted_indices()
    digest = hashlib.sha256()
    digest.update(f"ppr-basis-v{BASIS_CACHE_VERSION}".encode())
    digest.update(np.int64(matrix.shape[0]).tobytes())
    digest.update(np.asarray(matrix.indptr, dtype=np.int64).tobytes())
    digest.update(np.asarray(matrix.indices, dtype=np.int64).tobytes())
    digest.update(np.asarray(matrix.data, dtype=np.float64).tobytes())
    digest.update(np.float64(damping).tobytes())
    digest.update(np.float64(epsilon).tobytes())
    return digest.hexdigest()


def basis_cache_path(
    cache_dir: str | pathlib.Path, key: str
) -> pathlib.Path:
    """File path of one cache entry (``ppr-basis-<key>.npz``)."""
    return pathlib.Path(cache_dir) / f"ppr-basis-{key}.npz"


def save_basis(
    basis: PPRBasis | ShardedBasis,
    cache_dir: str | pathlib.Path,
    key: str,
) -> pathlib.Path:
    """Persist a basis under ``key``; atomic against concurrent readers.

    Stores the raw CSR arrays uncompressed so a reload reproduces the
    basis bit-for-bit.  Sharded bases are stored in their whole-graph
    form (``.matrix`` re-assembles the blocks), so the cache format is
    shared: an unsharded run can consume a sharded run's entry and vice
    versa (:meth:`repro.core.ppr.ShardedBasis.from_global` re-blocks).
    """
    directory = pathlib.Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = basis_cache_path(directory, key)
    matrix = basis.matrix
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        np.savez(
            handle,
            indptr=matrix.indptr,
            indices=matrix.indices,
            data=matrix.data,
            shape=np.asarray(matrix.shape, dtype=np.int64),
        )
    os.replace(tmp, path)
    return path


def load_basis(
    cache_dir: str | pathlib.Path, key: str
) -> PPRBasis | None:
    """Load the cached basis for ``key``, or None on a cache miss."""
    path = basis_cache_path(cache_dir, key)
    if not path.exists():
        return None
    with np.load(path) as payload:
        matrix = sparse.csr_matrix(
            (payload["data"], payload["indices"], payload["indptr"]),
            shape=tuple(payload["shape"]),
        )
    return PPRBasis(matrix)


def _answers_payload(answers: dict) -> dict:
    return {
        worker: [[a.task_id, int(a.label), a.seq] for a in worker_answers]
        for worker, worker_answers in answers.items()
    }


def _answers_restore(payload: dict, worker: str) -> list[Answer]:
    return [
        Answer(
            task_id=int(task_id),
            worker_id=worker,
            label=Label(int(label)),
            seq=int(seq),
        )
        for task_id, label, seq in payload
    ]


def checkpoint_state(framework: ICrowd) -> dict:
    """Snapshot a framework's interaction state as a JSON-able dict."""
    warmup_states = {}
    for worker, state in framework.warmup._states.items():
        warmup_states[worker] = {
            "pending": list(state.pending),
            "graded": {str(t): ok for t, ok in state.graded.items()},
            "rejected": state.rejected,
        }
    return {
        "version": CHECKPOINT_VERSION,
        "qualification_tasks": list(framework.qualification_tasks),
        "clock": framework._clock,
        "seq": framework._seq,
        "last_seen": dict(framework._last_seen),
        "answers": _answers_payload(framework._answers),
        "test_answers": _answers_payload(framework._test_answers),
        "consensus": {
            str(t): int(label) for t, label in framework._consensus.items()
        },
        "pending": [
            [worker, task, issued]
            for (worker, task), issued in framework._pending.items()
        ],
        "estimates": {
            worker: [float(v) for v in vector]
            for worker, vector in framework._estimates.items()
        },
        "dirty": sorted(framework._dirty),
        "states": {
            str(t): {
                "assigned": sorted(s.assigned_workers),
                "tested": sorted(s.tested_workers),
                "completed": s.completed,
            }
            for t, s in framework._states.items()
        },
        "warmup": warmup_states,
    }


def save_checkpoint(framework: ICrowd, path: str | pathlib.Path) -> None:
    """Write the framework's checkpoint JSON to ``path``."""
    payload = checkpoint_state(framework)
    pathlib.Path(path).write_text(json.dumps(payload))


def restore_state(framework: ICrowd, payload: dict) -> ICrowd:
    """Load a checkpoint dict into a freshly constructed framework.

    The framework must have been built with the same tasks, graph and
    qualification set the checkpoint was taken from.
    """
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    saved_qualification = list(payload["qualification_tasks"])
    if saved_qualification != list(framework.qualification_tasks):
        raise ValueError(
            "checkpoint qualification set does not match the framework's"
        )
    framework._clock = int(payload["clock"])
    framework._seq = int(payload["seq"])
    framework._last_seen = {
        w: int(v) for w, v in payload["last_seen"].items()
    }
    framework._answers = {
        worker: _answers_restore(entries, worker)
        for worker, entries in payload["answers"].items()
    }
    framework._test_answers = {
        worker: _answers_restore(entries, worker)
        for worker, entries in payload["test_answers"].items()
    }
    framework._consensus = {
        int(t): Label(int(label))
        for t, label in payload["consensus"].items()
    }
    framework._pending = {
        (worker, int(task)): int(issued)
        for worker, task, issued in payload.get("pending", [])
    }
    for t, entry in payload["states"].items():
        state = framework._states[int(t)]
        state.assigned_workers = set(entry["assigned"])
        state.tested_workers = set(entry["tested"])
        state.completed = bool(entry["completed"])
    framework.warmup._states = {
        worker: WarmUpState(
            pending=[int(t) for t in entry["pending"]],
            graded={int(t): bool(ok) for t, ok in entry["graded"].items()},
            rejected=bool(entry["rejected"]),
        )
        for worker, entry in payload["warmup"].items()
    }
    # rebuild vote tallies from the persisted answers
    for vote_state in framework._votes.values():
        vote_state.answers.clear()
    flat = [
        answer
        for worker_answers in framework._answers.values()
        for answer in worker_answers
    ]
    flat.sort(key=lambda a: a.seq)
    qualification = set(framework.warmup.qualification_truth)
    for answer in flat:
        if answer.task_id in qualification:
            continue
        framework._votes[answer.task_id].answers.append(answer)
    # restore the estimate cache exactly (see the module docstring for
    # why estimates are path-dependent state, not derived state)
    import numpy as np

    framework._estimates = {
        worker: np.array(vector, dtype=np.float64)
        for worker, vector in payload.get("estimates", {}).items()
    }
    if "dirty" in payload:
        framework._dirty = set(payload["dirty"])
    else:
        framework._dirty = set(framework._answers) | set(
            framework._test_answers
        )
    # any scheme cached before the restore was computed against the old
    # state — advance the epoch and drop it
    framework._assign_epoch += 1
    framework.assigner.invalidate()
    return framework


def load_checkpoint(
    tasks: TaskSet,
    config: ICrowdConfig,
    path: str | pathlib.Path,
    graph: SimilarityGraph | None = None,
    estimator: AccuracyEstimator | None = None,
) -> ICrowd:
    """Reconstruct a framework from a checkpoint file.

    ``tasks`` / ``config`` / ``graph`` must match the original job (the
    checkpoint stores interaction state, not the workload).
    """
    payload = json.loads(pathlib.Path(path).read_text())
    framework = ICrowd(
        tasks,
        config,
        graph=graph,
        qualification_tasks=[
            int(t) for t in payload["qualification_tasks"]
        ],
        estimator=estimator,
    )
    return restore_state(framework, payload)
