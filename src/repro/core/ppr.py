"""Personalized-PageRank solvers for the estimation model (Section 3.1).

Equation (2) of the paper is solved in closed form (Lemma 1) by

    p* = (alpha / (1 + alpha)) · (I - S'/(1 + alpha))^{-1} · q

which Equation (4) computes iteratively:

    p ← c · S' p + (1 - c) · q,      c = 1 / (1 + alpha).

Two solvers are provided:

- :func:`power_iteration` — the paper's iteration, vectorised over the
  sparse normalised matrix; exact up to a tolerance.
- :func:`forward_push` — a localized push solver (Andersen–Chung–Lang
  style) that only touches the neighbourhood of the non-zero entries of
  ``q``; this is what makes per-task basis vectors affordable on the
  Figure 10 scalability workload.

Lemma 3's linearity property is realised by :class:`PPRBasis`: the
converged vector for every unit restart ``q = e_i`` is precomputed
offline (Algorithm 1's offline phase) and the online estimate is the
``q``-weighted sum of basis rows, an O(|T|) combination.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy import sparse


def power_iteration(
    normalized: sparse.spmatrix,
    q: np.ndarray,
    damping: float,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> np.ndarray:
    """Iterate Eq. (4) to convergence.

    Parameters
    ----------
    normalized:
        ``S' = D^{-1/2} S D^{-1/2}`` (spectral radius ≤ 1).
    q:
        Observed-accuracy restart vector.
    damping:
        Follow probability ``c = 1 / (1 + alpha)`` in (0, 1).
    tol:
        L∞ convergence tolerance between successive iterates.
    max_iter:
        Iteration cap; the geometric rate ``c`` makes this generous.

    Returns
    -------
    numpy.ndarray
        The converged estimate ``p*``.
    """
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    q = np.asarray(q, dtype=np.float64)
    if q.shape != (normalized.shape[0],):
        raise ValueError(
            f"q has shape {q.shape}, expected ({normalized.shape[0]},)"
        )
    restart = (1.0 - damping) * q
    p = q.copy()
    for _ in range(max_iter):
        nxt = damping * (normalized @ p) + restart
        if np.max(np.abs(nxt - p)) < tol:
            return nxt
        p = nxt
    return p


def solve_exact(
    normalized: sparse.spmatrix, q: np.ndarray, damping: float
) -> np.ndarray:
    """Direct solve of Lemma 1's closed form (for tests / small graphs).

    Solves ``(I - c S') p = (1 - c) q`` with a sparse LU factorisation.
    """
    n = normalized.shape[0]
    system = sparse.identity(n, format="csc") - damping * normalized.tocsc()
    return sparse.linalg.spsolve(system, (1.0 - damping) * np.asarray(q))


def forward_push(
    normalized: sparse.csr_matrix,
    source: int,
    damping: float,
    epsilon: float = 1e-7,
    max_pushes: int | None = None,
) -> dict[int, float]:
    """Localized solve of Eq. (4) for a unit restart ``q = e_source``.

    Maintains the push invariant ``p* = p + (1-c) Σ_k (cS')^k r``; a node
    is pushed when its residual exceeds ``epsilon``, so only the
    neighbourhood actually reached by probability mass is touched.  With
    spectral radius ≤ 1 and ``c < 1`` the residual decays geometrically.

    Returns
    -------
    dict
        Sparse estimate mapping node → value (entries ≥ epsilon scale).
    """
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    n = normalized.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")

    indptr = normalized.indptr
    indices = normalized.indices
    data = normalized.data

    estimate: dict[int, float] = {}
    residual: dict[int, float] = {source: 1.0}
    queue: deque[int] = deque([source])
    queued: set[int] = {source}
    pushes = 0
    limit = max_pushes if max_pushes is not None else 200 * n + 1000

    while queue:
        u = queue.popleft()
        queued.discard(u)
        r_u = residual.get(u, 0.0)
        if abs(r_u) < epsilon:
            continue
        residual[u] = 0.0
        estimate[u] = estimate.get(u, 0.0) + (1.0 - damping) * r_u
        start, end = indptr[u], indptr[u + 1]
        for idx in range(start, end):
            v = int(indices[idx])
            delta = damping * data[idx] * r_u
            new_r = residual.get(v, 0.0) + delta
            residual[v] = new_r
            if abs(new_r) >= epsilon and v not in queued:
                queue.append(v)
                queued.add(v)
        pushes += 1
        if pushes >= limit:
            break
    return estimate


class PPRBasis:
    """Offline per-task PPR basis enabling O(|T|) online estimation.

    Algorithm 1's offline phase: for every task ``t_i`` compute the
    converged vector ``p_{t_i}`` of Eq. (4) under the unit restart
    ``q_{t_i} = e_i``.  The online phase (Lemma 3) then evaluates
    ``p* = Σ_i q_i · p_{t_i}`` — a sparse row combination.

    Basis rows are truncated at ``epsilon`` to bound memory; the
    truncation error of the combined estimate is at most
    ``epsilon · Σ|q_i| · n_nonzero`` and is validated against the exact
    solver in the test suite.
    """

    def __init__(self, matrix: sparse.csr_matrix):
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("basis must be square (one row per task)")
        self._matrix = matrix.tocsr()

    #: Graphs up to this many nodes use the batched dense iteration
    #: under ``method="auto"``; larger graphs use localized push.
    AUTO_BATCH_LIMIT = 4096

    @classmethod
    def compute(
        cls,
        normalized: sparse.csr_matrix,
        damping: float,
        epsilon: float = 1e-6,
        method: str = "auto",
        tol: float = 1e-8,
        max_iter: int = 200,
    ) -> "PPRBasis":
        """Precompute all basis rows.

        Parameters
        ----------
        normalized:
            ``S'`` of the similarity graph.
        damping:
            ``1 / (1 + alpha)``.
        epsilon:
            Truncation threshold for stored entries (0 keeps all).
        method:
            ``"auto"`` (default) picks ``"batch"`` for graphs up to
            :data:`AUTO_BATCH_LIMIT` nodes and ``"push"`` beyond;
            ``"batch"`` iterates Eq. (4) on all unit restarts at once
            (one dense n×n iteration); ``"push"`` runs the localized
            solver per row; ``"power"`` runs the dense iteration per
            row (slow; kept as the test reference).
        """
        n = normalized.shape[0]
        if method == "auto":
            method = "batch" if n <= cls.AUTO_BATCH_LIMIT else "push"
        if method == "batch":
            basis = np.eye(n)
            restart = (1.0 - damping) * np.eye(n)
            for _ in range(max_iter):
                nxt = damping * (normalized @ basis) + restart
                if np.max(np.abs(nxt - basis)) < tol:
                    basis = nxt
                    break
                basis = nxt
            if epsilon > 0:
                basis[np.abs(basis) < epsilon] = 0.0
            # rows of the basis are p_{t_i}; the iteration above tracks
            # columns (restart e_i per column), and S' is symmetric so
            # the matrix is symmetric too — transpose for clarity.
            return cls(sparse.csr_matrix(basis.T))
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        if method == "push":
            push_eps = max(epsilon * 0.1, 1e-12)
            for i in range(n):
                entries = forward_push(
                    normalized, i, damping, epsilon=push_eps
                )
                for j, value in entries.items():
                    if epsilon == 0 or abs(value) >= epsilon:
                        rows.append(i)
                        cols.append(j)
                        vals.append(value)
        elif method == "power":
            for i in range(n):
                unit = np.zeros(n)
                unit[i] = 1.0
                vec = power_iteration(
                    normalized, unit, damping, tol=tol, max_iter=max_iter
                )
                keep = (
                    np.flatnonzero(np.abs(vec) >= epsilon)
                    if epsilon > 0
                    else np.flatnonzero(vec)
                )
                rows.extend([i] * len(keep))
                cols.extend(int(j) for j in keep)
                vals.extend(float(vec[j]) for j in keep)
        else:
            raise ValueError(f"unknown basis method {method!r}")
        matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))
        return cls(matrix)

    @property
    def num_tasks(self) -> int:
        return self._matrix.shape[0]

    @property
    def nnz(self) -> int:
        """Stored non-zeros (memory proxy for the truncation ablation)."""
        return self._matrix.nnz

    def _row_slice(self, task_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of one basis row without copying
        the matrix structure (scipy's ``getrow`` builds a whole new CSR
        per call, which dominates the online-estimation profile)."""
        indptr = self._matrix.indptr
        start, end = indptr[task_id], indptr[task_id + 1]
        return (
            self._matrix.indices[start:end],
            self._matrix.data[start:end],
        )

    def row(self, task_id: int) -> np.ndarray:
        """Dense basis vector ``p_{t_i}``."""
        out = np.zeros(self.num_tasks)
        cols, vals = self._row_slice(task_id)
        out[cols] = vals
        return out

    def combine(self, q: np.ndarray | dict[int, float]) -> np.ndarray:
        """Online estimation: ``p* = Σ q_i · p_{t_i}`` (Lemma 3).

        Accepts either a dense restart vector or a sparse dict of
        observed accuracies keyed by task id.
        """
        n = self.num_tasks
        if isinstance(q, dict):
            out = np.zeros(n)
            for task_id, weight in q.items():
                if weight == 0.0:
                    continue
                cols, vals = self._row_slice(task_id)
                out[cols] += weight * vals
            return out
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (n,):
            raise ValueError(f"q has shape {q.shape}, expected ({n},)")
        return np.asarray(q @ self._matrix).ravel()
