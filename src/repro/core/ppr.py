"""Personalized-PageRank solvers for the estimation model (Section 3.1).

Equation (2) of the paper is solved in closed form (Lemma 1) by

    p* = (alpha / (1 + alpha)) · (I - S'/(1 + alpha))^{-1} · q

which Equation (4) computes iteratively:

    p ← c · S' p + (1 - c) · q,      c = 1 / (1 + alpha).

Solvers provided:

- :func:`power_iteration` — the paper's iteration, vectorised over the
  sparse normalised matrix; exact up to a tolerance.
- :func:`forward_push` — a localized push solver (Andersen–Chung–Lang
  style) on flat numpy buffers (see :class:`PushKernel`); this is what
  makes per-task basis vectors affordable on the Figure 10 scalability
  workload.
- :func:`forward_push_reference` — the original dict-and-deque push,
  kept as the differential-test oracle for the vectorised kernel.

Lemma 3's linearity property is realised by :class:`PPRBasis`: the
converged vector for every unit restart ``q = e_i`` is precomputed
offline (Algorithm 1's offline phase) and the online estimate is the
``q``-weighted sum of basis rows, an O(|T|) combination.  The offline
phase can run serially (``method="push"``) or sharded over a process
pool (``method="parallel-push"``); both produce identical bases.

The same linearity powers **incremental maintenance** for unbounded
task streams (:meth:`PPRBasis.repair` / :meth:`ShardedBasis.repair`):
when the graph gains tasks or edges, an old solution ``p`` is still a
valid *partial* solution against the new matrix — the push invariant
``p* = p + (1-c)(I - cS')^{-1} r`` holds exactly for the residual
``r = e_i - (p - c·S'p)/(1-c)``.  Seeding :meth:`PushKernel.resume`
with ``(p, r)`` and draining to the usual ``epsilon`` invariant repairs
a perturbed row at O(Δ) cost instead of a cold re-solve; rows whose
support the change never reaches keep satisfying the invariant and are
carried over untouched.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, cast

import numpy as np
from scipy import sparse

from repro.obs.metrics import MASS_BUCKETS, NULL_RECORDER, Recorder

if TYPE_CHECKING:
    from repro.core.indexes import ShardIndex


class ConvergenceWarning(UserWarning):
    """A solver hit its work limit before driving residuals below
    tolerance; the returned estimate is truncated."""


@dataclass
class PushStats:
    """Work/quality counters of one forward-push solve.

    Pass a fresh instance via the ``stats`` parameter of
    :func:`forward_push` / :func:`forward_push_reference` (or read the
    one returned by :meth:`PushKernel.push`) to observe how much work
    the solve did and how much residual mass was left behind.
    """

    #: Node relaxations performed (one per pushed node per round).
    pushes: int = 0
    #: Total |residual| mass remaining at termination.
    residual_norm: float = 0.0
    #: True when the ``max_pushes`` limit cut the solve short.
    truncated: bool = False


@dataclass
class RepairStats:
    """Work summary of one incremental basis repair.

    Pass a fresh instance via the ``stats`` parameter of
    :meth:`PPRBasis.repair` / :meth:`ShardedBasis.repair` to observe
    how much of the basis the change actually perturbed.
    """

    #: Existing rows re-pushed because the change reached their support.
    repaired_rows: int = 0
    #: Rows solved cold for tasks added since the basis was built.
    new_rows: int = 0
    #: Rows carried over untouched (their push invariant still holds).
    reused_rows: int = 0
    #: Node relaxations across all repair + cold pushes.
    pushes: int = 0


def power_iteration(
    normalized: sparse.spmatrix,
    q: np.ndarray,
    damping: float,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> np.ndarray:
    """Iterate Eq. (4) to convergence.

    Parameters
    ----------
    normalized:
        ``S' = D^{-1/2} S D^{-1/2}`` (spectral radius ≤ 1).
    q:
        Observed-accuracy restart vector.
    damping:
        Follow probability ``c = 1 / (1 + alpha)`` in (0, 1).
    tol:
        L∞ convergence tolerance between successive iterates.
    max_iter:
        Iteration cap; the geometric rate ``c`` makes this generous.

    Returns
    -------
    numpy.ndarray
        The converged estimate ``p*``.
    """
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    q = np.asarray(q, dtype=np.float64)
    if q.shape != (normalized.shape[0],):
        raise ValueError(
            f"q has shape {q.shape}, expected ({normalized.shape[0]},)"
        )
    restart = (1.0 - damping) * q
    p = q.copy()
    for _ in range(max_iter):
        nxt = damping * (normalized @ p) + restart
        if np.max(np.abs(nxt - p)) < tol:
            return nxt
        p = nxt
    return p


def solve_exact(
    normalized: sparse.spmatrix, q: np.ndarray, damping: float
) -> np.ndarray:
    """Direct solve of Lemma 1's closed form (for tests / small graphs).

    Solves ``(I - c S') p = (1 - c) q`` with a sparse LU factorisation.
    """
    n = normalized.shape[0]
    system = sparse.identity(n, format="csc") - damping * normalized.tocsc()
    return sparse.linalg.spsolve(system, (1.0 - damping) * np.asarray(q))


def _default_push_limit(n: int) -> int:
    return 200 * n + 1000


class PushKernel:
    """Reusable flat-array workspace for localized forward push.

    Holds dense float64 residual/estimate buffers and the CSR arrays of
    ``S'`` so that consecutive pushes (the offline basis loop) allocate
    nothing per source.  The inner loop is fully vectorised: each round
    relaxes the whole frontier at once with gather/scatter numpy ops,
    and switches to scipy's C sparse matvec once the frontier covers a
    sizeable fraction of the graph (the dense regime of small epsilon
    on connected graphs), which is where the per-node queue of the
    reference implementation degenerates.

    Buffers are reset after every push by touching only the coordinates
    the push reached, so the amortised cost stays neighbourhood-local.
    """

    #: Frontier size (as a fraction denominator of n) above which the
    #: push switches from gather/scatter to full sparse matvec rounds.
    DENSE_SWITCH_DIVISOR = 16

    def __init__(
        self,
        normalized: sparse.csr_matrix,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        matrix = normalized.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("normalized matrix must be square")
        self._matrix = matrix
        self._recorder = recorder
        self.n = matrix.shape[0]
        self._indptr = matrix.indptr
        self._indices = matrix.indices
        self._data = matrix.data
        self._residual = np.zeros(self.n, dtype=np.float64)
        self._estimate = np.zeros(self.n, dtype=np.float64)
        self._dense_cut = max(64, self.n // self.DENSE_SWITCH_DIVISOR)

    def push(
        self,
        source: int,
        damping: float,
        epsilon: float = 1e-7,
        max_pushes: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, PushStats]:
        """Localized solve of Eq. (4) for the unit restart ``q = e_source``.

        Returns ``(nodes, values, stats)`` where ``nodes`` is the sorted
        array of coordinates holding estimate mass and ``values`` their
        estimates.  Warns :class:`ConvergenceWarning` when ``max_pushes``
        truncates the solve.
        """
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        n = self.n
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range")
        limit = max_pushes if max_pushes is not None else _default_push_limit(n)
        self._residual[source] = 1.0
        frontier = np.array([source], dtype=np.int64)
        return self._drain(
            frontier, [frontier], damping, epsilon, limit,
            f"source {source}",
        )

    def resume(
        self,
        estimate_nodes: np.ndarray,
        estimate_values: np.ndarray,
        residual_nodes: np.ndarray,
        residual_values: np.ndarray,
        damping: float,
        epsilon: float = 1e-7,
        max_pushes: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, PushStats]:
        """Continue a push from an explicit ``(estimate, residual)`` seed.

        The repair primitive of incremental basis maintenance: the push
        invariant ``p* = p + (1-c)(I - cS')^{-1} r`` holds for *any*
        seeded pair, so an old (possibly truncated) solution plus the
        residual it misses against a changed matrix drains to the same
        ``epsilon`` invariant as a cold :meth:`push` — at the cost of
        only the perturbed mass.  Node arrays must be deduplicated
        (canonical CSR row slices are); values may be negative (mass
        that the change *removed*).
        """
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        limit = (
            max_pushes if max_pushes is not None
            else _default_push_limit(self.n)
        )
        est_nodes = np.asarray(estimate_nodes, dtype=np.int64)
        res_nodes = np.asarray(residual_nodes, dtype=np.int64)
        self._estimate[est_nodes] = np.asarray(
            estimate_values, dtype=np.float64
        )
        self._residual[res_nodes] = np.asarray(
            residual_values, dtype=np.float64
        )
        frontier = res_nodes[np.abs(self._residual[res_nodes]) >= epsilon]
        return self._drain(
            frontier, [est_nodes, res_nodes], damping, epsilon, limit,
            "resumed seed",
        )

    def _drain(
        self,
        frontier: np.ndarray,
        touched: list[np.ndarray],
        damping: float,
        epsilon: float,
        limit: int,
        origin: str,
    ) -> tuple[np.ndarray, np.ndarray, PushStats]:
        """Shared push loop: relax residuals seeded in the workspace
        buffers until all sit below ``epsilon`` (or ``limit`` cuts the
        solve short), then collect the estimate and reset the buffers.
        """
        c = damping
        residual = self._residual
        estimate = self._estimate
        indptr = self._indptr
        indices = self._indices
        data = self._data
        pushes = 0
        dense = False
        truncated = False
        while True:
            if not dense and frontier.size > self._dense_cut:
                dense = True
            if dense:
                mask = np.abs(residual) >= epsilon
                count = int(mask.sum())
                if not count:
                    break
                r_push = np.where(mask, residual, 0.0)
                estimate += (1.0 - c) * r_push
                residual -= r_push
                residual += c * (self._matrix @ r_push)
                pushes += count
                if pushes >= limit and bool(
                    (np.abs(residual) >= epsilon).any()
                ):
                    truncated = True
                    break
                continue
            if not frontier.size:
                break
            r_front = residual[frontier]
            estimate[frontier] += (1.0 - c) * r_front
            residual[frontier] = 0.0
            pushes += frontier.size
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total:
                # vectorised multi-range gather: the concatenation of
                # range(starts[k], starts[k] + counts[k]) over the frontier
                cum = np.cumsum(counts)
                offsets = np.arange(total) - np.repeat(cum - counts, counts)
                idx = np.repeat(starts, counts) + offsets
                neighbors = indices[idx]
                contrib = c * data[idx] * np.repeat(r_front, counts)
                np.add.at(residual, neighbors, contrib)
                candidates = np.unique(neighbors)
                touched.append(candidates)
                frontier = candidates[
                    np.abs(residual[candidates]) >= epsilon
                ]
            else:
                frontier = frontier[:0]
            if pushes >= limit and frontier.size:
                truncated = True
                break

        if dense:
            residual_norm = float(np.abs(residual).sum())
            nodes = np.flatnonzero(estimate)
            values = estimate[nodes].copy()
            residual[:] = 0.0
            estimate[:] = 0.0
        else:
            reached = np.unique(np.concatenate(touched))
            residual_norm = float(np.abs(residual[reached]).sum())
            # repro-lint: disable=RL004 -- exact-zero sparsity filter
            nodes = reached[estimate[reached] != 0.0]
            values = estimate[nodes].copy()
            residual[reached] = 0.0
            estimate[reached] = 0.0
        stats = PushStats(
            pushes=pushes, residual_norm=residual_norm, truncated=truncated
        )
        # one aggregate recording per solve keeps the inner loop clean
        recorder = self._recorder
        recorder.counter(
            "repro_ppr_push_solves_total",
            "Forward-push solves completed.",
        ).inc()
        recorder.counter(
            "repro_ppr_pushes_total",
            "Node relaxations across all forward-push solves.",
        ).inc(pushes)
        recorder.histogram(
            "repro_ppr_push_residual_mass",
            "Residual |r| mass left behind at push termination.",
            buckets=MASS_BUCKETS,
        ).observe(residual_norm)
        if truncated:
            recorder.counter(
                "repro_ppr_push_truncated_total",
                "Solves cut short by the max_pushes work limit.",
            ).inc()
            warnings.warn(
                f"forward push from {origin} truncated after "
                f"{pushes} pushes with residual mass "
                f"{residual_norm:.3g} >= epsilon={epsilon:g}; the "
                f"estimate is partial (raise max_pushes or epsilon)",
                ConvergenceWarning,
                stacklevel=3,
            )
        return nodes, values, stats


def forward_push(
    normalized: sparse.csr_matrix,
    source: int,
    damping: float,
    epsilon: float = 1e-7,
    max_pushes: int | None = None,
    kernel: PushKernel | None = None,
    stats: PushStats | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> dict[int, float]:
    """Localized solve of Eq. (4) for a unit restart ``q = e_source``.

    Vectorised implementation (see :class:`PushKernel`); pass a shared
    ``kernel`` built on the same matrix to reuse its buffers across
    calls, and a :class:`PushStats` instance via ``stats`` to observe
    push counts and leftover residual mass.  ``recorder`` feeds the
    per-solve counters when no shared kernel is supplied (a shared
    kernel records on its own recorder).  Warns
    :class:`ConvergenceWarning` when ``max_pushes`` truncates the solve.

    Returns
    -------
    dict
        Sparse estimate mapping node → value (entries ≥ epsilon scale).
    """
    if kernel is None:
        kernel = PushKernel(normalized, recorder=recorder)
    elif kernel.n != normalized.shape[0]:
        raise ValueError("kernel was built on a different matrix size")
    nodes, values, push_stats = kernel.push(
        source, damping, epsilon=epsilon, max_pushes=max_pushes
    )
    if stats is not None:
        stats.pushes = push_stats.pushes
        stats.residual_norm = push_stats.residual_norm
        stats.truncated = push_stats.truncated
    return {
        int(node): float(value)
        for node, value in zip(nodes.tolist(), values.tolist())
    }


def forward_push_reference(
    normalized: sparse.csr_matrix,
    source: int,
    damping: float,
    epsilon: float = 1e-7,
    max_pushes: int | None = None,
    stats: PushStats | None = None,
) -> dict[int, float]:
    """Original dict-and-deque forward push (differential-test oracle).

    Maintains the push invariant ``p* = p + (1-c) Σ_k (cS')^k r``; a node
    is pushed when its residual exceeds ``epsilon``, so only the
    neighbourhood actually reached by probability mass is touched.  With
    spectral radius ≤ 1 and ``c < 1`` the residual decays geometrically.

    Returns
    -------
    dict
        Sparse estimate mapping node → value (entries ≥ epsilon scale).
    """
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    n = normalized.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")

    indptr = normalized.indptr
    indices = normalized.indices
    data = normalized.data

    estimate: dict[int, float] = {}
    residual: dict[int, float] = {source: 1.0}
    queue: deque[int] = deque([source])
    queued: set[int] = {source}
    pushes = 0
    truncated = False
    limit = max_pushes if max_pushes is not None else _default_push_limit(n)

    while queue:
        u = queue.popleft()
        queued.discard(u)
        r_u = residual.get(u, 0.0)
        if abs(r_u) < epsilon:
            continue
        residual[u] = 0.0
        estimate[u] = estimate.get(u, 0.0) + (1.0 - damping) * r_u
        start, end = indptr[u], indptr[u + 1]
        for idx in range(start, end):
            v = int(indices[idx])
            delta = damping * data[idx] * r_u
            new_r = residual.get(v, 0.0) + delta
            residual[v] = new_r
            if abs(new_r) >= epsilon and v not in queued:
                queue.append(v)
                queued.add(v)
        pushes += 1
        if pushes >= limit:
            truncated = bool(queue)
            break
    residual_norm = sum(abs(r) for r in residual.values())
    if stats is not None:
        stats.pushes = pushes
        stats.residual_norm = residual_norm
        stats.truncated = truncated
    if truncated:
        warnings.warn(
            f"forward push from source {source} truncated after {pushes} "
            f"pushes with residual mass {residual_norm:.3g} >= "
            f"epsilon={epsilon:g}; the estimate is partial (raise "
            f"max_pushes or epsilon)",
            ConvergenceWarning,
            stacklevel=2,
        )
    return estimate


# ----------------------------------------------------------------------
# parallel basis construction (shared-memory pool, nnz-sized chunks)
# ----------------------------------------------------------------------
#: Below these input sizes a parallel basis request is routed to the
#: serial kernel: pool start-up plus result IPC costs more than the
#: solve itself.  Both bounds must be cleared to go parallel (override
#: with ``force_parallel=True``); the routing decision is observable
#: via the ``repro_ppr_parallel_fallback_total`` counter.
PARALLEL_MIN_TASKS = 2048
PARALLEL_MIN_NNZ = 100_000

#: Work units per pool worker: a few chunks per worker lets stragglers
#: balance out without shrinking chunks below the IPC break-even size.
_CHUNKS_PER_WORKER = 4

#: Minimum transition-matrix nnz covered by one work unit; chunks are
#: sized by the nnz their rows touch (push work scales with traversed
#: edges, not with row count) and never cut finer than this.
_MIN_CHUNK_NNZ = 10_000

#: Per-process state installed by :func:`_pool_initializer`: the
#: shared-memory segments (kept referenced so the attached numpy views
#: stay valid), the kernel built on them, and the solve parameters.
_POOL_STATE: dict[str, object] = {}


@dataclass(frozen=True)
class _SharedArraySpec:
    """Name + layout of one numpy array published via shared memory."""

    name: str
    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True)
class _SharedCSRSpec:
    """Picklable handle to a CSR matrix living in shared memory."""

    shape: tuple[int, int]
    data: _SharedArraySpec
    indices: _SharedArraySpec
    indptr: _SharedArraySpec


class _SharedCSRPublisher:
    """Publish a CSR matrix's arrays once via POSIX shared memory.

    The parent copies ``data``/``indices``/``indptr`` into three
    shared-memory segments before the pool starts; every worker then
    attaches zero-copy views in its initializer instead of receiving a
    pickled matrix per chunk.  The parent owns the segment lifetime —
    call :meth:`close` (idempotent) once the pool has shut down.
    """

    def __init__(
        self,
        matrix: sparse.csr_matrix,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self._recorder = recorder
        self._segments: list[shared_memory.SharedMemory] = []
        specs: list[_SharedArraySpec] = []
        try:
            for array in (matrix.data, matrix.indices, matrix.indptr):
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                # own the segment before anything that can raise, so a
                # partial publish is torn down by the except below
                self._segments.append(segment)
                view: np.ndarray = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[:] = array
                specs.append(
                    _SharedArraySpec(
                        segment.name, array.dtype.str, array.shape
                    )
                )
        except BaseException:
            self.close()
            raise
        self.spec = _SharedCSRSpec(
            shape=matrix.shape,
            data=specs[0],
            indices=specs[1],
            indptr=specs[2],
        )

    def close(self) -> None:
        """Release and unlink every segment (safe to call twice).

        Each segment is torn down independently: one failing
        ``close()``/``unlink()`` cannot skip the remaining segments.
        Failures are counted on ``repro_ppr_shm_unlink_errors_total``
        (each one is a leak candidate the OS must reclaim).
        """
        segments, self._segments = self._segments, []
        errors = 0
        for segment in segments:
            try:
                segment.close()
            except OSError:
                errors += 1
            try:
                segment.unlink()
            except OSError:
                errors += 1
        if errors:
            self._recorder.counter(
                "repro_ppr_shm_unlink_errors_total",
                "Shared-memory segment close()/unlink() failures during "
                "publisher teardown (leak candidates).",
            ).inc(errors)


def _noop_register(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` while workers attach
    parent-owned segments (registration would race the parent's own
    register/unregister pair at unlink time)."""


def _attach(
    specs: Sequence[_SharedArraySpec],
) -> tuple[list[np.ndarray], list[shared_memory.SharedMemory]]:
    """Attach every published segment in ``specs`` as a zero-copy view.

    The resource-tracker monkeypatch (see :func:`_noop_register`) spans
    all attaches and is restored in a ``finally`` so a failing attach
    cannot leave the tracker permanently patched; segments attached
    before a failure are closed before the error propagates, so a
    partially initialised worker holds no dangling mappings.
    """
    arrays: list[np.ndarray] = []
    segments: list[shared_memory.SharedMemory] = []
    original_register = resource_tracker.register
    resource_tracker.register = _noop_register  # type: ignore[assignment]
    try:
        for spec in specs:
            segment = shared_memory.SharedMemory(name=spec.name)
            segments.append(segment)
            array: np.ndarray = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
            )
            arrays.append(array)
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:
                pass
        raise
    finally:
        resource_tracker.register = original_register  # type: ignore[assignment]
    return arrays, segments


def _pool_initializer(
    spec: _SharedCSRSpec,
    damping: float,
    push_epsilon: float,
    epsilon: float,
) -> None:
    """Attach the shared transition matrix and build this worker's
    kernel once; work units then carry only their source ids."""
    (data, indices, indptr), segments = _attach(
        (spec.data, spec.indices, spec.indptr)
    )
    matrix = sparse.csr_matrix(
        (data, indices, indptr), shape=spec.shape, copy=False
    )
    _POOL_STATE["segments"] = tuple(segments)
    _POOL_STATE["kernel"] = PushKernel(matrix)
    _POOL_STATE["params"] = (damping, push_epsilon, epsilon)


def _pool_push_unit(
    unit: tuple[int, np.ndarray],
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    unit_id, sources = unit
    kernel = cast(PushKernel, _POOL_STATE["kernel"])
    damping, push_epsilon, epsilon = cast(
        "tuple[float, float, float]", _POOL_STATE["params"]
    )
    counts, cols, vals = push_sources(
        kernel, sources, damping, push_epsilon, epsilon
    )
    return unit_id, counts, cols, vals


def basis_push_epsilon(epsilon: float) -> float:
    """Push tolerance used for a basis truncated at ``epsilon``: one
    decade tighter, so truncation (not solver error) dominates."""
    return max(epsilon * 0.1, 1e-12)


def push_sources(
    kernel: PushKernel,
    sources: Sequence[int] | np.ndarray | range,
    damping: float,
    push_epsilon: float,
    epsilon: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Push every source in ``sources`` and pack the surviving entries.

    Returns per-row entry counts plus the concatenated column/value
    arrays — the raw CSR building blocks — without ever materialising
    per-entry Python objects.  Sources may be any id sequence (a
    contiguous range or a shard's sorted task array).
    """
    counts = np.zeros(len(sources), dtype=np.int64)
    col_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for offset, source in enumerate(sources):
        nodes, values, _ = kernel.push(
            int(source), damping, epsilon=push_epsilon
        )
        if epsilon > 0:
            keep = np.abs(values) >= epsilon
            nodes, values = nodes[keep], values[keep]
        counts[offset] = len(nodes)
        col_parts.append(nodes)
        val_parts.append(values)
    cols = (
        np.concatenate(col_parts)
        if col_parts
        else np.zeros(0, dtype=np.int64)
    )
    vals = (
        np.concatenate(val_parts)
        if val_parts
        else np.zeros(0, dtype=np.float64)
    )
    return counts, cols, vals


def assemble_csr(
    counts: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
) -> sparse.csr_matrix:
    """CSR from per-row counts + packed columns/values (no COO pass).

    The push kernel emits each row's columns already sorted, so the
    ``(data, indices, indptr)`` constructor is valid directly.
    """
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return sparse.csr_matrix(
        (
            np.asarray(vals, dtype=np.float64),
            np.asarray(cols, dtype=np.int64),
            indptr,
        ),
        shape=shape,
    )


def _rows_touching(
    indptr: np.ndarray, indices: np.ndarray, columns: np.ndarray
) -> np.ndarray:
    """Row ids of a CSR structure holding ≥ 1 stored entry in ``columns``.

    The dirty-source detector of incremental repair: a basis row can
    only be perturbed by a change whose Δ columns intersect its stored
    support (Lemma 3 linearity — ``Δ·p`` vanishes elsewhere).
    """
    if columns.size == 0 or indices.size == 0:
        return np.zeros(0, dtype=np.int64)
    hits = np.flatnonzero(np.isin(indices, columns))
    if hits.size == 0:
        return np.zeros(0, dtype=np.int64)
    rows = np.searchsorted(indptr, hits, side="right") - 1
    return np.unique(rows).astype(np.int64)


def repair_residual_seeds(
    rows: sparse.csr_matrix,
    sources: np.ndarray,
    normalized: sparse.csr_matrix,
    damping: float,
) -> sparse.csr_matrix:
    """Residual mass each old solution misses against the new matrix.

    For source ``i`` with old (truncated) solution ``p``, the exact
    residual making the push invariant hold against the *new* ``S'`` is

        ``r = e_i - (p - c·S'p) / (1-c)``

    — rearranging ``p* = (1-c)(I - cS')^{-1} e_i`` with ``p`` taken as
    the partial estimate.  When nothing changed inside ``p``'s reach,
    ``r`` is exactly the sub-``epsilon`` residual the original solve
    left behind; a changed entry of ``S'`` surfaces as new (possibly
    negative) mass at the perturbed coordinates.  Vectorised over all
    ``sources`` as one sparse product; ``rows[k]`` must be the old
    basis row of ``sources[k]``, padded to the new matrix width.
    """
    k = rows.shape[0]
    restart = sparse.csr_matrix(
        (
            np.ones(k, dtype=np.float64),
            (np.arange(k, dtype=np.int64), sources),
        ),
        shape=rows.shape,
    )
    propagated = (rows @ normalized).tocsr()
    correction = (1.0 / (1.0 - damping)) * (rows - damping * propagated)
    return (restart - correction).tocsr()


def repair_rows(
    kernel: PushKernel,
    normalized: sparse.csr_matrix,
    sources: np.ndarray,
    rows: sparse.csr_matrix,
    damping: float,
    push_epsilon: float,
    epsilon: float,
    stats: RepairStats | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Re-solve ``sources`` by pushing only their perturbed residual.

    Seeds each source's old row plus the residual it misses against
    ``normalized`` (see :func:`repair_residual_seeds`) and drains to
    ``push_epsilon`` — the same invariant a cold solve terminates on.
    Returns packed CSR parts like :func:`push_sources`.
    """
    seeds = repair_residual_seeds(rows, sources, normalized, damping)
    counts = np.zeros(sources.size, dtype=np.int64)
    col_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    pushes = 0
    for offset in range(sources.size):
        e0, e1 = rows.indptr[offset], rows.indptr[offset + 1]
        r0, r1 = seeds.indptr[offset], seeds.indptr[offset + 1]
        nodes, values, push_stats = kernel.resume(
            rows.indices[e0:e1],
            rows.data[e0:e1],
            seeds.indices[r0:r1],
            seeds.data[r0:r1],
            damping,
            epsilon=push_epsilon,
        )
        pushes += push_stats.pushes
        if epsilon > 0:
            keep = np.abs(values) >= epsilon
            nodes, values = nodes[keep], values[keep]
        counts[offset] = len(nodes)
        col_parts.append(nodes)
        val_parts.append(values)
    if stats is not None:
        stats.pushes += pushes
    cols = (
        np.concatenate(col_parts)
        if col_parts
        else np.zeros(0, dtype=np.int64)
    )
    vals = (
        np.concatenate(val_parts)
        if val_parts
        else np.zeros(0, dtype=np.float64)
    )
    return counts, cols, vals


def _cold_rows(
    kernel: PushKernel,
    sources: np.ndarray,
    damping: float,
    push_epsilon: float,
    epsilon: float,
    stats: RepairStats | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`push_sources` with push-count accounting (repair path)."""
    counts = np.zeros(sources.size, dtype=np.int64)
    col_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    pushes = 0
    for offset, source in enumerate(sources.tolist()):
        nodes, values, push_stats = kernel.push(
            int(source), damping, epsilon=push_epsilon
        )
        pushes += push_stats.pushes
        if epsilon > 0:
            keep = np.abs(values) >= epsilon
            nodes, values = nodes[keep], values[keep]
        counts[offset] = len(nodes)
        col_parts.append(nodes)
        val_parts.append(values)
    if stats is not None:
        stats.pushes += pushes
    cols = (
        np.concatenate(col_parts)
        if col_parts
        else np.zeros(0, dtype=np.int64)
    )
    vals = (
        np.concatenate(val_parts)
        if val_parts
        else np.zeros(0, dtype=np.float64)
    )
    return counts, cols, vals


def _as_dirty_array(dirty: "Sequence[int] | np.ndarray", n: int) -> np.ndarray:
    """Canonicalise a dirty-node collection: sorted unique int64 ids."""
    if isinstance(dirty, np.ndarray):
        arr = np.unique(dirty.astype(np.int64))
    else:
        arr = np.unique(np.fromiter(
            (int(d) for d in dirty), dtype=np.int64
        ))
    if arr.size and (arr[0] < 0 or arr[-1] >= n):
        raise ValueError(
            f"dirty ids must lie in [0, {n}), got "
            f"[{arr[0]}, {arr[-1]}]"
        )
    return arr


def _chunk_sources_by_nnz(
    indptr: np.ndarray,
    sources: np.ndarray,
    workers: int,
    chunk_nnz: int | None = None,
) -> list[np.ndarray]:
    """Cut a source array into work units of roughly equal *push work*.

    Chunk boundaries follow the transition-matrix nnz the rows touch
    (push cost scales with traversed edges), not the row count — a few
    hub rows no longer ride in one chunk with thousands of leaves.
    """
    if sources.size == 0:
        return []
    row_nnz = indptr[sources + 1] - indptr[sources]
    # every row costs at least its own solve, even with no edges
    cum = np.cumsum(np.maximum(row_nnz, 1))
    total = int(cum[-1])
    if chunk_nnz is None:
        chunk_nnz = max(
            total // max(workers * _CHUNKS_PER_WORKER, 1), _MIN_CHUNK_NNZ
        )
    chunk_nnz = max(int(chunk_nnz), 1)
    targets = np.arange(chunk_nnz, total, chunk_nnz, dtype=np.int64)
    boundaries = np.unique(np.searchsorted(cum, targets, side="left") + 1)
    boundaries = boundaries[boundaries < sources.size]
    return [np.asarray(part) for part in np.split(sources, boundaries)]


def _run_push_pool(
    matrix: sparse.csr_matrix,
    units: list[tuple[int, np.ndarray]],
    workers: int,
    damping: float,
    push_epsilon: float,
    epsilon: float,
    recorder: Recorder = NULL_RECORDER,
) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Execute push work units on a shared-memory process pool.

    Returns ``unit_id → (counts, cols, vals)``.  The transition matrix
    is published once via :class:`_SharedCSRPublisher`; unit payloads
    are just source-id arrays, and only results travel back.
    """
    shared = _SharedCSRPublisher(matrix, recorder=recorder)
    results: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_initializer,
            initargs=(shared.spec, damping, push_epsilon, epsilon),
        ) as pool:
            for unit_id, counts, cols, vals in pool.map(
                _pool_push_unit, units
            ):
                results[unit_id] = (counts, cols, vals)
    finally:
        shared.close()
    return results


def _resolve_workers(num_workers: int | None) -> int:
    if num_workers is None or num_workers <= 0:
        return os.cpu_count() or 1
    return num_workers


def _parallel_worth_it(n: int, nnz: int) -> bool:
    """Whether a graph is big enough for the pool to pay for itself."""
    return n >= PARALLEL_MIN_TASKS and nnz >= PARALLEL_MIN_NNZ


def _record_parallel_fallback(recorder: Recorder) -> None:
    recorder.counter(
        "repro_ppr_parallel_fallback_total",
        "Parallel basis requests routed to the serial kernel because "
        "the input sat below the small-n threshold.",
    ).inc()


class PPRBasis:
    """Offline per-task PPR basis enabling O(|T|) online estimation.

    Algorithm 1's offline phase: for every task ``t_i`` compute the
    converged vector ``p_{t_i}`` of Eq. (4) under the unit restart
    ``q_{t_i} = e_i``.  The online phase (Lemma 3) then evaluates
    ``p* = Σ_i q_i · p_{t_i}`` — a sparse row combination.

    Basis rows are truncated at ``epsilon`` to bound memory; the
    truncation error of the combined estimate is at most
    ``epsilon · Σ|q_i| · n_nonzero`` and is validated against the exact
    solver in the test suite.
    """

    def __init__(self, matrix: sparse.csr_matrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("basis must be square (one row per task)")
        self._matrix = matrix.tocsr()

    #: Graphs up to this many nodes use the batched dense iteration
    #: under ``method="auto"``; larger graphs use localized push
    #: (sharded over a process pool when more than one worker resolves).
    AUTO_BATCH_LIMIT = 4096

    @classmethod
    def compute(
        cls,
        normalized: sparse.csr_matrix,
        damping: float,
        epsilon: float = 1e-6,
        method: str = "auto",
        tol: float = 1e-8,
        max_iter: int = 200,
        num_workers: int | None = None,
        chunk_size: int | None = None,
        force_parallel: bool = False,
        recorder: Recorder = NULL_RECORDER,
    ) -> "PPRBasis":
        """Precompute all basis rows.

        Parameters
        ----------
        normalized:
            ``S'`` of the similarity graph.
        damping:
            ``1 / (1 + alpha)``.
        epsilon:
            Truncation threshold for stored entries (0 keeps all).
        method:
            ``"auto"`` (default) picks ``"batch"`` for graphs up to
            :data:`AUTO_BATCH_LIMIT` nodes and ``"push"`` /
            ``"parallel-push"`` beyond (parallel when more than one
            worker resolves); ``"batch"`` iterates Eq. (4) on all unit
            restarts at once (one dense n×n iteration); ``"push"`` runs
            the vectorised localized solver per row;
            ``"parallel-push"`` shards the push rows over a process
            pool (identical output to ``"push"``); ``"power"`` runs the
            dense iteration per row (slow; kept as the test reference).
        num_workers:
            Process count for ``"parallel-push"`` (None/0 = cpu count).
        chunk_size:
            Sources per pool task (default: work units sized by the
            transition-matrix nnz they cover, a few per worker).
        force_parallel:
            ``"parallel-push"`` requests on inputs below
            :data:`PARALLEL_MIN_TASKS` / :data:`PARALLEL_MIN_NNZ` are
            routed to the serial kernel (pool start-up would dominate);
            pass True to run the pool anyway (tests, benchmarks).
        recorder:
            Observability recorder; the offline computation runs under
            a ``ppr.basis`` span and serial pushes record per-solve
            counters (pool workers record nothing — the rows-built
            counter covers them in aggregate).
        """
        n = normalized.shape[0]
        if method == "auto":
            if n <= cls.AUTO_BATCH_LIMIT:
                method = "batch"
            elif _resolve_workers(num_workers) > 1:
                method = "parallel-push"
            else:
                method = "push"
        with recorder.span("ppr.basis", method=method, rows=n):
            basis = cls._compute_with_method(
                normalized,
                damping,
                epsilon,
                method,
                tol,
                max_iter,
                num_workers,
                chunk_size,
                force_parallel,
                recorder,
            )
        recorder.counter(
            "repro_ppr_basis_rows_total",
            "Offline PPR basis rows computed (one per task).",
        ).inc(n)
        return basis

    @classmethod
    def _compute_with_method(
        cls,
        normalized: sparse.csr_matrix,
        damping: float,
        epsilon: float,
        method: str,
        tol: float,
        max_iter: int,
        num_workers: int | None,
        chunk_size: int | None,
        force_parallel: bool,
        recorder: Recorder,
    ) -> "PPRBasis":
        n = normalized.shape[0]
        if method == "batch":
            basis = np.eye(n)
            restart = (1.0 - damping) * np.eye(n)
            for _ in range(max_iter):
                nxt = damping * (normalized @ basis) + restart
                if np.max(np.abs(nxt - basis)) < tol:
                    basis = nxt
                    break
                basis = nxt
            if epsilon > 0:
                basis[np.abs(basis) < epsilon] = 0.0
            # rows of the basis are p_{t_i}; the iteration above tracks
            # columns (restart e_i per column), and S' is symmetric so
            # the matrix is symmetric too — transpose for clarity.
            return cls(sparse.csr_matrix(basis.T))
        if method == "push":
            push_eps = basis_push_epsilon(epsilon)
            kernel = PushKernel(normalized, recorder=recorder)
            counts, cols, vals = push_sources(
                kernel, range(n), damping, push_eps, epsilon
            )
            return cls(cls._assemble(n, counts, cols, vals))
        if method == "parallel-push":
            return cls(
                cls._compute_parallel(
                    normalized,
                    damping,
                    epsilon,
                    num_workers=num_workers,
                    chunk_size=chunk_size,
                    force_parallel=force_parallel,
                    recorder=recorder,
                )
            )
        if method == "power":
            rows: list[int] = []
            cols_l: list[int] = []
            vals_l: list[float] = []
            for i in range(n):
                unit = np.zeros(n)
                unit[i] = 1.0
                vec = power_iteration(
                    normalized, unit, damping, tol=tol, max_iter=max_iter
                )
                keep = (
                    np.flatnonzero(np.abs(vec) >= epsilon)
                    if epsilon > 0
                    else np.flatnonzero(vec)
                )
                rows.extend([i] * len(keep))
                cols_l.extend(int(j) for j in keep)
                vals_l.extend(float(vec[j]) for j in keep)
            matrix = sparse.csr_matrix(
                (vals_l, (rows, cols_l)), shape=(n, n)
            )
            return cls(matrix)
        raise ValueError(f"unknown basis method {method!r}")

    @staticmethod
    def _assemble(
        n: int, counts: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> sparse.csr_matrix:
        """CSR from per-row counts + packed columns/values (no COO
        pass); see :func:`assemble_csr`."""
        return assemble_csr(counts, cols, vals, (n, n))

    @classmethod
    def _compute_parallel(
        cls,
        normalized: sparse.csr_matrix,
        damping: float,
        epsilon: float,
        num_workers: int | None = None,
        chunk_size: int | None = None,
        force_parallel: bool = False,
        recorder: Recorder = NULL_RECORDER,
    ) -> sparse.csr_matrix:
        """Shard push sources over a shared-memory process pool.

        Output is bit-identical to serial ``"push"``: workers run the
        same kernel on the same full matrix, sources are merely
        partitioned, and assembly re-orders the packed results into
        source order.  Small inputs (below :data:`PARALLEL_MIN_TASKS` /
        :data:`PARALLEL_MIN_NNZ`) fall back to the serial kernel unless
        ``force_parallel`` is set — pool start-up would dominate.
        """
        n = normalized.shape[0]
        matrix = normalized.tocsr()
        workers = min(_resolve_workers(num_workers), max(1, n))
        push_eps = basis_push_epsilon(epsilon)
        small = not _parallel_worth_it(n, matrix.nnz)
        if workers > 1 and small and not force_parallel:
            _record_parallel_fallback(recorder)
            workers = 1
        if workers <= 1:
            kernel = PushKernel(normalized, recorder=recorder)
            counts, cols, vals = push_sources(
                kernel, range(n), damping, push_eps, epsilon
            )
            return cls._assemble(n, counts, cols, vals)
        sources = np.arange(n, dtype=np.int64)
        if chunk_size is not None:
            # legacy row-count chunking, kept for explicit callers
            parts = [
                sources[start : start + chunk_size]
                for start in range(0, n, max(1, chunk_size))
            ]
        else:
            parts = _chunk_sources_by_nnz(matrix.indptr, sources, workers)
        units = list(enumerate(parts))
        results = _run_push_pool(
            matrix, units, workers, damping, push_eps, epsilon,
            recorder=recorder,
        )
        all_counts = np.concatenate(
            [results[uid][0] for uid, _ in units]
        )
        cols = np.concatenate([results[uid][1] for uid, _ in units])
        vals = np.concatenate([results[uid][2] for uid, _ in units])
        return cls._assemble(n, all_counts, cols, vals)

    @property
    def num_tasks(self) -> int:
        return self._matrix.shape[0]

    @property
    def nnz(self) -> int:
        """Stored non-zeros (memory proxy for the truncation ablation)."""
        return self._matrix.nnz

    @property
    def matrix(self) -> sparse.csr_matrix:
        """The raw CSR basis matrix (row i = ``p_{t_i}``); used by the
        on-disk basis cache for exact serialisation."""
        return self._matrix

    def _row_slice(self, task_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of one basis row without copying
        the matrix structure (scipy's ``getrow`` builds a whole new CSR
        per call, which dominates the online-estimation profile)."""
        indptr = self._matrix.indptr
        start, end = indptr[task_id], indptr[task_id + 1]
        return (
            self._matrix.indices[start:end],
            self._matrix.data[start:end],
        )

    def row(self, task_id: int) -> np.ndarray:
        """Dense basis vector ``p_{t_i}``."""
        out = np.zeros(self.num_tasks)
        cols, vals = self._row_slice(task_id)
        out[cols] = vals
        return out

    def combine(self, q: np.ndarray | dict[int, float]) -> np.ndarray:
        """Online estimation: ``p* = Σ q_i · p_{t_i}`` (Lemma 3).

        Accepts either a dense restart vector or a sparse dict of
        observed accuracies keyed by task id.
        """
        n = self.num_tasks
        if isinstance(q, dict):
            out = np.zeros(n)
            for task_id, weight in q.items():
                # repro-lint: disable=RL004 -- exact-zero skip, not a tolerance
                if weight == 0.0:
                    continue
                cols, vals = self._row_slice(task_id)
                out[cols] += weight * vals
            return out
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (n,):
            raise ValueError(f"q has shape {q.shape}, expected ({n},)")
        return np.asarray(q @ self._matrix).ravel()

    def _rows_block(
        self, task_ids: np.ndarray, width: int
    ) -> sparse.csr_matrix:
        """CSR block of the given basis rows, padded to ``width``
        columns (repair needs old rows in new-matrix coordinates)."""
        block = self._matrix[task_ids].tocsr()
        return sparse.csr_matrix(
            (block.data, block.indices, block.indptr),
            shape=(block.shape[0], width),
        )

    def repair(
        self,
        normalized: sparse.csr_matrix,
        dirty: "Sequence[int] | np.ndarray",
        damping: float,
        epsilon: float = 1e-6,
        stats: RepairStats | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> "PPRBasis":
        """Incrementally repair this basis against a changed matrix.

        Parameters
        ----------
        normalized:
            The **new** ``S'`` (full, possibly larger than the matrix
            this basis was built on; the task set may only grow).
        dirty:
            Ids of every node whose *row of* ``S'`` changed since this
            basis was built — endpoints of new/changed edges plus their
            neighbours (degree renormalisation reaches one hop); see
            :meth:`repro.core.streaming.GrowableGraph.delta`.
        damping / epsilon:
            Must match the values the basis was built with: the repair
            drains to ``basis_push_epsilon(epsilon)`` and truncates
            stored entries at ``epsilon``, keeping the repaired rows in
            the same invariant class as a cold build.
        stats:
            Optional :class:`RepairStats` out-parameter.

        Returns the repaired basis (a new object; ``self`` is
        untouched).  Only sources whose stored support intersects
        ``dirty`` are re-pushed — seeded with their old solution plus
        the residual it misses against the new matrix — and tasks past
        the old size are solved cold; every other row is carried over
        by reference.  The result is within the ``epsilon`` invariant
        of a cold rebuild, but not bit-identical to one (residuals
        below the push tolerance differ).
        """
        matrix = normalized.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("normalized matrix must be square")
        n_new = matrix.shape[0]
        n_old = self.num_tasks
        if n_new < n_old:
            raise ValueError(
                f"repair cannot shrink the task set ({n_old} -> {n_new})"
            )
        dirty_arr = _as_dirty_array(dirty, n_new)
        old = self._matrix
        dirty_cols = dirty_arr[dirty_arr < n_old]
        # rows to re-push: support touches a dirty column, plus the
        # dirty nodes themselves (their own S' row changed)
        dirty_sources = np.union1d(
            _rows_touching(old.indptr, old.indices, dirty_cols),
            dirty_cols,
        )
        push_eps = basis_push_epsilon(epsilon)
        with recorder.span(
            "ppr.repair",
            rows=n_new,
            dirty=int(dirty_sources.size),
            new=n_new - n_old,
        ):
            kernel = PushKernel(matrix, recorder=recorder)
            d_counts, d_cols, d_vals = repair_rows(
                kernel, matrix, dirty_sources,
                self._rows_block(dirty_sources, n_new),
                damping, push_eps, epsilon, stats,
            )
            new_sources = np.arange(n_old, n_new, dtype=np.int64)
            n_counts, n_cols, n_vals = _cold_rows(
                kernel, new_sources, damping, push_eps, epsilon, stats
            )
            # stitch: reused rows keep their slices of the old arrays
            d_indptr = np.zeros(dirty_sources.size + 1, dtype=np.int64)
            np.cumsum(d_counts, out=d_indptr[1:])
            counts = np.empty(n_new, dtype=np.int64)
            col_parts: list[np.ndarray] = []
            val_parts: list[np.ndarray] = []
            cursor = 0
            for row in range(n_old):
                if (
                    cursor < dirty_sources.size
                    and dirty_sources[cursor] == row
                ):
                    start, end = d_indptr[cursor], d_indptr[cursor + 1]
                    col_parts.append(d_cols[start:end])
                    val_parts.append(d_vals[start:end])
                    counts[row] = end - start
                    cursor += 1
                else:
                    start, end = old.indptr[row], old.indptr[row + 1]
                    col_parts.append(old.indices[start:end])
                    val_parts.append(old.data[start:end])
                    counts[row] = end - start
            counts[n_old:] = n_counts
            col_parts.append(n_cols)
            val_parts.append(n_vals)
            repaired = assemble_csr(
                counts,
                np.concatenate(col_parts)
                if col_parts
                else np.zeros(0, dtype=np.int64),
                np.concatenate(val_parts)
                if val_parts
                else np.zeros(0, dtype=np.float64),
                shape=(n_new, n_new),
            )
        if stats is not None:
            stats.repaired_rows += int(dirty_sources.size)
            stats.new_rows += n_new - n_old
            stats.reused_rows += n_old - int(dirty_sources.size)
        recorder.counter(
            "repro_ppr_repair_rows_total",
            "Basis rows re-pushed or solved cold by incremental repair.",
        ).inc(int(dirty_sources.size) + (n_new - n_old))
        recorder.counter(
            "repro_ppr_repair_reused_rows_total",
            "Basis rows carried over untouched by incremental repair.",
        ).inc(n_old - int(dirty_sources.size))
        return PPRBasis(repaired)


class ShardedBasis:
    """PPR basis stored as per-shard CSR row blocks.

    Each shard of a :class:`~repro.core.indexes.ShardIndex` owns one
    CSR block of shape ``(shard_size, n)`` — the basis rows of that
    shard's tasks, in shard-task order, with **global** column ids.
    Pushes always run on the *full* transition matrix (never a shard
    submatrix), so every stored row is bit-identical to the row the
    serial ``"push"`` path produces: shards only decide which process
    solves which sources and how results are blocked, never the
    arithmetic.

    Online reads (:meth:`row`, the dict path of :meth:`combine`) route
    through the index and touch only the owning shard's block, keeping
    the working set per query at one block instead of the whole basis.
    """

    def __init__(
        self, index: "ShardIndex", blocks: Sequence[sparse.csr_matrix]
    ) -> None:
        if len(blocks) != index.num_shards:
            raise ValueError(
                f"expected {index.num_shards} blocks, got {len(blocks)}"
            )
        n = index.num_tasks
        for shard_id, block in enumerate(blocks):
            expected = (len(index.shard_tasks(shard_id)), n)
            if block.shape != expected:
                raise ValueError(
                    f"shard {shard_id} block has shape {block.shape}, "
                    f"expected {expected}"
                )
        self._index = index
        self._blocks: list[sparse.csr_matrix] = [
            block.tocsr() for block in blocks
        ]
        self._global: sparse.csr_matrix | None = None

    @classmethod
    def compute(
        cls,
        normalized: sparse.csr_matrix,
        index: "ShardIndex",
        damping: float,
        epsilon: float = 1e-6,
        num_workers: int | None = None,
        chunk_nnz: int | None = None,
        force_parallel: bool = False,
        recorder: Recorder = NULL_RECORDER,
    ) -> "ShardedBasis":
        """Compute the basis sharded by ``index``.

        With more than one resolved worker (and an input above the
        small-n thresholds, or ``force_parallel``), each shard's source
        set is cut into nnz-sized work units and solved on the
        shared-memory pool; blocks are then assembled per shard with
        only intra-shard concatenation.  Otherwise a single kernel
        solves every shard in turn (same output, no pool).
        """
        n = normalized.shape[0]
        if index.num_tasks != n:
            raise ValueError(
                f"index covers {index.num_tasks} tasks, matrix has {n}"
            )
        matrix = normalized.tocsr()
        workers = min(_resolve_workers(num_workers), max(1, n))
        push_eps = basis_push_epsilon(epsilon)
        small = not _parallel_worth_it(n, matrix.nnz)
        if workers > 1 and small and not force_parallel:
            _record_parallel_fallback(recorder)
            workers = 1
        with recorder.span(
            "ppr.sharded_basis", shards=index.num_shards, rows=n
        ):
            if workers <= 1:
                kernel = PushKernel(matrix, recorder=recorder)
                blocks = [
                    assemble_csr(
                        *push_sources(
                            kernel,
                            index.shard_tasks(shard_id),
                            damping,
                            push_eps,
                            epsilon,
                        ),
                        shape=(len(index.shard_tasks(shard_id)), n),
                    )
                    for shard_id in range(index.num_shards)
                ]
            else:
                blocks = cls._compute_blocks_parallel(
                    matrix, index, workers, damping, push_eps, epsilon,
                    chunk_nnz, recorder=recorder,
                )
        recorder.counter(
            "repro_ppr_basis_rows_total",
            "Offline PPR basis rows computed (one per task).",
        ).inc(n)
        return cls(index, blocks)

    @staticmethod
    def _compute_blocks_parallel(
        matrix: sparse.csr_matrix,
        index: "ShardIndex",
        workers: int,
        damping: float,
        push_eps: float,
        epsilon: float,
        chunk_nnz: int | None,
        recorder: Recorder = NULL_RECORDER,
    ) -> list[sparse.csr_matrix]:
        """One pool run over every shard's nnz-sized work units."""
        n = matrix.shape[0]
        units: list[tuple[int, np.ndarray]] = []
        shard_units: list[list[int]] = []
        for shard_id in range(index.num_shards):
            parts = _chunk_sources_by_nnz(
                matrix.indptr,
                index.shard_tasks(shard_id),
                workers,
                chunk_nnz,
            )
            base = len(units)
            shard_units.append(list(range(base, base + len(parts))))
            units.extend(
                (base + offset, part)
                for offset, part in enumerate(parts)
            )
        results = _run_push_pool(
            matrix, units, workers, damping, push_eps, epsilon,
            recorder=recorder,
        )
        blocks: list[sparse.csr_matrix] = []
        for shard_id, unit_ids in enumerate(shard_units):
            shard_size = len(index.shard_tasks(shard_id))
            if not unit_ids:
                blocks.append(
                    sparse.csr_matrix((shard_size, n), dtype=np.float64)
                )
                continue
            counts = np.concatenate(
                [results[uid][0] for uid in unit_ids]
            )
            cols = np.concatenate([results[uid][1] for uid in unit_ids])
            vals = np.concatenate([results[uid][2] for uid in unit_ids])
            blocks.append(
                assemble_csr(counts, cols, vals, (shard_size, n))
            )
        return blocks

    @classmethod
    def from_global(
        cls,
        basis: "PPRBasis | sparse.csr_matrix",
        index: "ShardIndex",
    ) -> "ShardedBasis":
        """Re-block a whole-graph basis (e.g. loaded from the on-disk
        cache) into per-shard row blocks without recomputation."""
        matrix = basis.matrix if isinstance(basis, PPRBasis) else basis
        matrix = matrix.tocsr()
        if matrix.shape[0] != index.num_tasks:
            raise ValueError(
                f"basis has {matrix.shape[0]} rows, "
                f"index covers {index.num_tasks} tasks"
            )
        blocks = [
            matrix[index.shard_tasks(shard_id), :].tocsr()
            for shard_id in range(index.num_shards)
        ]
        return cls(index, blocks)

    def to_global(self) -> sparse.csr_matrix:
        """Whole-graph CSR basis (row ``i`` = ``p_{t_i}``), assembled
        once and cached; bit-identical to the serial path's matrix.

        Used for exact on-disk serialisation and identity checks — the
        online paths never need it.
        """
        if self._global is not None:
            return self._global
        n = self.num_tasks
        counts = np.zeros(n, dtype=np.int64)
        for shard_id, block in enumerate(self._blocks):
            tasks = self._index.shard_tasks(shard_id)
            counts[tasks] = np.diff(block.indptr)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        cols = np.empty(total, dtype=np.int64)
        vals = np.empty(total, dtype=np.float64)
        for shard_id, block in enumerate(self._blocks):
            if block.nnz == 0:
                continue
            tasks = self._index.shard_tasks(shard_id)
            lengths = np.diff(block.indptr).astype(np.int64)
            # per-entry destination: global row start + offset in row
            offsets = np.arange(block.nnz, dtype=np.int64) - np.repeat(
                block.indptr[:-1].astype(np.int64), lengths
            )
            dest = np.repeat(indptr[tasks], lengths) + offsets
            cols[dest] = block.indices
            vals[dest] = block.data
        self._global = sparse.csr_matrix(
            (vals, cols, indptr), shape=(n, n)
        )
        return self._global

    # ------------------------------------------------------------------
    # PPRBasis-compatible surface (duck-typed by estimator/qualification)
    # ------------------------------------------------------------------
    @property
    def index(self) -> "ShardIndex":
        return self._index

    @property
    def num_tasks(self) -> int:
        return self._index.num_tasks

    @property
    def num_shards(self) -> int:
        return self._index.num_shards

    @property
    def nnz(self) -> int:
        return sum(block.nnz for block in self._blocks)

    @property
    def matrix(self) -> sparse.csr_matrix:
        """Whole-graph view (for the on-disk cache); see
        :meth:`to_global`."""
        return self.to_global()

    def block(self, shard_id: int) -> sparse.csr_matrix:
        """Shard ``shard_id``'s row block ``(shard_size, n)``, rows in
        ``index.shard_tasks(shard_id)`` order, global columns."""
        return self._blocks[shard_id]

    def block_nnz(self) -> list[int]:
        """Stored non-zeros per shard (perf/memory diagnostics)."""
        return [int(block.nnz) for block in self._blocks]

    def _row_slice(self, task_id: int) -> tuple[np.ndarray, np.ndarray]:
        shard_id, local = self._index.locate(task_id)
        block = self._blocks[shard_id]
        start, end = block.indptr[local], block.indptr[local + 1]
        return block.indices[start:end], block.data[start:end]

    def row(self, task_id: int) -> np.ndarray:
        """Dense basis vector ``p_{t_i}`` (reads one shard block)."""
        out = np.zeros(self.num_tasks)
        cols, vals = self._row_slice(task_id)
        out[cols] = vals
        return out

    def combine(self, q: np.ndarray | dict[int, float]) -> np.ndarray:
        """Online estimation ``p* = Σ q_i · p_{t_i}`` (Lemma 3).

        The dict path accumulates rows in key order exactly like
        :meth:`PPRBasis.combine` — identical float additions, so
        estimates match the unsharded basis bit for bit.  The dense
        path evaluates per shard and sums the partials.
        """
        n = self.num_tasks
        if isinstance(q, dict):
            out = np.zeros(n)
            for task_id, weight in q.items():
                # repro-lint: disable=RL004 -- exact-zero skip, not a tolerance
                if weight == 0.0:
                    continue
                cols, vals = self._row_slice(task_id)
                out[cols] += weight * vals
            return out
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (n,):
            raise ValueError(f"q has shape {q.shape}, expected ({n},)")
        out = np.zeros(n)
        for shard_id, block in enumerate(self._blocks):
            tasks = self._index.shard_tasks(shard_id)
            out += np.asarray(q[tasks] @ block).ravel()
        return out

    def _rows_block(
        self, task_ids: np.ndarray, width: int
    ) -> sparse.csr_matrix:
        """CSR block of the given basis rows (gathered across shards),
        padded to ``width`` columns."""
        counts = np.zeros(task_ids.size, dtype=np.int64)
        col_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        for offset, task_id in enumerate(task_ids.tolist()):
            cols, vals = self._row_slice(int(task_id))
            counts[offset] = len(cols)
            col_parts.append(cols)
            val_parts.append(vals)
        return assemble_csr(
            counts,
            np.concatenate(col_parts)
            if col_parts
            else np.zeros(0, dtype=np.int64),
            np.concatenate(val_parts)
            if val_parts
            else np.zeros(0, dtype=np.float64),
            shape=(task_ids.size, width),
        )

    def repair(
        self,
        normalized: sparse.csr_matrix,
        dirty: "Sequence[int] | np.ndarray",
        index: "ShardIndex",
        damping: float,
        epsilon: float = 1e-6,
        stats: RepairStats | None = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> "ShardedBasis":
        """Incrementally repair this sharded basis against a changed
        matrix, re-blocked by the **new** ``index``.

        Same contract as :meth:`PPRBasis.repair` — pushes run on the
        full matrix, so rows are partition-independent and the new
        index may split tasks arbitrarily.  A change confined to one
        shard repairs only that shard: new-index shards holding no
        dirty/new task whose membership matches an old shard exactly
        reuse that shard's CSR block zero-copy (only the column count
        widens); everything else is assembled by gathering rows from
        the repair/cold solutions or the old blocks.
        """
        matrix = normalized.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("normalized matrix must be square")
        n_new = matrix.shape[0]
        n_old = self.num_tasks
        if n_new < n_old:
            raise ValueError(
                f"repair cannot shrink the task set ({n_old} -> {n_new})"
            )
        if index.num_tasks != n_new:
            raise ValueError(
                f"index covers {index.num_tasks} tasks, matrix has {n_new}"
            )
        dirty_arr = _as_dirty_array(dirty, n_new)
        dirty_cols = dirty_arr[dirty_arr < n_old]
        source_parts = [dirty_cols]
        for shard_id, block in enumerate(self._blocks):
            local = _rows_touching(
                block.indptr, block.indices, dirty_cols
            )
            if local.size:
                source_parts.append(
                    self._index.shard_tasks(shard_id)[local]
                )
        dirty_sources = np.unique(
            np.concatenate(source_parts).astype(np.int64)
        )
        push_eps = basis_push_epsilon(epsilon)
        with recorder.span(
            "ppr.sharded_repair",
            rows=n_new,
            dirty=int(dirty_sources.size),
            new=n_new - n_old,
            shards=index.num_shards,
        ):
            kernel = PushKernel(matrix, recorder=recorder)
            d_counts, d_cols, d_vals = repair_rows(
                kernel, matrix, dirty_sources,
                self._rows_block(dirty_sources, n_new),
                damping, push_eps, epsilon, stats,
            )
            new_sources = np.arange(n_old, n_new, dtype=np.int64)
            n_counts, n_cols, n_vals = _cold_rows(
                kernel, new_sources, damping, push_eps, epsilon, stats
            )
            solved: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            d_indptr = np.zeros(dirty_sources.size + 1, dtype=np.int64)
            np.cumsum(d_counts, out=d_indptr[1:])
            for offset, source in enumerate(dirty_sources.tolist()):
                start, end = d_indptr[offset], d_indptr[offset + 1]
                solved[int(source)] = (
                    d_cols[start:end], d_vals[start:end]
                )
            n_indptr = np.zeros(new_sources.size + 1, dtype=np.int64)
            np.cumsum(n_counts, out=n_indptr[1:])
            for offset, source in enumerate(new_sources.tolist()):
                start, end = n_indptr[offset], n_indptr[offset + 1]
                solved[int(source)] = (
                    n_cols[start:end], n_vals[start:end]
                )
            dirty_mask = np.zeros(n_new, dtype=bool)
            dirty_mask[dirty_sources] = True
            dirty_mask[n_old:] = True
            # old shard lookup (by leading task id) for block reuse
            old_by_first: dict[int, int] = {}
            for shard_id in range(self._index.num_shards):
                tasks = self._index.shard_tasks(shard_id)
                if tasks.size:
                    old_by_first[int(tasks[0])] = shard_id
            blocks: list[sparse.csr_matrix] = []
            for shard_id in range(index.num_shards):
                tasks = index.shard_tasks(shard_id)
                if tasks.size and not dirty_mask[tasks].any():
                    old_id = old_by_first.get(int(tasks[0]))
                    if old_id is not None and np.array_equal(
                        self._index.shard_tasks(old_id), tasks
                    ):
                        old_block = self._blocks[old_id]
                        blocks.append(
                            sparse.csr_matrix(
                                (
                                    old_block.data,
                                    old_block.indices,
                                    old_block.indptr,
                                ),
                                shape=(old_block.shape[0], n_new),
                            )
                        )
                        continue
                counts = np.zeros(tasks.size, dtype=np.int64)
                col_parts: list[np.ndarray] = []
                val_parts: list[np.ndarray] = []
                for offset, task_id in enumerate(tasks.tolist()):
                    entry = solved.get(int(task_id))
                    if entry is None:
                        cols, vals = self._row_slice(int(task_id))
                    else:
                        cols, vals = entry
                    counts[offset] = len(cols)
                    col_parts.append(cols)
                    val_parts.append(vals)
                blocks.append(
                    assemble_csr(
                        counts,
                        np.concatenate(col_parts)
                        if col_parts
                        else np.zeros(0, dtype=np.int64),
                        np.concatenate(val_parts)
                        if val_parts
                        else np.zeros(0, dtype=np.float64),
                        shape=(tasks.size, n_new),
                    )
                )
        if stats is not None:
            stats.repaired_rows += int(dirty_sources.size)
            stats.new_rows += n_new - n_old
            stats.reused_rows += n_old - int(dirty_sources.size)
        recorder.counter(
            "repro_ppr_repair_rows_total",
            "Basis rows re-pushed or solved cold by incremental repair.",
        ).inc(int(dirty_sources.size) + (n_new - n_old))
        recorder.counter(
            "repro_ppr_repair_reused_rows_total",
            "Basis rows carried over untouched by incremental repair.",
        ).inc(n_old - int(dirty_sources.size))
        return ShardedBasis(index, blocks)
