"""Qualification microtask selection and warm-up (Sections 2.2 & 5).

**Selection** (Definition 5): pick at most Q tasks whose combined
*influence* — the number of non-zero entries of ``Σ_{t∈T^q} p_t`` over
the PPR basis — is maximal.  The problem is NP-hard (Lemma 5, reduction
from maximum coverage); Algorithm 4 greedily adds the task with the
largest marginal influence and attains the classic ``1 − 1/e``
guarantee.  Because influence counts *non-zero* coordinates, the greedy
marginal is exactly the number of newly covered basis-support
coordinates, so we implement it as lazy-greedy max-coverage over support
sets (CELF), which is equivalent and much faster than re-evaluating
``INF`` from scratch each round.

**Warm-up** (Section 2.2): new workers answer the qualification tasks
first; their average qualification accuracy seeds the estimator, and
workers below a threshold are rejected as unqualified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.ppr import PPRBasis, ShardedBasis
from repro.core.types import Label, TaskId, WorkerId


def influence(
    basis: PPRBasis | ShardedBasis, tasks: Sequence[TaskId]
) -> int:
    """``INF(T^q)``: non-zero entries of the summed basis vectors."""
    if not tasks:
        return 0
    total = np.zeros(basis.num_tasks)
    for task_id in tasks:
        total += basis.row(task_id)
    return int(np.count_nonzero(total))


def select_qualification_tasks(
    basis: PPRBasis | ShardedBasis,
    budget: int,
    candidates: Sequence[TaskId] | None = None,
) -> list[TaskId]:
    """Algorithm 4: greedy influence-maximising qualification selection.

    Parameters
    ----------
    basis:
        Precomputed PPR basis (Algorithm 4 lines 2-3).
    budget:
        Number Q of qualification tasks (Algorithm 4 runs exactly Q
        greedy iterations).
    candidates:
        Optional restriction of the candidate pool (defaults to all
        tasks).

    Returns
    -------
    list of TaskId
        Selected tasks in pick order (``min(budget, |pool|)`` entries).

    Notes
    -----
    The paper's marginal gain counts newly *non-zero* coordinates of the
    summed basis vectors.  On well-connected graphs this saturates after
    one pick per connected component, leaving later iterations with an
    arbitrary argmax.  We therefore break count ties by the residual
    probability *mass* a candidate adds beyond the per-coordinate
    maximum already covered — a facility-location-style secondary
    objective that spreads the remaining picks across weakly covered
    regions (it is also submodular, so the greedy guarantee survives).
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    pool = list(candidates) if candidates is not None else list(
        range(basis.num_tasks)
    )
    rows: dict[TaskId, np.ndarray] = {t: basis.row(t) for t in pool}
    covered_mass = np.zeros(basis.num_tasks)
    selected: list[TaskId] = []
    remaining = set(pool)
    while remaining and len(selected) < budget:
        best_task: TaskId | None = None
        best_key: tuple[int, float, int] | None = None
        covered_support = covered_mass > 0
        for task_id in remaining:
            row = rows[task_id]
            new_support = int(np.count_nonzero((row != 0) & ~covered_support))
            residual = float(np.maximum(row - covered_mass, 0.0).sum())
            key = (new_support, residual, -task_id)
            if best_key is None or key > best_key:
                best_key = key
                best_task = task_id
        assert best_task is not None
        selected.append(best_task)
        remaining.discard(best_task)
        covered_mass = np.maximum(covered_mass, rows[best_task])
    return selected


def select_random_tasks(
    num_tasks: int, budget: int, rng: np.random.Generator
) -> list[TaskId]:
    """The RandomQF baseline of Section 6.3.1: uniform selection."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    budget = min(budget, num_tasks)
    return [int(t) for t in rng.choice(num_tasks, size=budget, replace=False)]


@dataclass
class WarmUpState:
    """Per-worker warm-up progress."""

    pending: list[TaskId] = field(default_factory=list)
    graded: dict[TaskId, bool] = field(default_factory=dict)
    rejected: bool = False

    @property
    def num_answered(self) -> int:
        return len(self.graded)

    @property
    def num_correct(self) -> int:
        return sum(1 for ok in self.graded.values() if ok)

    @property
    def average_accuracy(self) -> float:
        if not self.graded:
            return 0.0
        return self.num_correct / self.num_answered

    @property
    def finished(self) -> bool:
        return not self.pending


class WarmUp:
    """Cold-start qualification component (Section 2.2).

    Assigns every new worker the qualification microtasks (the worker is
    unaware they are tests), grades answers against ground truth, and
    rejects workers whose average accuracy falls below the threshold.
    """

    def __init__(
        self,
        qualification_truth: Mapping[TaskId, Label],
        threshold: float = 0.6,
    ) -> None:
        if not qualification_truth:
            raise ValueError("warm-up needs at least one qualification task")
        if not 0 <= threshold <= 1:
            raise ValueError("threshold must be in [0, 1]")
        self.qualification_truth = dict(qualification_truth)
        self.threshold = threshold
        self._states: dict[WorkerId, WarmUpState] = {}

    # ------------------------------------------------------------------
    def state_of(self, worker_id: WorkerId) -> WarmUpState:
        """State for a worker, registering her on first contact."""
        state = self._states.get(worker_id)
        if state is None:
            state = WarmUpState(
                pending=sorted(self.qualification_truth)
            )
            self._states[worker_id] = state
        return state

    def next_task(self, worker_id: WorkerId) -> TaskId | None:
        """Next ungraded qualification task for the worker, if any."""
        state = self.state_of(worker_id)
        if state.rejected or not state.pending:
            return None
        return state.pending[0]

    def grade(self, worker_id: WorkerId, task_id: TaskId, answer: Label) -> bool:
        """Grade a qualification answer; returns correctness.

        Applies the elimination rule once all qualification tasks are
        answered (Section 2.2: reject when the average accuracy is below
        the threshold).
        """
        truth = self.qualification_truth.get(task_id)
        if truth is None:
            raise ValueError(f"task {task_id} is not a qualification task")
        state = self.state_of(worker_id)
        if task_id in state.graded:
            raise ValueError(
                f"worker {worker_id!r} already graded on task {task_id}"
            )
        correct = answer == truth
        state.graded[task_id] = correct
        if task_id in state.pending:
            state.pending.remove(task_id)
        if state.finished and state.average_accuracy < self.threshold:
            state.rejected = True
        return correct

    def is_qualified(self, worker_id: WorkerId) -> bool:
        """True unless the worker was eliminated."""
        return not self.state_of(worker_id).rejected

    def has_finished(self, worker_id: WorkerId) -> bool:
        """True once the worker answered every qualification task."""
        return self.state_of(worker_id).finished

    def average_accuracy(self, worker_id: WorkerId) -> float:
        """Average qualification accuracy (the paper's initial estimate
        for Eq. (5) before any graph-based estimate exists)."""
        return self.state_of(worker_id).average_accuracy

    def qualified_workers(self) -> list[WorkerId]:
        """Workers that finished warm-up and were not rejected."""
        return [
            w
            for w, s in self._states.items()
            if s.finished and not s.rejected
        ]
