"""Microtask similarity measures (Section 3.3, Appendix D.1).

The paper derives the similarity graph from one of:

1. **Jaccard** over token sets (the running example of Table 1 /
   Figure 3 uses this with threshold 0.5),
2. **cos(tf-idf)** — cosine over TF-IDF vectors,
3. **cos(topic)** — cosine over LDA topic distributions (the paper's
   default: threshold 0.8),
4. **Euclidean** over numeric feature vectors (e.g. POI coordinates),
   normalised by the corpus diameter,
5. **classifier-based** 0/1 similarity from a trained pair classifier.

Every function returns a dense symmetric ``(n, n)`` numpy array with a
zero diagonal; thresholding and sparsification happen in
:mod:`repro.core.graph`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.types import Task
from repro.text.lda import LatentDirichletAllocation
from repro.text.tfidf import TfIdfVectorizer
from repro.text.tokenize import token_set

#: Signature of a pairwise classifier: takes two tasks, returns True when
#: they should be treated as similar (similarity 1.0).
PairClassifier = Callable[[Task, Task], bool]


def _zero_diagonal(matrix: np.ndarray) -> np.ndarray:
    np.fill_diagonal(matrix, 0.0)
    return matrix


def jaccard_similarity(tasks: Sequence[Task]) -> np.ndarray:
    """Jaccard similarity over stop-word-filtered token sets.

    ``sim(t_i, t_j) = |tokens_i ∩ tokens_j| / |tokens_i ∪ tokens_j|``
    (the paper's example computes 4/7 between t2 and t7 this way).
    """
    sets = [token_set(task.text) for task in tasks]
    n = len(sets)
    sim = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            union = len(sets[i] | sets[j])
            if union == 0:
                continue
            value = len(sets[i] & sets[j]) / union
            sim[i, j] = value
            sim[j, i] = value
    return sim


def tfidf_cosine_similarity(tasks: Sequence[Task]) -> np.ndarray:
    """Cosine similarity over TF-IDF vectors of task text."""
    matrix = TfIdfVectorizer().fit_transform([task.text for task in tasks])
    sim = (matrix @ matrix.T).toarray()
    np.clip(sim, 0.0, 1.0, out=sim)
    return _zero_diagonal(sim)


def topic_cosine_similarity(
    tasks: Sequence[Task],
    num_topics: int = 8,
    seed: int = 0,
    num_iterations: int = 150,
) -> np.ndarray:
    """Cosine similarity over LDA topic distributions (paper default).

    Appendix D.1 reports this measure performs best because topic
    analysis "could discover the inherent topical relevance between
    microtasks in the same domain".
    """
    lda = LatentDirichletAllocation(
        num_topics=num_topics, seed=seed, num_iterations=num_iterations
    )
    theta = lda.fit_transform([task.text for task in tasks])
    norms = np.linalg.norm(theta, axis=1, keepdims=True)
    unit = theta / norms
    sim = unit @ unit.T
    np.clip(sim, 0.0, 1.0, out=sim)
    return _zero_diagonal(sim)


def euclidean_similarity(tasks: Sequence[Task]) -> np.ndarray:
    """Distance-based similarity ``1 - dist / tau`` for feature tasks.

    Section 3.3 case 2: tasks carry multi-dimensional features (POIs,
    images); ``tau`` is the maximum pairwise distance in the corpus so
    similarities land in [0, 1].
    """
    missing = [t.task_id for t in tasks if t.features is None]
    if missing:
        raise ValueError(
            f"euclidean similarity requires features on every task; "
            f"missing on tasks {missing[:5]}"
        )
    points = np.array([task.features for task in tasks], dtype=np.float64)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((diff * diff).sum(axis=2))
    tau = dist.max()
    if tau == 0:
        # all tasks coincide: maximally similar to each other
        sim = np.ones_like(dist)
    else:
        sim = 1.0 - dist / tau
    return _zero_diagonal(sim)


def classifier_similarity(
    tasks: Sequence[Task], classifier: PairClassifier
) -> np.ndarray:
    """0/1 similarity from a user-supplied pair classifier.

    Section 3.3 case 3: for complicated tasks a trained classifier (the
    paper suggests an SVM) decides whether a pair is similar; similar
    pairs get similarity 1, others 0.
    """
    n = len(tasks)
    sim = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            if classifier(tasks[i], tasks[j]):
                sim[i, j] = 1.0
                sim[j, i] = 1.0
    return sim


def compute_similarity(
    tasks: Sequence[Task],
    measure: str,
    num_topics: int = 8,
    seed: int = 0,
    classifier: PairClassifier | None = None,
) -> np.ndarray:
    """Dispatch to the named similarity measure.

    Parameters mirror :class:`repro.core.config.GraphConfig`; the
    ``classifier`` argument is only consulted for ``measure ==
    "classifier"``.
    """
    if measure == "jaccard":
        return jaccard_similarity(tasks)
    if measure == "tfidf":
        return tfidf_cosine_similarity(tasks)
    if measure == "topic":
        return topic_cosine_similarity(tasks, num_topics=num_topics, seed=seed)
    if measure == "euclidean":
        return euclidean_similarity(tasks)
    if measure == "classifier":
        if classifier is None:
            raise ValueError("classifier measure requires a classifier")
        return classifier_similarity(tasks, classifier)
    raise ValueError(f"unknown similarity measure {measure!r}")
