"""Incremental task insertion (the Section 6.5 protocol).

The paper's scalability experiment does not build a 1M-task graph up
front: "Initially, the entire microtask set was empty.  We inserted 0.2
million microtasks at each time and ran iCrowd to evaluate the
efficiency."  That protocol needs a graph that *grows*:

- :class:`GrowableGraph` — adjacency-dict similarity graph with O(1)
  task insertion, O(degree) edge insertion, and on-demand symmetric
  normalisation rows (``s_ij / sqrt(d_i d_j)``) — no global rebuild;
- :class:`StreamingAssigner` — the indexed assigner of
  :mod:`repro.core.indexes` generalised over a growable graph, plus
  :meth:`StreamingAssigner.insert_tasks` to feed new batches into the
  live frontier.

Per-request work stays neighbourhood-bounded, so assignment time is
flat across insertion rounds — the Figure 10 shape under the paper's
actual protocol.

The graph additionally keeps a **change journal** (:class:`GraphDelta`)
recording which normalised rows moved since the last freeze: inserting
edge ``{i, j}`` rescales rows ``i``/``j`` wholesale (their degrees
changed) *and* the ``(·, i)`` / ``(·, j)`` entries of every neighbour
row, so the dirty set of one edge is ``{i, j} ∪ N(i) ∪ N(j)``.  That
set is exactly what :meth:`repro.core.ppr.PPRBasis.repair` needs to
repair a frozen basis incrementally instead of recomputing it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.indexes import SparseEstimateIndex
from repro.core.types import TaskId, WorkerId

if TYPE_CHECKING:
    from scipy import sparse


@dataclass(frozen=True)
class GraphDelta:
    """What changed in a :class:`GrowableGraph` since its last freeze.

    ``base_tasks`` is the task count at the last :meth:`mark_clean`
    (or construction); every id in ``[base_tasks, num_tasks)`` is a new
    task.  ``dirty_rows`` lists every task whose row of ``S'`` changed
    — edge endpoints plus their neighbourhoods (degree renormalisation
    reaches one hop) — including new tasks that received edges.  Feed
    ``dirty_rows`` straight into ``PPRBasis.repair`` /
    ``AccuracyEstimator.update_graph``.
    """

    base_tasks: int
    num_tasks: int
    dirty_rows: tuple[TaskId, ...] = field(default_factory=tuple)

    @property
    def new_tasks(self) -> range:
        """Ids appended since the last freeze."""
        return range(self.base_tasks, self.num_tasks)

    @property
    def is_clean(self) -> bool:
        """True when nothing changed since the last freeze."""
        return not self.dirty_rows and self.base_tasks == self.num_tasks


class GrowableGraph:
    """A similarity graph that supports incremental growth.

    Stores adjacency as one dict per task; the symmetric-normalised row
    needed by the estimation update is computed on demand from current
    degrees, so inserting tasks or edges never rebuilds anything.
    """

    def __init__(self) -> None:
        self._adjacency: list[dict[TaskId, float]] = []
        self._degree: list[float] = []
        # change journal: rows of S' perturbed since the last freeze
        self._dirty: set[TaskId] = set()
        self._clean_tasks: int = 0

    @property
    def num_tasks(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(adj) for adj in self._adjacency) // 2

    def add_tasks(self, count: int) -> range:
        """Append ``count`` isolated tasks; returns their id range.

        ``count == 0`` is a valid (empty) batch — edge-only insertion
        rounds between existing tasks pass zero here.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        start = self.num_tasks
        for _ in range(count):
            self._adjacency.append({})
            self._degree.append(0.0)
        return range(start, start + count)

    def add_edge(self, i: TaskId, j: TaskId, weight: float) -> None:
        """Insert (or overwrite) the undirected edge ``{i, j}``."""
        n = self.num_tasks
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i}, {j}) out of range (n={n})")
        if i == j:
            raise ValueError("self-loops are not allowed")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        previous = self._adjacency[i].get(j, 0.0)
        # repro-lint: disable=RL004 -- exact no-op rewrite leaves S' untouched
        if weight == previous:
            return
        self._adjacency[i][j] = weight
        self._adjacency[j][i] = weight
        self._degree[i] += weight - previous
        self._degree[j] += weight - previous
        # d_i/d_j changed: rows i and j rescale wholesale, and the
        # (·, i)/(·, j) entries of every neighbour row move with them
        self._dirty.add(i)
        self._dirty.add(j)
        self._dirty.update(self._adjacency[i])
        self._dirty.update(self._adjacency[j])

    def delta(self) -> GraphDelta:
        """Snapshot of the change journal (non-destructive)."""
        return GraphDelta(
            base_tasks=self._clean_tasks,
            num_tasks=self.num_tasks,
            dirty_rows=tuple(sorted(self._dirty)),
        )

    def mark_clean(self) -> GraphDelta:
        """Return the pending delta and reset the journal.

        Call after feeding the delta into basis repair (or after a cold
        rebuild): subsequent deltas are relative to this point.
        """
        pending = self.delta()
        self._dirty.clear()
        self._clean_tasks = self.num_tasks
        return pending

    def neighbors(self, task_id: TaskId) -> dict[TaskId, float]:
        """Adjacency dict of a task (live view; do not mutate)."""
        return self._adjacency[task_id]

    def degree(self, task_id: TaskId) -> float:
        """Weighted degree ``D_ii``."""
        return self._degree[task_id]

    def normalized_row(self, task_id: TaskId) -> dict[TaskId, float]:
        """Row of ``S' = D^{-1/2} S D^{-1/2}`` under *current* degrees."""
        d_i = self._degree[task_id]
        if d_i <= 0:
            return {}
        out: dict[TaskId, float] = {}
        for j, weight in self._adjacency[task_id].items():
            d_j = self._degree[j]
            if d_j > 0:
                out[j] = weight / (d_i * d_j) ** 0.5
        return out

    def normalized_csr(self) -> "sparse.csr_matrix":
        """Freeze the current normalisation ``S'`` into a CSR snapshot.

        Bridges the streaming regime to the offline machinery: a frozen
        snapshot can feed :class:`repro.core.ppr.PPRBasis` (vectorised,
        parallel, cached) or :class:`repro.core.indexes.ScalableAssigner`
        once an insertion phase settles.  Later insertions do not touch
        the returned matrix.
        """
        import numpy as np
        from scipy import sparse

        n = self.num_tasks
        degree = np.asarray(self._degree, dtype=np.float64)
        with np.errstate(divide="ignore"):
            inv_sqrt = 1.0 / np.sqrt(degree)
        inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
        counts = np.fromiter(
            (len(adj) for adj in self._adjacency), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(indptr[-1], dtype=np.int64)
        data = np.empty(indptr[-1], dtype=np.float64)
        for i, adj in enumerate(self._adjacency):
            start = indptr[i]
            for offset, (j, weight) in enumerate(sorted(adj.items())):
                indices[start + offset] = j
                data[start + offset] = weight * inv_sqrt[i] * inv_sqrt[j]
        return sparse.csr_matrix((data, indices, indptr), shape=(n, n))

    def similarity_csr(self) -> "sparse.csr_matrix":
        """Freeze the raw (unnormalised) similarity matrix ``S``.

        Feed this into :class:`repro.core.graph.SimilarityGraph` when
        handing a settled snapshot to the batch estimator — it applies
        its own normalisation and validation.
        """
        import numpy as np
        from scipy import sparse

        n = self.num_tasks
        counts = np.fromiter(
            (len(adj) for adj in self._adjacency), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(indptr[-1], dtype=np.int64)
        data = np.empty(indptr[-1], dtype=np.float64)
        for i, adj in enumerate(self._adjacency):
            start = indptr[i]
            for offset, (j, weight) in enumerate(sorted(adj.items())):
                indices[start + offset] = j
                data[start + offset] = weight
        return sparse.csr_matrix((data, indices, indptr), shape=(n, n))


class StreamingAssigner:
    """Indexed assignment over a growing task set (Section 6.5).

    The per-worker sparse-estimate indexes and the frontier stack are
    identical to :class:`repro.core.indexes.ScalableAssigner`; the
    difference is the graph backend (growable) and the
    :meth:`insert_tasks` entry point that feeds new batches into the
    live frontier.  Estimation updates use the one-hop Neumann
    truncation (the paper's bounded-neighbour inference), recomputed
    from current degrees so newly inserted edges take effect
    immediately.
    """

    def __init__(
        self,
        graph: GrowableGraph,
        damping: float,
        k: int = 3,
        prior: float = 0.5,
    ) -> None:
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if k <= 0:
            raise ValueError("k must be positive")
        self.graph = graph
        self.damping = damping
        self.k = k
        self.prior = prior
        self._indexes: dict[WorkerId, SparseEstimateIndex] = {}
        self._seen: dict[WorkerId, set[TaskId]] = {}
        self._votes: dict[TaskId, int] = {}
        self._completed: set[TaskId] = set()
        self._frontier: list[TaskId] = list(
            range(graph.num_tasks - 1, -1, -1)
        )

    # ------------------------------------------------------------------
    def insert_tasks(
        self,
        count: int,
        edges: Iterable[tuple[TaskId, TaskId, float]] = (),
    ) -> range:
        """Insert a batch of tasks (and their similarity edges) live.

        New tasks join the assignment frontier immediately; edges may
        connect new tasks to each other or to existing ones.
        """
        new_ids = self.graph.add_tasks(count)
        for i, j, weight in edges:
            self.graph.add_edge(i, j, weight)
        # newest first, matching the LIFO frontier of the batch before
        self._frontier.extend(reversed(new_ids))
        return new_ids

    # ------------------------------------------------------------------
    def _one_hop_row(self, task_id: TaskId) -> dict[TaskId, float]:
        c = self.damping
        row = {task_id: 1.0 - c}
        for j, value in self.graph.normalized_row(task_id).items():
            contribution = c * (1.0 - c) * value
            row[j] = row.get(j, 0.0) + contribution
        return row

    def observe(
        self, worker_id: WorkerId, task_id: TaskId, observed: float
    ) -> None:
        """Fold one observation into the worker's sparse estimate."""
        index = self._indexes.get(worker_id)
        if index is None:
            index = SparseEstimateIndex(prior=self.prior)
            self._indexes[worker_id] = index
        row = self._one_hop_row(task_id)
        updates: dict[TaskId, float] = {}
        for neighbor, mass in row.items():
            if mass <= 0:
                continue
            weight = min(mass, 1.0)
            blended = weight * observed + (1.0 - weight) * self.prior
            previous = index.value(neighbor)
            if index.observed(neighbor):
                blended = 0.5 * (previous + blended)
            updates[neighbor] = min(max(blended, 0.0), 1.0)
        index.update(updates)

    def request(self, worker_id: WorkerId) -> TaskId | None:
        """Serve the best available task (indexed; |T|-independent)."""
        seen = self._seen.setdefault(worker_id, set())
        index = self._indexes.get(worker_id)
        excluded = seen | self._completed
        best = None
        if index is not None:
            best = index.pop_best(excluded)
        if best is not None and index.value(best) > self.prior:
            seen.add(best)
            return best
        while self._frontier:
            candidate = self._frontier.pop()
            if candidate in self._completed or candidate in seen:
                continue
            if best is not None and index is not None:
                # serving a frontier candidate instead: re-push the
                # heap entry pop_best consumed, or the task could never
                # again be served by estimate order
                index.restore(best)
            seen.add(candidate)
            return candidate
        if best is not None:
            seen.add(best)
            return best
        return None

    def answer(
        self, worker_id: WorkerId, task_id: TaskId, observed: float
    ) -> None:
        """Record an answer: vote count, completion, estimate update."""
        votes = self._votes.get(task_id, 0) + 1
        self._votes[task_id] = votes
        if votes >= self.k:
            self._completed.add(task_id)
        self.observe(worker_id, task_id, observed)

    @property
    def num_completed(self) -> int:
        return len(self._completed)
