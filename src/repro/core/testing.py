"""Worker performance testing (Section 4.1, Step 3).

When a worker is not part of any top worker set — because she is new, or
because she already exhausted the tasks she is demonstrably good at —
the framework *actively* tests her on a microtask chosen by two factors:

1. **Uncertainty** of the current accuracy estimate on the task,
   modelled as the variance of a Beta(N₁+1, N₀+1) posterior where N₁/N₀
   count the worker's (estimated-)correct/incorrect completions among
   tasks similar to the candidate (its graph neighbourhood):

       Var = (N₁+1)(N₀+1) / ((N₁+N₀+2)² (N₁+N₀+3))

2. **Quality of the co-workers** already assigned to the candidate task:
   a test wedged between accurate workers yields a trustworthy consensus
   to grade the tested worker against.

The score is a convex combination of the normalised variance (its
maximum, 1/12, occurs at the uninformed Beta(1, 1)) and the mean
estimated accuracy of the existing workers.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.graph import SimilarityGraph
from repro.core.types import TaskId, WorkerId

if TYPE_CHECKING:
    from repro.core.assigner import TaskState

#: Maximum variance of a Beta(a, b) with a, b >= 1 (attained at a=b=1).
_MAX_BETA_VARIANCE = 1.0 / 12.0

#: Callback returning a worker's sparse observed accuracies ``q^w``.
ObservedLookup = Callable[[WorkerId], Mapping[TaskId, float]]


def beta_variance(n_correct: float, n_incorrect: float) -> float:
    """Variance of Beta(n_correct + 1, n_incorrect + 1).

    ``n_correct`` / ``n_incorrect`` may be fractional: Eq. (5) grades
    consensus answers with probabilities, so counts are expected values.
    """
    if n_correct < 0 or n_incorrect < 0:
        raise ValueError("counts must be non-negative")
    a = n_correct + 1.0
    b = n_incorrect + 1.0
    total = a + b
    return (a * b) / (total * total * (total + 1.0))


class PerformanceTester:
    """Chooses test microtasks for idle workers.

    Parameters
    ----------
    graph:
        Similarity graph, used to define "tasks similar to the candidate"
        for the uncertainty term.
    observed_of:
        Lookup for a worker's observed accuracies on globally completed
        tasks.
    uncertainty_weight:
        Weight of the variance factor; the co-worker quality factor gets
        the complement.
    prior_accuracy:
        Accuracy assumed for co-workers without an estimate.
    """

    def __init__(
        self,
        graph: SimilarityGraph,
        observed_of: ObservedLookup,
        uncertainty_weight: float = 0.5,
        prior_accuracy: float = 0.5,
    ) -> None:
        if not 0 <= uncertainty_weight <= 1:
            raise ValueError("uncertainty_weight must be in [0, 1]")
        self.graph = graph
        self.observed_of = observed_of
        self.uncertainty_weight = uncertainty_weight
        self.prior_accuracy = prior_accuracy

    # ------------------------------------------------------------------
    def uncertainty(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        observed: Mapping[TaskId, float] | None = None,
    ) -> float:
        """Normalised Beta-posterior variance of ``w`` around ``task_id``.

        Counts the worker's performance over the candidate task's graph
        neighbourhood (the candidate itself included).  ``observed`` may
        be supplied to avoid recomputing ``q^w`` per candidate.
        """
        if observed is None:
            observed = self.observed_of(worker_id)
        neighborhood = {task_id} | {
            j for j, _ in self.graph.neighbors(task_id)
        }
        n_correct = 0.0
        n_total = 0.0
        for neighbor in neighborhood:
            q = observed.get(neighbor)
            if q is None:
                continue
            n_correct += q
            n_total += 1.0
        variance = beta_variance(n_correct, n_total - n_correct)
        return variance / _MAX_BETA_VARIANCE

    def coworker_quality(
        self,
        task_state: "TaskState",
        accuracies: Mapping[WorkerId, np.ndarray],
    ) -> float:
        """Mean estimated accuracy of workers already on the task."""
        values = []
        for worker_id in task_state.assigned_workers:
            vector = accuracies.get(worker_id)
            if vector is None:
                values.append(self.prior_accuracy)
            else:
                values.append(float(vector[task_state.task_id]))
        if not values:
            return 0.0
        return float(np.mean(values))

    def score(
        self,
        worker_id: WorkerId,
        task_state: "TaskState",
        accuracies: Mapping[WorkerId, np.ndarray],
        observed: Mapping[TaskId, float] | None = None,
    ) -> float:
        """Combined test desirability of a candidate task."""
        w = self.uncertainty_weight
        return w * self.uncertainty(
            worker_id, task_state.task_id, observed=observed
        ) + (1.0 - w) * self.coworker_quality(task_state, accuracies)

    def choose_test_task(
        self,
        worker_id: WorkerId,
        states: Sequence["TaskState"],
        accuracies: Mapping[WorkerId, np.ndarray],
    ) -> TaskId | None:
        """Best test task for an idle worker, or None when nothing fits.

        Candidates are tasks that other workers have been assigned to
        (so a graded consensus will exist) and that the worker has not
        answered herself.
        """
        best_task: TaskId | None = None
        best_score = -1.0
        observed = self.observed_of(worker_id)
        for state in states:
            if state.has_seen(worker_id):
                continue
            if not state.assigned_workers:
                continue
            value = self.score(
                worker_id, state, accuracies, observed=observed
            )
            if value > best_score or (
                value == best_score
                and best_task is not None
                and state.task_id < best_task
            ):
                best_score = value
                best_task = state.task_id
        return best_task
