"""Core value types shared across the iCrowd reproduction.

The paper (Section 2.1) models crowdsourcing as a set of binary
*microtasks* answered by a dynamic set of *workers*.  Each microtask is
assigned to ``k`` workers and resolved by majority voting.  These types
are deliberately small, immutable where possible, and free of behaviour
that belongs to the estimator / assigner layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

#: Identifier of a microtask within a :class:`TaskSet` (dense, 0-based).
TaskId = int

#: Opaque worker identifier (the simulated platform uses ``"w<N>"`` strings,
#: mirroring MTurk worker ids such as ``A2YEBGPVQ41ESM``).
WorkerId = str


class AnswerOutcome(enum.Enum):
    """What a policy did with a submitted answer.

    Real platforms re-deliver submissions (client retries, duplicated
    POSTs), so ``on_answer`` must be idempotent: the first delivery of a
    ``(worker, task)`` vote is ``ACCEPTED``; any repeat is reported as
    ``DUPLICATE`` and leaves the policy's state untouched; answers that
    can no longer count (e.g. the task already reached consensus after
    the slot was requeued) are ``IGNORED``.
    """

    ACCEPTED = "accepted"
    DUPLICATE = "duplicate"
    IGNORED = "ignored"

    @property
    def accepted(self) -> bool:
        return self is AnswerOutcome.ACCEPTED


class Label(enum.IntEnum):
    """Binary answer to a microtask (paper restricts to YES/NO choices)."""

    NO = 0
    YES = 1

    def flipped(self) -> "Label":
        """Return the opposite label."""
        return Label.NO if self is Label.YES else Label.YES

    @classmethod
    def from_bool(cls, value: bool) -> "Label":
        """Map ``True`` to YES and ``False`` to NO."""
        return cls.YES if value else cls.NO


@dataclass(frozen=True)
class Task:
    """A binary microtask.

    Attributes
    ----------
    task_id:
        Dense index of the task in its :class:`TaskSet`.
    text:
        Natural-language payload shown to workers; tokenised for the
        similarity graph (Table 1 of the paper shows entity-resolution
        pairs with their token sets).
    domain:
        Topical domain of the task (e.g. ``"NBA"``).  Ground truth for
        evaluation of accuracy diversity; *never* revealed to the
        estimator, which must discover structure via the similarity
        graph.
    truth:
        Gold answer, used by the evaluation harness and by the warm-up
        component when the task is chosen as a qualification microtask.
    features:
        Optional numeric feature vector (e.g. POI coordinates) for the
        Euclidean similarity variant of Section 3.3.
    """

    task_id: TaskId
    text: str
    domain: str
    truth: Label
    features: tuple[float, ...] | None = None

    def tokens(self) -> frozenset[str]:
        """Lower-cased token set of the task text (cached per call site)."""
        return frozenset(self.text.lower().split())


@dataclass(frozen=True)
class Answer:
    """A single worker's submitted answer to a task."""

    task_id: TaskId
    worker_id: WorkerId
    label: Label
    #: Monotone submission sequence number assigned by the platform.
    seq: int = 0

    def is_correct(self, truth: Label) -> bool:
        """Whether this answer matches the supplied gold label."""
        return self.label == truth


@dataclass(frozen=True)
class Assignment:
    """A pending (worker, task) pairing produced by an assignment policy."""

    task_id: TaskId
    worker_id: WorkerId
    #: True when the assignment is a qualification / performance test
    #: rather than a contribution toward the task's ``k`` votes.
    is_test: bool = False


@dataclass
class TaskResult:
    """Aggregated outcome of a globally completed task."""

    task_id: TaskId
    consensus: Label
    votes_yes: int
    votes_no: int

    @property
    def total_votes(self) -> int:
        return self.votes_yes + self.votes_no

    @property
    def margin(self) -> int:
        """Vote margin of the winning label (ties return zero)."""
        return abs(self.votes_yes - self.votes_no)


class TaskSet:
    """An ordered, indexable collection of :class:`Task` objects.

    Provides O(1) lookup by id and convenience accessors used throughout
    the estimator and the experiment harness.
    """

    def __init__(self, tasks: Sequence[Task]) -> None:
        tasks = list(tasks)
        for expected, task in enumerate(tasks):
            if task.task_id != expected:
                raise ValueError(
                    f"task ids must be dense 0..n-1; got {task.task_id} at "
                    f"position {expected}"
                )
        self._tasks: list[Task] = tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, task_id: TaskId) -> Task:
        return self._tasks[task_id]

    def ids(self) -> range:
        """All task ids in order."""
        return range(len(self._tasks))

    def domains(self) -> list[str]:
        """Distinct domains in first-appearance order."""
        seen: dict[str, None] = {}
        for task in self._tasks:
            seen.setdefault(task.domain, None)
        return list(seen)

    def by_domain(self, domain: str) -> list[Task]:
        """All tasks belonging to ``domain``."""
        return [t for t in self._tasks if t.domain == domain]

    def truths(self) -> list[Label]:
        """Gold labels in task-id order."""
        return [t.truth for t in self._tasks]


@dataclass
class VoteState:
    """Mutable per-task voting state maintained by the platform.

    Tracks who answered what, and whether the task has reached its
    consensus ("globally completed" in the paper's terminology).
    """

    task_id: TaskId
    k: int
    answers: list[Answer] = field(default_factory=list)

    def workers(self) -> set[WorkerId]:
        """Workers that have already answered this task."""
        return {a.worker_id for a in self.answers}

    def add(self, answer: Answer) -> None:
        """Record an answer; a worker may vote at most once per task."""
        if answer.worker_id in self.workers():
            raise ValueError(
                f"worker {answer.worker_id} already answered task "
                f"{self.task_id}"
            )
        self.answers.append(answer)

    @property
    def votes_yes(self) -> int:
        return sum(1 for a in self.answers if a.label is Label.YES)

    @property
    def votes_no(self) -> int:
        return sum(1 for a in self.answers if a.label is Label.NO)

    def is_complete(self) -> bool:
        """True once ``k`` answers are collected (global completion)."""
        return len(self.answers) >= self.k

    def consensus(self) -> Label:
        """Majority label; ties break toward NO (k is odd in the paper)."""
        return Label.YES if self.votes_yes > self.votes_no else Label.NO

    def result(self) -> TaskResult:
        """Freeze the current tallies into a :class:`TaskResult`."""
        return TaskResult(
            task_id=self.task_id,
            consensus=self.consensus(),
            votes_yes=self.votes_yes,
            votes_no=self.votes_no,
        )
