"""Dataset substrate: synthetic stand-ins for the paper's two corpora.

The paper evaluates on two MTurk datasets (Table 4):

- **YahooQA** — 110 question-answer quality-judgement microtasks across
  six domains (FIFA, Books & Authors, Diet & Fitness, Home Schooling,
  Hunting, Philosophy), 25 workers.
- **ItemCompare** — 360 item-comparison microtasks across four domains
  (Food, NBA, Auto, Country; 90 each), 53 workers.

Neither corpus is public, so generators synthesise tasks with the same
shape: per-domain vocabularies make in-domain tasks textually similar
(which the similarity graph must discover), ground truth is derived from
an internal knowledge base, and sizes match Table 4 exactly.
"""

from repro.datasets.base import DatasetSpec, build_task_set
from repro.datasets.itemcompare import ITEMCOMPARE_DOMAINS, make_itemcompare
from repro.datasets.poi import NEIGHBORHOODS, make_poi
from repro.datasets.yahooqa import YAHOOQA_DOMAINS, make_yahooqa

__all__ = [
    "DatasetSpec",
    "ITEMCOMPARE_DOMAINS",
    "NEIGHBORHOODS",
    "YAHOOQA_DOMAINS",
    "build_task_set",
    "make_itemcompare",
    "make_poi",
    "make_yahooqa",
]
