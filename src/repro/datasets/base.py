"""Shared dataset plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.types import Label, Task, TaskSet


@dataclass(frozen=True)
class DatasetSpec:
    """Statistics of a generated dataset (mirrors the paper's Table 4)."""

    name: str
    num_tasks: int
    num_domains: int
    domains: tuple[str, ...]

    @classmethod
    def of(cls, name: str, tasks: TaskSet) -> "DatasetSpec":
        domains = tuple(tasks.domains())
        return cls(
            name=name,
            num_tasks=len(tasks),
            num_domains=len(domains),
            domains=domains,
        )


def build_task_set(
    rows: Sequence[tuple[str, str, Label]],
) -> TaskSet:
    """Build a :class:`TaskSet` from ``(text, domain, truth)`` rows."""
    return TaskSet(
        [
            Task(task_id=i, text=text, domain=domain, truth=truth)
            for i, (text, domain, truth) in enumerate(rows)
        ]
    )
