"""Synthetic ItemCompare dataset (Section 6.1, dataset 2).

The paper's ItemCompare corpus asks workers to compare two items on a
domain-specific criterion: which food has more calories, which NBA team
won more championships, which car is more fuel efficient, which country
has larger total area.  Four domains × 90 tasks = 360 microtasks.

This generator carries a small internal knowledge base per domain —
items with a numeric attribute — and emits binary microtasks of the
form "Does <A> <criterion-verb> than <B>?" whose ground truth follows
from the attribute values.  Domain-specific vocabulary in the task text
makes in-domain tasks textually similar, which is what the similarity
graph must pick up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Label, TaskSet
from repro.datasets.base import build_task_set
from repro.utils.rng import spawn_rng

ITEMCOMPARE_DOMAINS: tuple[str, ...] = ("Food", "NBA", "Auto", "Country")

#: Tasks per domain in the paper (Table 4: 360 tasks over 4 domains).
TASKS_PER_DOMAIN = 90


@dataclass(frozen=True)
class ComparisonDomain:
    """One comparison domain: items, attribute, and question phrasing."""

    name: str
    question: str  # format string with {a} and {b}
    items: tuple[tuple[str, float], ...]  # (item name, attribute value)


_FOOD_ITEMS = (
    ("chocolate bar", 546.0), ("honey", 304.0), ("avocado", 160.0),
    ("banana", 89.0), ("apple", 52.0), ("cheddar cheese", 403.0),
    ("peanut butter", 588.0), ("white rice", 130.0), ("salmon fillet", 208.0),
    ("broccoli", 34.0), ("butter", 717.0), ("olive oil", 884.0),
    ("yogurt", 59.0), ("bagel", 250.0), ("almonds", 579.0),
    ("watermelon", 30.0), ("fried chicken", 246.0), ("tofu", 76.0),
    ("oatmeal", 68.0), ("ice cream", 207.0),
)

_NBA_ITEMS = (
    ("boston celtics", 17.0), ("los angeles lakers", 16.0),
    ("chicago bulls", 6.0), ("golden state warriors", 6.0),
    ("san antonio spurs", 5.0), ("philadelphia 76ers", 3.0),
    ("detroit pistons", 3.0), ("miami heat", 3.0),
    ("milwaukee bucks", 1.0), ("houston rockets", 2.0),
    ("new york knicks", 2.0), ("dallas mavericks", 1.0),
    ("cleveland cavaliers", 1.0), ("portland trail blazers", 1.0),
    ("atlanta hawks", 1.0), ("washington wizards", 1.0),
    ("oklahoma city thunder", 1.0), ("utah jazz", 0.0),
    ("phoenix suns", 0.0), ("brooklyn nets", 0.0),
)

_AUTO_ITEMS = (
    ("toyota camry sedan", 28.0), ("lexus es sedan", 24.0),
    ("honda civic", 33.0), ("ford f150 truck", 19.0),
    ("toyota prius hybrid", 52.0), ("chevrolet tahoe suv", 16.0),
    ("honda accord", 30.0), ("bmw 328i sedan", 26.0),
    ("jeep wrangler", 18.0), ("tesla model s", 98.0),
    ("nissan altima", 31.0), ("subaru outback wagon", 26.0),
    ("mazda mx5 roadster", 29.0), ("dodge ram truck", 17.0),
    ("audi a4 sedan", 27.0), ("hyundai elantra", 32.0),
    ("kia soul", 27.0), ("volkswagen golf", 29.0),
    ("porsche 911 coupe", 21.0), ("mini cooper", 30.0),
)

_COUNTRY_ITEMS = (
    ("russia", 17098.0), ("canada", 9985.0), ("china", 9597.0),
    ("united states", 9834.0), ("brazil", 8516.0), ("australia", 7692.0),
    ("india", 3287.0), ("argentina", 2780.0), ("kazakhstan", 2725.0),
    ("algeria", 2382.0), ("mexico", 1964.0), ("indonesia", 1905.0),
    ("iran", 1648.0), ("mongolia", 1564.0), ("peru", 1285.0),
    ("egypt", 1010.0), ("nigeria", 924.0), ("france", 644.0),
    ("spain", 506.0), ("japan", 378.0),
)

DOMAINS: dict[str, ComparisonDomain] = {
    "Food": ComparisonDomain(
        name="Food",
        question=(
            "food nutrition compare calories does {a} contain more "
            "calories per serving than {b}"
        ),
        items=_FOOD_ITEMS,
    ),
    "NBA": ComparisonDomain(
        name="NBA",
        question=(
            "nba basketball compare championships did the {a} win more "
            "nba championship titles than the {b}"
        ),
        items=_NBA_ITEMS,
    ),
    "Auto": ComparisonDomain(
        name="Auto",
        question=(
            "auto car compare fuel economy is the {a} more fuel "
            "efficient mpg than the {b}"
        ),
        items=_AUTO_ITEMS,
    ),
    "Country": ComparisonDomain(
        name="Country",
        question=(
            "geography country compare area does {a} have larger total "
            "land area than {b}"
        ),
        items=_COUNTRY_ITEMS,
    ),
}


def _domain_tasks(
    domain: ComparisonDomain,
    count: int,
    rng: np.random.Generator,
) -> list[tuple[str, str, Label]]:
    """Sample ``count`` distinct ordered item pairs with derived truth."""
    n = len(domain.items)
    pairs: list[tuple[int, int]] = [
        (i, j) for i in range(n) for j in range(n) if i != j
    ]
    order = rng.permutation(len(pairs))
    rows: list[tuple[str, str, Label]] = []
    for idx in order:
        i, j = pairs[int(idx)]
        (name_a, value_a) = domain.items[i]
        (name_b, value_b) = domain.items[j]
        if value_a == value_b:
            continue  # ambiguous comparisons have no clean ground truth
        text = domain.question.format(a=name_a, b=name_b)
        rows.append((text, domain.name, Label.from_bool(value_a > value_b)))
        if len(rows) == count:
            break
    if len(rows) < count:
        raise ValueError(
            f"domain {domain.name} cannot supply {count} unambiguous pairs"
        )
    return rows


def make_itemcompare(
    seed: int = 0,
    tasks_per_domain: int = TASKS_PER_DOMAIN,
) -> TaskSet:
    """Generate the ItemCompare-like task set (360 tasks by default).

    Tasks are grouped by domain in the paper's order (Food, NBA, Auto,
    Country); truth is balanced by the random pair orientation.
    """
    rng = spawn_rng(seed, "itemcompare")
    rows: list[tuple[str, str, Label]] = []
    for domain_name in ITEMCOMPARE_DOMAINS:
        rows.extend(_domain_tasks(DOMAINS[domain_name], tasks_per_domain, rng))
    return build_task_set(rows)


def truth_of_pair(domain_name: str, item_a: str, item_b: str) -> Label:
    """Ground truth for an explicit pair (exposed for examples/tests)."""
    domain = DOMAINS.get(domain_name)
    if domain is None:
        raise ValueError(f"unknown ItemCompare domain {domain_name!r}")
    values = dict(domain.items)
    try:
        value_a, value_b = values[item_a], values[item_b]
    except KeyError as exc:
        raise ValueError(f"unknown item {exc.args[0]!r}") from exc
    if value_a == value_b:
        raise ValueError(f"pair ({item_a}, {item_b}) is ambiguous")
    return Label.from_bool(value_a > value_b)
