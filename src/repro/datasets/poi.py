"""Synthetic POI verification dataset (Section 3.3, case 2).

The paper's second similarity family covers microtasks representable as
multi-dimensional features — its example is verifying place names for
points-of-interest on a map, with similarity ``1 − dist/τ`` over
Euclidean distance.  This generator synthesises such a workload:
clustered POIs (one spatial cluster per neighbourhood/domain) whose
name-verification tasks carry coordinate features, exercising the
``euclidean`` similarity path end-to-end.
"""

from __future__ import annotations


from repro.core.types import Label, Task, TaskSet
from repro.utils.rng import spawn_rng

#: Neighbourhood name → cluster centre (arbitrary map units).
NEIGHBORHOODS: dict[str, tuple[float, float]] = {
    "Downtown": (0.0, 0.0),
    "Harbor": (10.0, 0.5),
    "University": (0.5, 10.0),
    "Airport": (10.0, 10.0),
}

_PLACE_KINDS = (
    "coffee shop", "pharmacy", "bookstore", "bakery", "gym",
    "bank branch", "post office", "noodle bar", "clinic", "hotel",
)


def make_poi(
    seed: int = 0,
    tasks_per_neighborhood: int = 25,
    cluster_std: float = 0.8,
) -> TaskSet:
    """Generate POI name-verification microtasks with coordinates.

    Each task asks whether a displayed place name matches the POI at
    the given coordinates; half the tasks show the true name (YES) and
    half a name swapped within the neighbourhood (NO).  Coordinates are
    Gaussian around the neighbourhood centre, so the Euclidean
    similarity graph clusters by neighbourhood.
    """
    if tasks_per_neighborhood <= 0:
        raise ValueError("tasks_per_neighborhood must be positive")
    if cluster_std <= 0:
        raise ValueError("cluster_std must be positive")
    rng = spawn_rng(seed, "poi")
    tasks: list[Task] = []
    for name, (cx, cy) in NEIGHBORHOODS.items():
        for i in range(tasks_per_neighborhood):
            x = float(rng.normal(cx, cluster_std))
            y = float(rng.normal(cy, cluster_std))
            kind = _PLACE_KINDS[int(rng.integers(0, len(_PLACE_KINDS)))]
            truthful = i % 2 == 0
            if truthful:
                shown = kind
            else:
                wrong = int(rng.integers(0, len(_PLACE_KINDS) - 1))
                if _PLACE_KINDS[wrong] == kind:
                    wrong = (wrong + 1) % len(_PLACE_KINDS)
                shown = _PLACE_KINDS[wrong]
            tasks.append(
                Task(
                    task_id=len(tasks),
                    text=(
                        f"verify poi {name.lower()} is the place at this "
                        f"location a {shown}"
                    ),
                    domain=name,
                    truth=Label.from_bool(truthful),
                    features=(x, y),
                )
            )
    return TaskSet(tasks)
