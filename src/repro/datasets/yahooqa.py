"""Synthetic YahooQA dataset (Section 6.1, dataset 1).

The paper's YahooQA corpus asks workers whether a user-generated answer
appropriately addresses its question; ground truth came from Yahoo
Answers ratings.  110 tasks across six domains: 2006 FIFA World Cup
(FF), Books & Authors (BA), Diet & Fitness (DF), Home Schooling (HS),
Hunting (HT) and Philosophy (PH).

This generator carries, per domain, a bank of question templates and a
pool of *relevant* and *irrelevant* answers.  A YES task pairs a
question with a relevant answer; a NO task pairs it with an irrelevant
one (an answer drawn from the same domain but addressing a different
question, which is what low-rated Yahoo answers look like).  Domain
vocabulary keeps in-domain tasks similar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Label, TaskSet
from repro.datasets.base import build_task_set
from repro.utils.rng import spawn_rng

YAHOOQA_DOMAINS: tuple[str, ...] = (
    "FIFA",
    "Books&Authors",
    "Diet&Fitness",
    "HomeSchooling",
    "Hunting",
    "Philosophy",
)

#: Paper total: 110 question-answer pairs over six domains.
TOTAL_TASKS = 110


@dataclass(frozen=True)
class QADomain:
    """Question/answer bank for one domain."""

    name: str
    #: (question, matching answer) pairs; mismatches are drawn across rows.
    qa_pairs: tuple[tuple[str, str], ...]


_FIFA = QADomain(
    name="FIFA",
    qa_pairs=(
        ("who won the 2006 fifa world cup final in berlin",
         "italy won the 2006 world cup beating france on penalties"),
        ("which player won the golden ball award at the 2006 world cup",
         "zinedine zidane received the golden ball award"),
        ("who was the top scorer of the 2006 fifa world cup",
         "miroslav klose scored five goals to win the golden boot"),
        ("which stadium hosted the 2006 world cup final match",
         "the olympiastadion in berlin hosted the final"),
        ("who did germany beat in the 2006 world cup third place match",
         "germany defeated portugal three one in stuttgart"),
        ("why was zidane sent off in the 2006 world cup final",
         "zidane headbutted materazzi and received a red card"),
        ("how many teams played in the 2006 fifa world cup finals",
         "thirty two national teams competed in germany"),
        ("who scored for italy in the 2006 world cup final",
         "marco materazzi scored the equaliser header for italy"),
        ("which goalkeeper won the lev yashin award in 2006",
         "gianluigi buffon was named best goalkeeper"),
        ("who was the youngest player at the 2006 world cup tournament",
         "theo walcott of england was the youngest squad member"),
    ),
)

_BOOKS = QADomain(
    name="Books&Authors",
    qa_pairs=(
        ("who wrote the novel pride and prejudice",
         "jane austen wrote pride and prejudice in 1813"),
        ("which author created the detective sherlock holmes",
         "arthur conan doyle created sherlock holmes"),
        ("who wrote the russian novel war and peace",
         "leo tolstoy is the author of war and peace"),
        ("which novel begins with the line call me ishmael",
         "moby dick by herman melville opens with call me ishmael"),
        ("who wrote one hundred years of solitude",
         "gabriel garcia marquez wrote the novel about the buendia family"),
        ("which author wrote the dystopian novel 1984",
         "george orwell published nineteen eighty four in 1949"),
        ("who is the author of the harry potter book series",
         "j k rowling wrote the seven harry potter novels"),
        ("which poet wrote the epic paradise lost",
         "john milton composed paradise lost in blank verse"),
        ("who wrote the great gatsby about the jazz age",
         "f scott fitzgerald wrote the great gatsby"),
        ("which playwright wrote hamlet and macbeth",
         "william shakespeare wrote both tragedies"),
    ),
)

_DIET = QADomain(
    name="Diet&Fitness",
    qa_pairs=(
        ("how many calories should i eat daily to lose weight safely",
         "a deficit of about five hundred calories per day is safe"),
        ("what exercise burns the most calories per hour",
         "running at a fast pace burns the most calories"),
        ("is a high protein diet good for building muscle",
         "protein supports muscle repair aim for lean meat and legumes"),
        ("how much water should i drink every day for fitness",
         "about two litres daily more when exercising heavily"),
        ("what are good warm up stretches before a workout",
         "dynamic stretches like leg swings and arm circles work well"),
        ("how often should a beginner lift weights each week",
         "two to three strength sessions weekly with rest days"),
        ("are carbohydrates bad for losing belly fat",
         "whole grain carbs are fine refined sugar is the problem"),
        ("what is a healthy body mass index range for adults",
         "a bmi between eighteen point five and twenty five"),
        ("does yoga help with weight loss and flexibility",
         "yoga improves flexibility and supports modest calorie burn"),
        ("what should i eat before a morning run for energy",
         "a banana or light toast provides quick digestible energy"),
    ),
)

_HOME = QADomain(
    name="HomeSchooling",
    qa_pairs=(
        ("how do i create a homeschool curriculum for elementary grades",
         "start from state standards and pick a curriculum package"),
        ("is homeschooling legal in every state of the usa",
         "yes although notification and assessment rules vary by state"),
        ("how many hours a day should homeschool lessons last",
         "three to four focused hours is typical for young children"),
        ("how can homeschooled kids get social interaction",
         "co ops sports teams and community classes provide socialising"),
        ("what records should homeschool parents keep for transcripts",
         "keep attendance logs work samples and graded assessments"),
        ("can homeschooled students apply to college and universities",
         "yes colleges accept homeschool transcripts and test scores"),
        ("what math curriculum works best for homeschooling",
         "saxon and singapore math are popular structured options"),
        ("how do i teach reading to my homeschooled kindergartner",
         "daily phonics practice with levelled readers works well"),
        ("do homeschool parents need a teaching certificate",
         "most states do not require parents to hold certificates"),
        ("how much does homeschooling cost per year on average",
         "typical families spend three hundred to a thousand dollars"),
    ),
)

_HUNT = QADomain(
    name="Hunting",
    qa_pairs=(
        ("what caliber rifle is best for deer hunting",
         "a 308 or 30 06 rifle is a reliable deer caliber"),
        ("when does whitetail deer hunting season usually open",
         "most states open rifle season in october or november"),
        ("do i need a license to hunt wild turkey",
         "yes a state hunting license and turkey tag are required"),
        ("what is the best time of day to hunt deer",
         "dawn and dusk when deer move to feed"),
        ("how should i scent control before a bow hunt",
         "wash gear in scent free soap and hunt downwind"),
        ("what broadhead weight works for elk archery hunting",
         "a fixed blade broadhead around one hundred grains"),
        ("is it safe to hunt from a tree stand alone",
         "wear a full body harness and tell someone your location"),
        ("how do i field dress a deer after the harvest",
         "cool the carcass quickly by removing entrails promptly"),
        ("what shotgun choke is best for duck hunting",
         "a modified choke patterns steel shot well for ducks"),
        ("how far can a compound bow accurately shoot",
         "most hunters keep ethical shots inside forty yards"),
    ),
)

_PHIL = QADomain(
    name="Philosophy",
    qa_pairs=(
        ("who first proposed heliocentrism in modern astronomy",
         "nicolaus copernicus a renaissance mathematician and astronomer"),
        ("what did descartes mean by i think therefore i am",
         "thinking proves the existence of the thinking self"),
        ("which philosopher wrote the republic about justice",
         "plato wrote the republic describing the ideal state"),
        ("what is kant categorical imperative in ethics",
         "act only on maxims you could will as universal law"),
        ("who developed the theory of forms in ancient greece",
         "plato argued perfect forms exist beyond the physical world"),
        ("what is utilitarianism according to john stuart mill",
         "actions are right as they promote the greatest happiness"),
        ("which philosopher said god is dead and what did he mean",
         "nietzsche meant traditional values had lost their power"),
        ("what is the allegory of the cave about",
         "prisoners mistake shadows for reality until one is freed"),
        ("who was socrates and why was he executed in athens",
         "socrates was tried for impiety and corrupting the youth"),
        ("what is existentialism according to jean paul sartre",
         "existence precedes essence humans define their own meaning"),
    ),
)

QA_DOMAINS: dict[str, QADomain] = {
    d.name: d for d in (_FIFA, _BOOKS, _DIET, _HOME, _HUNT, _PHIL)
}

#: Per-domain task counts summing to 110 (the paper reports only the
#: total; we spread it nearly evenly across the six domains).
DOMAIN_SIZES: dict[str, int] = {
    "FIFA": 19,
    "Books&Authors": 19,
    "Diet&Fitness": 18,
    "HomeSchooling": 18,
    "Hunting": 18,
    "Philosophy": 18,
}


def _domain_tasks(
    domain: QADomain, count: int, rng: np.random.Generator
) -> list[tuple[str, str, Label]]:
    """Emit ``count`` QA-judgement tasks, roughly half YES half NO."""
    rows: list[tuple[str, str, Label]] = []
    n = len(domain.qa_pairs)
    questions = [q for q, _ in domain.qa_pairs]
    answers = [a for _, a in domain.qa_pairs]
    # alternate YES (matching answer) and NO (shuffled-in wrong answer)
    q_order = [int(i) for i in rng.permutation(n)]
    idx = 0
    make_yes = True
    while len(rows) < count:
        qi = q_order[idx % n]
        question = questions[qi]
        if make_yes:
            answer = answers[qi]
            label = Label.YES
        else:
            # pick a different question's answer from the same domain
            wrong = int(rng.integers(0, n - 1))
            if wrong >= qi:
                wrong += 1
            answer = answers[wrong]
            label = Label.NO
        text = f"question {question} answer {answer}"
        rows.append((text, domain.name, label))
        make_yes = not make_yes
        idx += 1
    return rows


def make_yahooqa(seed: int = 0) -> TaskSet:
    """Generate the YahooQA-like task set (110 tasks, 6 domains)."""
    rng = spawn_rng(seed, "yahooqa")
    rows: list[tuple[str, str, Label]] = []
    for domain_name in YAHOOQA_DOMAINS:
        rows.extend(
            _domain_tasks(
                QA_DOMAINS[domain_name], DOMAIN_SIZES[domain_name], rng
            )
        )
    return build_task_set(rows)
