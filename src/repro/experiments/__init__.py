"""Experiment harness: one entry point per table and figure.

Every experiment of the paper's Section 6 / Appendix D has a function
here that builds the workload, runs the relevant approaches on the
simulated platform, and returns a structured result whose
``format_table()`` prints the same rows/series the paper reports.

Index (see DESIGN.md §4 for the full mapping):

- :func:`table4_datasets` — dataset statistics,
- :func:`fig6_diversity` — per-worker per-domain accuracy diversity,
- :func:`fig7_qualification` — RandomQF vs InfQF,
- :func:`fig8_adaptive` — QF-Only vs BestEffort vs Adapt,
- :func:`fig9_comparison` — iCrowd vs RandomMV / RandomEM / AvgAccPV,
- :func:`fig10_scalability` — assignment time vs |T| and neighbours,
- :func:`fig12_similarity` — similarity measure × threshold,
- :func:`fig13_alpha` — the α sweep,
- :func:`fig14_assignment_size` — the k sweep,
- :func:`table5_approximation` — greedy vs exact assignment error,
- :func:`fig15_distribution` — assignment share of the top workers,
- :func:`perf_offline` — offline-phase timings (kernel, parallel
  basis, cache) on the current machine,
- :func:`chaos_resilience` — the interaction loop under injected
  faults (duplicates, late answers, blackouts, malformed submits),
- :func:`run_telemetry` — one fully instrumented run with span
  timings, metric counters and an optional JSONL trace.
"""

from repro.experiments.metrics import (
    ConfusionCounts,
    CostReport,
    confusion,
    cost_report,
)
from repro.experiments.setups import ExperimentSetup, make_setup
from repro.experiments.runner import RunResult, run_approach
from repro.experiments.figures import (
    fig6_diversity,
    fig7_qualification,
    fig8_adaptive,
    fig9_comparison,
    fig10_insertion,
    fig10_scalability,
    fig12_similarity,
    fig13_alpha,
    fig14_assignment_size,
    fig15_distribution,
    table4_datasets,
    table5_approximation,
)
from repro.experiments.perf import PerfOfflineResult, perf_offline
from repro.experiments.chaos import ChaosResult, ChaosRow, chaos_resilience
from repro.experiments.telemetry import TelemetryResult, run_telemetry

__all__ = [
    "ChaosResult",
    "ChaosRow",
    "ConfusionCounts",
    "CostReport",
    "ExperimentSetup",
    "PerfOfflineResult",
    "TelemetryResult",
    "RunResult",
    "chaos_resilience",
    "fig6_diversity",
    "fig7_qualification",
    "fig8_adaptive",
    "fig9_comparison",
    "fig10_insertion",
    "fig10_scalability",
    "fig12_similarity",
    "fig13_alpha",
    "fig14_assignment_size",
    "fig15_distribution",
    "confusion",
    "cost_report",
    "make_setup",
    "perf_offline",
    "run_approach",
    "run_telemetry",
    "table4_datasets",
    "table5_approximation",
]
