"""Chaos experiment: the interaction loop under injected faults.

The paper's evaluation assumes a well-behaved crowd market: every
issued assignment comes back exactly once, in time, well-formed.  Real
deployments (and our :class:`repro.platform.faults.FaultInjector`)
break all four assumptions.  This experiment sweeps a fault rate over
the Figure 9 workload and verifies the resilient interaction layer's
contract:

- the job still reaches ``is_finished()`` (leases requeue lost slots),
- no worker is ever paid twice for the same microtask,
- accuracy stays close to the fault-free run (duplicates and late
  answers are dropped before they can distort consensus),
- the lease/fault counters account for every injected event.

``python -m repro.cli chaos`` reproduces it from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import build_policy
from repro.experiments.setups import make_setup
from repro.platform import FaultConfig, SimulatedPlatform


@dataclass
class ChaosRow:
    """One (approach, fault-rate) run of the resilience sweep."""

    approach: str
    rate: float
    accuracy: float
    finished: bool
    stalled: bool
    steps: int
    total_cost: float
    double_payments: int
    leases: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)


@dataclass
class ChaosResult:
    """Fault-rate sweep results (see :func:`chaos_resilience`)."""

    dataset: str
    seed: int
    rows: list[ChaosRow] = field(default_factory=list)

    def baseline_accuracy(self, approach: str) -> float:
        """The approach's fault-free (rate 0) accuracy."""
        for row in self.rows:
            # repro-lint: disable=RL004 -- rate 0.0 is the exact control sentinel
            if row.approach == approach and row.rate == 0.0:
                return row.accuracy
        raise ValueError(f"no fault-free run recorded for {approach!r}")

    def format_table(self) -> str:
        """Render the sweep as an aligned text table."""
        lines = [
            f"Chaos resilience on {self.dataset} (seed {self.seed})",
            "",
            f"{'approach':<12}{'rate':<7}{'acc':<7}{'Δacc':<8}"
            f"{'done':<6}{'steps':<7}{'cost':<8}{'dup-pay':<8}"
            f"{'expired':<9}{'late-drop':<10}{'dup-drop':<9}",
        ]
        for row in self.rows:
            delta = row.accuracy - self.baseline_accuracy(row.approach)
            lines.append(
                f"{row.approach:<12}{row.rate:<7.2f}{row.accuracy:<7.3f}"
                f"{delta:<+8.3f}{str(row.finished):<6}{row.steps:<7}"
                f"{row.total_cost:<8.2f}{row.double_payments:<8}"
                f"{row.leases.get('expired', 0):<9}"
                f"{row.faults.get('late_dropped', 0):<10}"
                f"{row.faults.get('duplicates_dropped', 0):<9}"
            )
        lines += [
            "",
            "Δacc is relative to the fault-free run; dup-pay counts "
            "payment attempts the ledger refused (must stay 0 on the "
            "resilient loop).",
        ]
        return "\n".join(lines)


def chaos_resilience(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
    approaches: tuple[str, ...] = ("iCrowd", "RandomMV"),
    abandonment: float = 0.0,
    assignment_timeout: int = 50,
) -> ChaosResult:
    """Sweep fault rates over the shared workload.

    Each ``rate`` configures :meth:`FaultConfig.chaos`: duplicate and
    late submissions at ``rate``, malformed submits at ``rate/2``,
    blackout bursts at ``rate/5``.  Rate 0 is the fault-free control
    every other row is compared against.
    """
    setup = make_setup(dataset, seed=seed, scale=scale)
    exclude = set(setup.qualification_tasks)
    result = ChaosResult(dataset=dataset, seed=seed)
    for approach in approaches:
        for rate in rates:
            policy = build_policy(approach, setup)
            pool = setup.fresh_pool(run_tag=f"chaos-{approach}-{rate}")
            faults = (
                FaultConfig.disabled()
                # repro-lint: disable=RL004 -- rate 0.0 is the exact control sentinel
                if rate == 0.0
                else FaultConfig.chaos(rate, seed=seed)
            )
            platform = SimulatedPlatform(
                setup.tasks,
                pool,
                policy,
                abandonment=abandonment,
                assignment_timeout=assignment_timeout,
                faults=faults,
                seed=seed,
            )
            report = platform.run()
            result.rows.append(
                ChaosRow(
                    approach=approach,
                    rate=rate,
                    accuracy=report.accuracy(setup.tasks, exclude=exclude),
                    finished=report.finished,
                    stalled=report.stalled,
                    steps=report.steps,
                    total_cost=report.total_cost,
                    double_payments=report.payments.duplicate_attempts,
                    leases=report.leases.as_dict(),
                    faults=report.faults.as_dict(),
                )
            )
    return result
