"""One entry point per table / figure of the paper's evaluation.

Every function returns a small result object carrying the raw numbers
plus ``format_table()``, which renders the same rows/series the paper
reports.  Benchmarks in ``benchmarks/`` call these functions and print
the tables; EXPERIMENTS.md records paper-vs-measured for each.

Scale note: the default ``scale`` arguments are reduced so the full
bench suite completes in minutes; pass ``scale=1.0`` (and the Table 4
worker counts) for paper-sized runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.baselines import RandomMV
from repro.core.assigner import TaskState, compute_top_worker_sets, greedy_assign
from repro.core.config import GraphConfig, ICrowdConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.indexes import ScalableAssigner
from repro.core.optimal import approximation_error
from repro.core.qualification import select_random_tasks
from repro.datasets import make_itemcompare, make_yahooqa
from repro.datasets.base import DatasetSpec
from repro.experiments.runner import run_approach
from repro.experiments.setups import ExperimentSetup, make_setup
from repro.platform import SimulatedPlatform
from repro.utils.rng import spawn_rng


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def _mean_accuracy_row(
    approach: str,
    setup: ExperimentSetup,
    tag: str,
    repetitions: int,
    k: int | None = None,
) -> dict[str, float]:
    """Domain + ALL accuracies averaged over answer-noise repetitions.

    A single platform run carries substantial variance (each worker
    answer is one Bernoulli draw and assignment feedback compounds
    early luck), so every reported cell is a mean of ``repetitions``
    runs with independent answer noise on identical workloads.
    """
    totals: dict[str, float] = {}
    for rep in range(repetitions):
        result = run_approach(
            approach, setup, k=k, run_tag=f"{tag}-rep{rep}"
        )
        for domain, value in result.domain_accuracy.items():
            totals[domain] = totals.get(domain, 0.0) + value
        totals["ALL"] = totals.get("ALL", 0.0) + result.overall_accuracy
    return {key: value / repetitions for key, value in totals.items()}


def _accuracy_table(
    title: str,
    domains: list[str],
    rows: dict[str, dict[str, float]],
) -> str:
    """Render an approach × domain accuracy table with an ALL column."""
    header = ["approach"] + domains + ["ALL"]
    widths = [max(14, len(h) + 1) for h in header]
    lines = [title, "".join(h.ljust(w) for h, w in zip(header, widths))]
    for name, accs in rows.items():
        cells = [name] + [
            _fmt(accs.get(d, float("nan"))) for d in domains
        ] + [_fmt(accs.get("ALL", float("nan")))]
        lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 4 — dataset statistics
# ----------------------------------------------------------------------
@dataclass
class Table4Result:
    specs: list[DatasetSpec]
    num_workers: dict[str, int]

    def format_table(self) -> str:
        """Render the statistics table."""
        lines = ["Table 4: Dataset statistics"]
        lines.append(
            f"{'dataset':<14}{'# microtasks':<14}{'# domains':<12}"
            f"{'# workers':<10}"
        )
        for spec in self.specs:
            lines.append(
                f"{spec.name:<14}{spec.num_tasks:<14}{spec.num_domains:<12}"
                f"{self.num_workers[spec.name]:<10}"
            )
        return "\n".join(lines)


def table4_datasets(seed: int = 7) -> Table4Result:
    """Regenerate Table 4 (paper: 110/6/25 and 360/4/53)."""
    yahoo = make_yahooqa(seed=seed)
    item = make_itemcompare(seed=seed)
    return Table4Result(
        specs=[
            DatasetSpec.of("YahooQA", yahoo),
            DatasetSpec.of("ItemCompare", item),
        ],
        num_workers={"YahooQA": 25, "ItemCompare": 53},
    )


# ----------------------------------------------------------------------
# Figure 6 — accuracy diversity across domains
# ----------------------------------------------------------------------
@dataclass
class Fig6Result:
    dataset: str
    domains: list[str]
    #: worker → domain → (num answers, accuracy)
    per_worker: dict[str, dict[str, tuple[int, float]]]
    min_completed: int

    def diversity_span(self, worker_id: str) -> float:
        """Max-minus-min domain accuracy of one worker."""
        accs = [a for _, a in self.per_worker[worker_id].values()]
        return max(accs) - min(accs) if accs else 0.0

    def format_table(self) -> str:
        """Render the per-worker accuracy table."""
        lines = [
            f"Figure 6 ({self.dataset}): per-worker per-domain accuracy "
            f"(workers with > {self.min_completed} microtasks)"
        ]
        header = ["worker"] + self.domains
        widths = [max(12, len(h) + 1) for h in header]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for worker_id, accs in sorted(self.per_worker.items()):
            cells = [worker_id] + [
                _fmt(accs[d][1]) if d in accs else "-" for d in self.domains
            ]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def fig6_diversity(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    min_completed: int = 20,
) -> Fig6Result:
    """Empirical accuracy diversity from a random answer collection.

    Mirrors Section 6.2: collect redundant answers (the paper set 10
    assignments per HIT), then compute each worker's accuracy per domain
    against ground truth.
    """
    setup = make_setup(dataset, seed=seed, scale=scale)
    policy = RandomMV(setup.tasks, k=9, seed=seed)
    pool = setup.fresh_pool("fig6")
    report = SimulatedPlatform(setup.tasks, pool, policy).run()
    domains = setup.tasks.domains()
    stats: dict[str, dict[str, list[int]]] = {}
    for event in report.events.answers():
        task = setup.tasks[event.task_id]
        per_domain = stats.setdefault(event.worker_id, {})
        counts = per_domain.setdefault(task.domain, [0, 0])
        counts[0] += 1
        if event.label == task.truth:
            counts[1] += 1
    per_worker: dict[str, dict[str, tuple[int, float]]] = {}
    for worker_id, per_domain in stats.items():
        total = sum(c[0] for c in per_domain.values())
        if total <= min_completed:
            continue
        per_worker[worker_id] = {
            domain: (c[0], c[1] / c[0]) for domain, c in per_domain.items()
        }
    return Fig6Result(
        dataset=dataset,
        domains=domains,
        per_worker=per_worker,
        min_completed=min_completed,
    )


# ----------------------------------------------------------------------
# Figure 7 — effect of qualification selection (RandomQF vs InfQF)
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    dataset: str
    domains: list[str]
    accuracies: dict[str, dict[str, float]]  # strategy → domain/ALL → acc

    def format_table(self) -> str:
        """Render the strategy × domain accuracy table."""
        return _accuracy_table(
            f"Figure 7 ({self.dataset}): qualification selection",
            self.domains,
            self.accuracies,
        )


def fig7_qualification(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    repetitions: int = 3,
) -> Fig7Result:
    """InfQF (Algorithm 4) vs RandomQF, both feeding full iCrowd.

    Accuracies are means over ``repetitions`` independent-noise runs.
    """
    setup = make_setup(dataset, seed=seed, scale=scale)
    rng = spawn_rng(seed, "fig7-random-qf")
    random_qual = tuple(
        select_random_tasks(
            len(setup.tasks),
            setup.config.qualification.num_qualification,
            rng,
        )
    )
    accuracies: dict[str, dict[str, float]] = {}
    for strategy, qualification in (
        ("RandomQF", random_qual),
        ("InfQF", setup.qualification_tasks),
    ):
        from dataclasses import replace

        variant = replace(setup, qualification_tasks=tuple(qualification))
        accuracies[strategy] = _mean_accuracy_row(
            "iCrowd", variant, f"fig7-{strategy}", repetitions
        )
    return Fig7Result(
        dataset=dataset,
        domains=setup.tasks.domains(),
        accuracies=accuracies,
    )


# ----------------------------------------------------------------------
# Figure 8 — effect of adaptive assignment
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    dataset: str
    domains: list[str]
    accuracies: dict[str, dict[str, float]]

    def format_table(self) -> str:
        """Render the strategy × domain accuracy table."""
        return _accuracy_table(
            f"Figure 8 ({self.dataset}): adaptive assignment strategies",
            self.domains,
            self.accuracies,
        )


def fig8_adaptive(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    repetitions: int = 3,
) -> Fig8Result:
    """QF-Only vs BestEffort vs Adapt (full iCrowd), rep-averaged."""
    setup = make_setup(dataset, seed=seed, scale=scale)
    accuracies: dict[str, dict[str, float]] = {}
    for strategy, approach in (
        ("QF-Only", "QF-Only"),
        ("BestEffort", "BestEffort"),
        ("Adapt", "iCrowd"),
    ):
        accuracies[strategy] = _mean_accuracy_row(
            approach, setup, f"fig8-{strategy}", repetitions
        )
    return Fig8Result(
        dataset=dataset,
        domains=setup.tasks.domains(),
        accuracies=accuracies,
    )


# ----------------------------------------------------------------------
# Figure 9 — comparison with existing approaches
# ----------------------------------------------------------------------
@dataclass
class Fig9Result:
    dataset: str
    domains: list[str]
    accuracies: dict[str, dict[str, float]]

    def improvement_over_best_baseline(self) -> float:
        """iCrowd's ALL-accuracy gain over the best baseline."""
        icrowd = self.accuracies["iCrowd"]["ALL"]
        best = max(
            accs["ALL"]
            for name, accs in self.accuracies.items()
            if name != "iCrowd"
        )
        return icrowd - best

    def format_table(self) -> str:
        """Render the approach × domain accuracy table."""
        return _accuracy_table(
            f"Figure 9 ({self.dataset}): comparison with baselines",
            self.domains,
            self.accuracies,
        )


def fig9_comparison(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    repetitions: int = 3,
) -> Fig9Result:
    """iCrowd vs RandomMV / RandomEM / AvgAccPV, rep-averaged."""
    setup = make_setup(dataset, seed=seed, scale=scale)
    accuracies: dict[str, dict[str, float]] = {}
    for approach in ("RandomMV", "RandomEM", "AvgAccPV", "iCrowd"):
        accuracies[approach] = _mean_accuracy_row(
            approach, setup, f"fig9-{approach}", repetitions
        )
    return Fig9Result(
        dataset=dataset,
        domains=setup.tasks.domains(),
        accuracies=accuracies,
    )


# ----------------------------------------------------------------------
# Figure 10 — scalability of assignment
# ----------------------------------------------------------------------
@dataclass
class Fig10Result:
    sizes: list[int]
    neighbor_bounds: list[int]
    #: (num_tasks, max_neighbors) → elapsed seconds for the request batch
    elapsed: dict[tuple[int, int], float]
    requests_per_size: int

    def series(self, max_neighbors: int) -> list[float]:
        """Elapsed-time series across sizes for one neighbour bound."""
        return [self.elapsed[(n, max_neighbors)] for n in self.sizes]

    def format_table(self) -> str:
        """Render the size × neighbour-bound timing table."""
        lines = [
            f"Figure 10: assignment time for {self.requests_per_size} "
            f"requests (seconds)"
        ]
        header = ["# microtasks"] + [
            f"nbrs={m}" for m in self.neighbor_bounds
        ]
        widths = [max(14, len(h) + 2) for h in header]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for n in self.sizes:
            cells = [f"{n:,}"] + [
                f"{self.elapsed[(n, m)]:.3f}" for m in self.neighbor_bounds
            ]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def random_normalized_graph(
    num_tasks: int, max_neighbors: int, seed: int
) -> sparse.csr_matrix:
    """Random bounded-degree similarity graph, symmetric-normalised.

    Mirrors the paper's Section 6.5 workload: "given a maximal neighbor
    number, say 40, and a microtask, we randomly selected 40 microtasks
    as neighbors of the microtask".
    """
    rng = spawn_rng(seed, f"fig10-graph-{num_tasks}-{max_neighbors}")
    rows = np.repeat(np.arange(num_tasks), max_neighbors)
    cols = rng.integers(0, num_tasks, size=num_tasks * max_neighbors)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    data = rng.uniform(0.5, 1.0, size=len(rows))
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(num_tasks, num_tasks)
    )
    matrix = matrix.maximum(matrix.T)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv = sparse.diags(inv_sqrt)
    return (d_inv @ matrix @ d_inv).tocsr()


#: Backwards-compatible alias (tests/benches imported the private name).
_random_normalized_graph = random_normalized_graph


def fig10_scalability(
    sizes: list[int] | None = None,
    neighbor_bounds: list[int] | None = None,
    num_workers: int = 50,
    requests_per_size: int = 2000,
    seed: int = 7,
) -> Fig10Result:
    """Assignment elapsed time as |T| grows, per neighbour bound.

    The paper inserts 0.2M tasks per step up to 1M; the default sizes
    here are scaled to keep the bench quick — pass the paper's sizes
    explicitly to run at full scale.  The expected shape is sub-linear
    growth in |T| (per-request work depends on the local neighbourhood,
    not the corpus size) and higher cost for larger neighbour bounds.
    """
    sizes = sizes or [25_000, 50_000, 100_000, 200_000]
    neighbor_bounds = neighbor_bounds or [20, 40]
    elapsed: dict[tuple[int, int], float] = {}
    for max_neighbors in neighbor_bounds:
        for num_tasks in sizes:
            normalized = _random_normalized_graph(
                num_tasks, max_neighbors, seed
            )
            assigner = ScalableAssigner(normalized, damping=0.5, k=3)
            rng = spawn_rng(seed, f"fig10-run-{num_tasks}-{max_neighbors}")
            workers = [f"w{i}" for i in range(num_workers)]
            start = time.perf_counter()
            for r in range(requests_per_size):
                worker = workers[r % num_workers]
                task = assigner.request(worker)
                if task is None:
                    break
                assigner.answer(worker, task, float(rng.random()))
            elapsed[(num_tasks, max_neighbors)] = (
                time.perf_counter() - start
            )
    return Fig10Result(
        sizes=sizes,
        neighbor_bounds=neighbor_bounds,
        elapsed=elapsed,
        requests_per_size=requests_per_size,
    )


@dataclass
class Fig10InsertionResult:
    """Per-insertion-round assignment timing (the paper's protocol)."""

    batch_size: int
    rounds: int
    requests_per_round: int
    #: elapsed seconds of the request/answer loop after each insertion
    elapsed_per_round: list[float]

    def format_table(self) -> str:
        """Render the per-round timing table."""
        lines = [
            f"Figure 10 (insertion protocol): {self.requests_per_round} "
            f"requests per round, {self.batch_size:,} tasks inserted "
            f"per round"
        ]
        lines.append(f"{'round':<8}{'total tasks':<14}{'elapsed (s)':<12}")
        for index, elapsed in enumerate(self.elapsed_per_round):
            total = self.batch_size * (index + 1)
            lines.append(f"{index + 1:<8}{total:<14,}{elapsed:<12.3f}")
        return "\n".join(lines)


def fig10_insertion(
    batch_size: int = 25_000,
    rounds: int = 4,
    max_neighbors: int = 20,
    num_workers: int = 50,
    requests_per_round: int = 2000,
    seed: int = 7,
) -> Fig10InsertionResult:
    """Section 6.5's actual protocol: grow the task set batch by batch.

    "Initially, the entire microtask set was empty.  We inserted 0.2
    million microtasks at each time and ran iCrowd to evaluate the
    efficiency."  Each round inserts ``batch_size`` tasks with random
    bounded-degree edges (which may attach to earlier batches), then
    times a fixed block of assignment requests.  The expected shape is
    a flat per-round time — per-request work is neighbourhood-local, so
    the accumulated corpus size does not matter.
    """
    from repro.core.streaming import GrowableGraph, StreamingAssigner

    rng = spawn_rng(seed, "fig10-insertion")
    graph = GrowableGraph()
    assigner = StreamingAssigner(graph, damping=0.5, k=3)
    workers = [f"w{i}" for i in range(num_workers)]
    elapsed_per_round: list[float] = []
    for _ in range(rounds):
        start_id = graph.num_tasks
        new_ids = assigner.insert_tasks(batch_size)
        # random bounded-degree edges over the *whole* current corpus
        total = graph.num_tasks
        sources = np.repeat(
            np.arange(start_id, start_id + batch_size), max_neighbors // 2
        )
        targets = rng.integers(0, total, size=len(sources))
        weights = rng.uniform(0.5, 1.0, size=len(sources))
        for i, j, w in zip(sources, targets, weights):
            if int(i) != int(j):
                graph.add_edge(int(i), int(j), float(w))
        start = time.perf_counter()
        for r in range(requests_per_round):
            worker = workers[r % num_workers]
            task = assigner.request(worker)
            if task is None:
                break
            assigner.answer(worker, task, float(rng.random()))
        elapsed_per_round.append(time.perf_counter() - start)
    return Fig10InsertionResult(
        batch_size=batch_size,
        rounds=rounds,
        requests_per_round=requests_per_round,
        elapsed_per_round=elapsed_per_round,
    )


# ----------------------------------------------------------------------
# Figure 12 — similarity measures and thresholds (Appendix D.1)
# ----------------------------------------------------------------------
@dataclass
class Fig12Result:
    dataset: str
    measures: list[str]
    thresholds: list[float]
    #: (measure, threshold) → overall accuracy
    accuracy: dict[tuple[str, float], float]

    def format_table(self) -> str:
        """Render the threshold × measure accuracy grid."""
        lines = [f"Figure 12 ({self.dataset}): similarity measure sweep"]
        header = ["threshold"] + self.measures
        widths = [max(12, len(h) + 2) for h in header]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for threshold in self.thresholds:
            cells = [f"{threshold:.1f}"] + [
                _fmt(self.accuracy[(m, threshold)]) for m in self.measures
            ]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def fig12_similarity(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.2,
    measures: list[str] | None = None,
    thresholds: list[float] | None = None,
) -> Fig12Result:
    """iCrowd accuracy per similarity measure × threshold grid."""
    measures = measures or ["jaccard", "tfidf", "topic"]
    thresholds = thresholds or [0.2, 0.4, 0.6, 0.8]
    base = make_setup(dataset, seed=seed, scale=scale)
    accuracy: dict[tuple[str, float], float] = {}
    for measure in measures:
        for threshold in thresholds:
            graph_config = GraphConfig(
                measure=measure, threshold=threshold
            )
            setup = _setup_with_graph(base, graph_config)
            result = run_approach(
                "iCrowd", setup, run_tag=f"fig12-{measure}-{threshold}"
            )
            accuracy[(measure, threshold)] = result.overall_accuracy
    return Fig12Result(
        dataset=dataset,
        measures=measures,
        thresholds=thresholds,
        accuracy=accuracy,
    )


def _setup_with_graph(
    base: ExperimentSetup, graph_config: GraphConfig
) -> ExperimentSetup:
    """Re-derive a setup on the same tasks/workers with a new graph."""
    from dataclasses import replace

    from repro.core.qualification import select_qualification_tasks

    config = ICrowdConfig(
        estimator=base.config.estimator,
        assigner=base.config.assigner,
        qualification=base.config.qualification,
        graph=graph_config,
        seed=base.seed,
    )
    graph = SimilarityGraph.from_tasks(
        list(base.tasks), graph_config, seed=base.seed
    )
    estimator = AccuracyEstimator(graph, config.estimator)
    qualification = tuple(
        select_qualification_tasks(
            estimator.basis, config.qualification.num_qualification
        )
    )
    return replace(
        base,
        config=config,
        graph=graph,
        estimator=estimator,
        qualification_tasks=qualification,
    )


# ----------------------------------------------------------------------
# Figure 13 — parameter alpha (Appendix D.2)
# ----------------------------------------------------------------------
@dataclass
class Fig13Result:
    dataset: str
    alphas: list[float]
    accuracy: dict[float, float]

    def best_alpha(self) -> float:
        """The alpha with the highest measured accuracy."""
        return max(self.alphas, key=lambda a: self.accuracy[a])

    def format_table(self) -> str:
        """Render the alpha sweep table."""
        lines = [f"Figure 13 ({self.dataset}): alpha sweep"]
        lines.append(f"{'alpha':<10}{'accuracy':<10}")
        for alpha in self.alphas:
            lines.append(f"{alpha:<10}{_fmt(self.accuracy[alpha]):<10}")
        return "\n".join(lines)


def fig13_alpha(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    alphas: list[float] | None = None,
    repetitions: int = 3,
) -> Fig13Result:
    """iCrowd accuracy across the α spectrum, rep-averaged (the paper
    settles on α = 1.0)."""
    alphas = alphas if alphas is not None else [0.0, 0.1, 1.0, 10.0, 100.0]
    base = make_setup(dataset, seed=seed, scale=scale)
    accuracy: dict[float, float] = {}
    for alpha in alphas:
        setup = base.with_config(base.config.with_alpha(alpha))
        accuracy[alpha] = _mean_accuracy_row(
            "iCrowd", setup, f"fig13-{alpha}", repetitions
        )["ALL"]
    return Fig13Result(dataset=dataset, alphas=alphas, accuracy=accuracy)


# ----------------------------------------------------------------------
# Figure 14 — assignment size k (Appendix D.3)
# ----------------------------------------------------------------------
@dataclass
class Fig14Result:
    dataset: str
    ks: list[int]
    approaches: list[str]
    accuracy: dict[tuple[str, int], float]

    def series(self, approach: str) -> list[float]:
        """Accuracy series across k for one approach."""
        return [self.accuracy[(approach, k)] for k in self.ks]

    def format_table(self) -> str:
        """Render the k × approach accuracy table."""
        lines = [f"Figure 14 ({self.dataset}): assignment size sweep"]
        header = ["k"] + self.approaches
        widths = [max(12, len(h) + 2) for h in header]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for k in self.ks:
            cells = [str(k)] + [
                _fmt(self.accuracy[(a, k)]) for a in self.approaches
            ]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def fig14_assignment_size(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.25,
    ks: list[int] | None = None,
    approaches: list[str] | None = None,
    repetitions: int = 3,
) -> Fig14Result:
    """Accuracy of the four compared approaches as k varies
    (rep-averaged)."""
    ks = ks or [1, 3, 5]
    approaches = approaches or ["RandomMV", "RandomEM", "AvgAccPV", "iCrowd"]
    setup = make_setup(dataset, seed=seed, scale=scale)
    accuracy: dict[tuple[str, int], float] = {}
    for k in ks:
        for approach in approaches:
            accuracy[(approach, k)] = _mean_accuracy_row(
                approach, setup, f"fig14-{approach}-{k}",
                repetitions, k=k,
            )["ALL"]
    return Fig14Result(
        dataset=dataset, ks=ks, approaches=approaches, accuracy=accuracy
    )


# ----------------------------------------------------------------------
# Table 5 — approximation error of the greedy assignment (Appendix D.4)
# ----------------------------------------------------------------------
@dataclass
class Table5Result:
    worker_counts: list[int]
    error_percent: dict[int, float]

    def format_table(self) -> str:
        """Render the approximation-error row."""
        lines = ["Table 5: greedy assignment approximation error"]
        header = "".join(
            f"{n:<8}" for n in ["workers"] + self.worker_counts
        )
        values = "".join(
            [f"{'err %':<8}"]
            + [f"{self.error_percent[n]:<8.2f}" for n in self.worker_counts]
        )
        lines.extend([header, values])
        return "\n".join(lines)


def table5_approximation(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 1.0,
    worker_counts: list[int] | None = None,
    k: int = 3,
    max_tasks: int = 100,
    num_snapshots: int = 10,
) -> Table5Result:
    """Greedy (Algorithm 3) vs exact optimum, varying active workers.

    Reconstructs the Appendix D.4 snapshot: sample ``max_tasks``
    still-uncompleted tasks mid-run (some already holding assignments),
    estimate worker accuracies as true per-domain accuracies plus
    estimation noise, build all top worker sets and compare the greedy
    scheme against the exact optimum.  ``num_snapshots`` independent
    snapshots are averaged (a single snapshot usually has enough
    substitutable candidates for greedy to be exactly optimal).
    """
    worker_counts = worker_counts or [3, 4, 5, 6, 7]
    setup = make_setup(dataset, seed=seed, scale=scale)
    rng = spawn_rng(seed, "table5-noise")
    errors: dict[int, float] = {}
    for count in worker_counts:
        profiles = list(setup.profiles)[:count]
        workers = [p.worker_id for p in profiles]
        snapshot_errors = []
        for _ in range(num_snapshots):
            accuracies = {}
            for profile in profiles:
                # mid-run estimates: true accuracy + estimation noise
                noise = rng.normal(0.0, 0.1, size=len(setup.tasks))
                vector = np.array(
                    [
                        profile.accuracy(task.domain)
                        for task in setup.tasks
                    ]
                )
                accuracies[profile.worker_id] = np.clip(
                    vector + noise, 0, 1
                )
            # mid-run snapshot: a subset of tasks remains, some already
            # holding assignments, so top worker sets vary in size and
            # composition like they do in a live run
            pool = [
                t
                for t in setup.tasks.ids()
                if t not in set(setup.qualification_tasks)
            ]
            chosen = rng.choice(
                pool, size=min(max_tasks, len(pool)), replace=False
            )
            states = []
            for t in sorted(int(x) for x in chosen):
                already = int(rng.integers(0, min(3, count)))
                assigned = set(
                    rng.choice(workers, size=already, replace=False)
                )
                states.append(
                    TaskState(task_id=t, k=k, assigned_workers=assigned)
                )
            candidates = compute_top_worker_sets(
                states, workers, accuracies
            )
            greedy_scheme = greedy_assign(candidates)
            snapshot_errors.append(
                approximation_error(
                    candidates, greedy_scheme, solver="bitmask"
                )
            )
        errors[count] = float(np.mean(snapshot_errors))
    return Table5Result(worker_counts=worker_counts, error_percent=errors)


# ----------------------------------------------------------------------
# Figure 15 — assignment distribution over workers (Appendix D.5)
# ----------------------------------------------------------------------
@dataclass
class Fig15Result:
    dataset: str
    total_assignments: int
    #: (worker, completed assignments), descending
    top_workers: list[tuple[str, int]]

    def top_share(self, n: int = 15) -> float:
        """Fraction of all assignments completed by the top-n workers."""
        if self.total_assignments == 0:
            return 0.0
        top = sum(count for _, count in self.top_workers[:n])
        return top / self.total_assignments

    def format_table(self) -> str:
        """Render the per-worker assignment counts."""
        lines = [
            f"Figure 15 ({self.dataset}): assignments per top worker "
            f"(total {self.total_assignments})"
        ]
        lines.append(f"{'worker':<10}{'answers':<10}{'share':<8}")
        for worker_id, count in self.top_workers[:15]:
            share = count / max(self.total_assignments, 1)
            lines.append(f"{worker_id:<10}{count:<10}{share:<8.3f}")
        lines.append(f"top-15 share: {self.top_share(15):.3f}")
        return "\n".join(lines)


def fig15_distribution(
    dataset: str = "itemcompare", seed: int = 7, scale: float = 0.33
) -> Fig15Result:
    """Assignment counts per worker for a full iCrowd run."""
    setup = make_setup(dataset, seed=seed, scale=scale)
    result = run_approach("iCrowd", setup, run_tag="fig15")
    counts = result.report.events.assignment_counts()
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return Fig15Result(
        dataset=dataset,
        total_assignments=sum(counts.values()),
        top_workers=ordered,
    )
