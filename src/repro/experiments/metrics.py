"""Evaluation metrics beyond plain accuracy.

The paper reports accuracy (ratio of correctly predicted microtasks)
and assignment elapsed time.  Entity-resolution deployments usually
also care about per-label precision/recall (a NO-biased crowd can have
high accuracy but terrible YES recall) and about *cost efficiency* —
quality bought per answer paid for.  These helpers compute all of them
from a :class:`repro.platform.PlatformReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.core.types import Label, TaskId, TaskSet


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion counts with derived metrics."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (0 on empty input)."""
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        """YES precision (1 when no YES was predicted)."""
        denominator = self.true_positive + self.false_positive
        if denominator == 0:
            return 1.0
        return self.true_positive / denominator

    @property
    def recall(self) -> float:
        """YES recall (1 when no YES exists in the gold labels)."""
        denominator = self.true_positive + self.false_negative
        if denominator == 0:
            return 1.0
        return self.true_positive / denominator

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


def confusion(
    predictions: Mapping[TaskId, Label],
    tasks: TaskSet,
    exclude: Iterable[TaskId] = (),
) -> ConfusionCounts:
    """Confusion counts of predictions against ground truth."""
    excluded = set(exclude)
    tp = fp = tn = fn = 0
    for task in tasks:
        if task.task_id in excluded:
            continue
        predicted = predictions.get(task.task_id)
        if predicted is None:
            continue
        if task.truth is Label.YES:
            if predicted is Label.YES:
                tp += 1
            else:
                fn += 1
        else:
            if predicted is Label.YES:
                fp += 1
            else:
                tn += 1
    return ConfusionCounts(tp, fp, tn, fn)


@dataclass(frozen=True)
class CostReport:
    """Quality-per-dollar summary of one run."""

    accuracy: float
    num_answers: int
    total_cost: float

    @property
    def cost_per_task_point(self) -> float:
        """Dollars spent per percentage point of accuracy (∞-safe)."""
        if self.accuracy <= 0:
            return float("inf")
        return self.total_cost / (self.accuracy * 100.0)

    @property
    def answers_per_accuracy_point(self) -> float:
        """Answers spent per percentage point of accuracy (∞-safe)."""
        if self.accuracy <= 0:
            return float("inf")
        return self.num_answers / (self.accuracy * 100.0)


def cost_report(
    report,
    tasks: TaskSet,
    exclude: Iterable[TaskId] = (),
) -> CostReport:
    """Summarise a :class:`PlatformReport`'s cost efficiency."""
    excluded = set(exclude)
    return CostReport(
        accuracy=report.accuracy(tasks, exclude=excluded),
        num_answers=report.num_answers,
        total_cost=report.total_cost,
    )
