"""Offline-phase performance measurement (the Figure 10 speed story).

Times the three layers of the fast offline phase on *this* machine:

1. **Kernel** — the vectorised :class:`repro.core.ppr.PushKernel`
   against the dict-and-deque :func:`repro.core.ppr.forward_push_reference`
   on a large bounded-degree graph (per-source wall clock).
2. **Basis** — full offline basis construction, serial ``push`` vs
   process-pool ``parallel-push`` (identical outputs, different wall
   clock; parallel only wins with real cores).
3. **Cache** — cold estimator start (compute + save) vs warm start
   (load from the on-disk basis cache), bit-identity verified.

``benchmarks/test_perf_offline.py`` runs this and records the table to
``benchmarks/results/perf_offline.txt`` plus machine-readable numbers
to ``BENCH_offline.json`` at the repo root; ``python -m repro.cli perf``
reproduces it from the command line.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.ppr import PPRBasis, PushKernel, forward_push_reference
from repro.experiments.figures import random_normalized_graph
from repro.obs.tracing import Stopwatch
from repro.utils.rng import spawn_rng


def random_similarity_graph(
    num_tasks: int, max_neighbors: int, seed: int
) -> SimilarityGraph:
    """Section 6.5's random bounded-degree workload as a raw
    :class:`SimilarityGraph` (so the estimator computes ``S'`` itself)."""
    rng = spawn_rng(seed, f"perf-graph-{num_tasks}-{max_neighbors}")
    rows = np.repeat(np.arange(num_tasks), max_neighbors)
    cols = rng.integers(0, num_tasks, size=num_tasks * max_neighbors)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    data = rng.uniform(0.5, 1.0, size=len(rows))
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(num_tasks, num_tasks)
    )
    return SimilarityGraph(matrix.maximum(matrix.T))


@dataclass
class PerfOfflineResult:
    """Measured offline-phase timings (see :func:`perf_offline`)."""

    cpu_count: int
    kernel: dict = field(default_factory=dict)
    basis: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)

    def format_table(self) -> str:
        """Render the three timing sections as an aligned text table."""
        k, b, c = self.kernel, self.basis, self.cache
        lines = [
            f"Offline-phase performance ({self.cpu_count} CPU core(s))",
            "",
            f"[kernel] forward push, {k['num_tasks']:,} tasks, "
            f"<= {k['max_neighbors']} neighbours, "
            f"epsilon={k['epsilon']:g}, {k['sample_sources']} sources",
            f"{'variant':<22}{'per-source (s)':<18}",
            f"{'reference (dict)':<22}{k['reference_per_source']:<18.4f}",
            f"{'vectorised':<22}{k['vectorized_per_source']:<18.4f}",
            f"kernel speedup: {k['speedup']:.1f}x",
            "",
            f"[basis] full offline basis, {b['num_tasks']:,} tasks, "
            f"epsilon={b['epsilon']:g}, nnz={b['nnz']:,}",
            f"{'variant':<22}{'wall clock (s)':<18}",
            f"{'serial push':<22}{b['serial_seconds']:<18.3f}",
            f"{'parallel-push (' + str(b['parallel_workers']) + 'w)':<22}"
            f"{b['parallel_seconds']:<18.3f}",
            f"parallel identical to serial: {b['identical']}; "
            f"speedup {b['speedup']:.2f}x "
            f"(expect > 1 only with >= 4 real cores)",
            "",
            f"[cache] estimator start, {c['num_tasks']:,} tasks "
            f"(Fig. 10 workload)",
            f"{'start':<22}{'wall clock (s)':<18}",
            f"{'cold (compute+save)':<22}{c['cold_seconds']:<18.3f}",
            f"{'warm (cache load)':<22}{c['warm_seconds']:<18.3f}",
            f"warm speedup: {c['speedup']:.1f}x; "
            f"bit-identical basis: {c['bit_identical']}",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """Machine-readable payload (the ``BENCH_offline.json`` schema)."""
        return {
            "bench": "perf_offline",
            "cpu_count": self.cpu_count,
            "kernel": self.kernel,
            "basis": self.basis,
            "cache": self.cache,
        }

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write :meth:`to_json_dict` to ``path``; returns the path."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")
        return path


def _bases_identical(a: PPRBasis, b: PPRBasis) -> bool:
    am, bm = a.matrix, b.matrix
    return (
        am.shape == bm.shape
        and np.array_equal(am.indptr, bm.indptr)
        and np.array_equal(am.indices, bm.indices)
        and np.array_equal(am.data, bm.data)
    )


def perf_offline(
    kernel_tasks: int = 50_000,
    kernel_neighbors: int = 20,
    kernel_sources: int = 3,
    kernel_epsilon: float = 1e-6,
    basis_tasks: int = 6_000,
    basis_neighbors: int = 12,
    basis_epsilon: float = 1e-4,
    cache_tasks: int = 5_000,
    cache_neighbors: int = 20,
    num_workers: int | None = None,
    cache_dir: str | pathlib.Path | None = None,
    seed: int = 7,
) -> PerfOfflineResult:
    """Measure kernel / parallel-basis / cache timings on this machine.

    ``num_workers`` sets the ``parallel-push`` pool size (default: cpu
    count, but at least 2 so the parallel path is always exercised).
    ``cache_dir`` defaults to a throwaway temp directory.
    """
    cpu_count = os.cpu_count() or 1
    result = PerfOfflineResult(cpu_count=cpu_count)

    # ---- layer 1: kernel vs reference ---------------------------------
    normalized = random_normalized_graph(
        kernel_tasks, kernel_neighbors, seed
    )
    sources = list(range(kernel_sources))
    with Stopwatch() as sw:
        for source in sources:
            forward_push_reference(
                normalized, source, damping=0.5, epsilon=kernel_epsilon
            )
    reference_per_source = sw.elapsed / len(sources)
    kernel = PushKernel(normalized)
    with Stopwatch() as sw:
        for source in sources:
            kernel.push(source, damping=0.5, epsilon=kernel_epsilon)
    vectorized_per_source = sw.elapsed / len(sources)
    result.kernel = {
        "num_tasks": kernel_tasks,
        "max_neighbors": kernel_neighbors,
        "epsilon": kernel_epsilon,
        "sample_sources": len(sources),
        "reference_per_source": reference_per_source,
        "vectorized_per_source": vectorized_per_source,
        "speedup": reference_per_source / max(vectorized_per_source, 1e-12),
    }

    # ---- layer 2: serial vs parallel basis ----------------------------
    normalized = random_normalized_graph(basis_tasks, basis_neighbors, seed)
    with Stopwatch() as sw:
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=basis_epsilon, method="push"
        )
    serial_seconds = sw.elapsed
    workers = num_workers or max(2, min(cpu_count, 8))
    with Stopwatch() as sw:
        parallel = PPRBasis.compute(
            normalized,
            damping=0.5,
            epsilon=basis_epsilon,
            method="parallel-push",
            num_workers=workers,
        )
    parallel_seconds = sw.elapsed
    result.basis = {
        "num_tasks": basis_tasks,
        "epsilon": basis_epsilon,
        "nnz": int(serial.nnz),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_workers": workers,
        "speedup": serial_seconds / max(parallel_seconds, 1e-12),
        "identical": _bases_identical(serial, parallel),
    }

    # ---- layer 3: cold vs warm (cached) estimator start ---------------
    graph = random_similarity_graph(cache_tasks, cache_neighbors, seed)
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(cache_dir) if cache_dir else pathlib.Path(tmp)
        config = EstimatorConfig(basis_cache_dir=str(directory))
        cold = AccuracyEstimator(graph, config, basis_method="push")
        with Stopwatch() as sw:
            cold.precompute()
        cold_seconds = sw.elapsed
        warm = AccuracyEstimator(graph, config, basis_method="push")
        with Stopwatch() as sw:
            warm.precompute()
        warm_seconds = sw.elapsed
        result.cache = {
            "num_tasks": cache_tasks,
            "max_neighbors": cache_neighbors,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / max(warm_seconds, 1e-12),
            "warm_from_cache": warm.basis_from_cache,
            "bit_identical": _bases_identical(cold.basis, warm.basis),
        }
    return result
