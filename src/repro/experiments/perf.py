"""Offline-phase performance measurement (the Figure 10 speed story).

Times the three layers of the fast offline phase on *this* machine:

1. **Kernel** — the vectorised :class:`repro.core.ppr.PushKernel`
   against the dict-and-deque :func:`repro.core.ppr.forward_push_reference`
   on a large bounded-degree graph (per-source wall clock).
2. **Basis** — full offline basis construction, serial ``push`` vs
   shared-memory ``parallel-push`` (identical outputs, different wall
   clock; parallel only wins with real cores).
3. **Sharded** — the sharded offline phase: partition cost, per-shard
   solve times, pool speedup and block-merge cost, with the merged
   basis checked bit-identical to serial.
4. **Cache** — cold estimator start (compute + save) vs warm start
   (load from the on-disk basis cache), bit-identity verified.
5. **Incremental** — the insertion-round protocol (Section 6.5): a
   clustered graph grows by one task batch per round, and per-round
   basis *repair* (:meth:`repro.core.ppr.PPRBasis.repair`, seeded by
   the :class:`~repro.core.streaming.GrowableGraph` change journal) is
   timed against a full rebuild, with the repaired basis checked
   within ``epsilon`` of the rebuild.  Both sides run serial, so this
   section is honest on any core count (no ``skipped_single_core``).
6. **Sanitizer** — the lockset race sanitizer's instrumentation tax:
   a threaded lease-ledger hammer timed clean vs under
   :func:`repro.analysis.sanitizer.sanitized`, asserting zero races
   either way.  The sanitizer is strictly opt-in, so this tax is paid
   only under ``lint --race``; the section documents its bound.

CPU counting is honest: :func:`usable_cpu_count` reports the cores this
process may actually run on (``os.sched_getaffinity``), and on a
single-usable-core box the parallel and sharded timing sections are
marked ``"skipped_single_core"`` instead of recording a meaningless
1.00× "speedup".

``benchmarks/test_perf_offline.py`` runs this and records the table to
``benchmarks/results/perf_offline.txt`` plus machine-readable numbers
to ``BENCH_offline.json`` at the repo root; ``python -m repro.cli perf``
reproduces it from the command line.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.ppr import (
    PPRBasis,
    PushKernel,
    RepairStats,
    ShardedBasis,
    assemble_csr,
    basis_push_epsilon,
    forward_push_reference,
    push_sources,
)
from repro.core.streaming import GrowableGraph
from repro.experiments.figures import random_normalized_graph
from repro.obs.profiling import profile_call
from repro.obs.tracing import Stopwatch
from repro.utils.rng import spawn_rng


def usable_cpu_count() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the machine; CI runners and container
    limits often pin the process to fewer cores, and a pool sized to
    phantom cores just adds IPC overhead.  Affinity is the honest
    number where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        return len(getaffinity(0))
    return os.cpu_count() or 1


def random_similarity_graph(
    num_tasks: int, max_neighbors: int, seed: int
) -> SimilarityGraph:
    """Section 6.5's random bounded-degree workload as a raw
    :class:`SimilarityGraph` (so the estimator computes ``S'`` itself)."""
    rng = spawn_rng(seed, f"perf-graph-{num_tasks}-{max_neighbors}")
    rows = np.repeat(np.arange(num_tasks), max_neighbors)
    cols = rng.integers(0, num_tasks, size=num_tasks * max_neighbors)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    data = rng.uniform(0.5, 1.0, size=len(rows))
    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(num_tasks, num_tasks)
    )
    return SimilarityGraph(matrix.maximum(matrix.T))


def clustered_growable_graph(
    num_tasks: int, cluster_size: int, neighbors: int, seed: int
) -> GrowableGraph:
    """A :class:`GrowableGraph` of intra-cluster random edges.

    The streaming workload the paper's insertion protocol actually
    produces: tasks arrive in topical batches, similar mostly to each
    other.  Locality is what makes incremental repair pay — on an
    expander every basis row reaches every change and repair degrades
    to a rebuild, which would be the wrong workload to measure.
    """
    rng = spawn_rng(seed, f"perf-clustered-{num_tasks}-{cluster_size}")
    graph = GrowableGraph()
    graph.add_tasks(num_tasks)
    for start in range(0, num_tasks, cluster_size):
        end = min(start + cluster_size, num_tasks)
        _add_cluster_edges(graph, range(start, end), neighbors, rng)
    return graph


def _add_cluster_edges(graph, members, neighbors, rng) -> None:
    """Wire ``neighbors`` random intra-cluster edges per member."""
    members = list(members)
    if len(members) < 2:
        return
    for i in members:
        for _ in range(neighbors):
            j = int(members[int(rng.integers(0, len(members)))])
            if j != i:
                graph.add_edge(i, j, float(rng.uniform(0.5, 1.0)))


@dataclass
class PerfOfflineResult:
    """Measured offline-phase timings (see :func:`perf_offline`)."""

    cpu_count: int
    kernel: dict = field(default_factory=dict)
    basis: dict = field(default_factory=dict)
    sharded: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    incremental: dict = field(default_factory=dict)
    #: race-sanitizer instrumentation tax on a threaded ledger hammer
    sanitizer: dict = field(default_factory=dict)
    #: sampling-profiler summary of the whole measurement, when
    #: ``perf_offline(profile_path=...)`` was set
    profile: dict = field(default_factory=dict)

    def format_table(self) -> str:
        """Render the timing sections as an aligned text table."""
        k, b, s, c = self.kernel, self.basis, self.sharded, self.cache
        lines = [
            f"Offline-phase performance "
            f"({self.cpu_count} usable CPU core(s))",
            "",
            f"[kernel] forward push, {k['num_tasks']:,} tasks, "
            f"<= {k['max_neighbors']} neighbours, "
            f"epsilon={k['epsilon']:g}, {k['sample_sources']} sources",
            f"{'variant':<22}{'per-source (s)':<18}",
            f"{'reference (dict)':<22}{k['reference_per_source']:<18.4f}",
            f"{'vectorised':<22}{k['vectorized_per_source']:<18.4f}",
            f"kernel speedup: {k['speedup']:.1f}x",
            "",
            f"[basis] full offline basis, {b['num_tasks']:,} tasks, "
            f"epsilon={b['epsilon']:g}, nnz={b['nnz']:,}",
            f"{'variant':<22}{'wall clock (s)':<18}",
            f"{'serial push':<22}{b['serial_seconds']:<18.3f}",
        ]
        if b["status"] == "skipped_single_core":
            lines.append(
                "parallel-push: skipped_single_core (1 usable core — a "
                "pool cannot beat serial here)"
            )
        else:
            lines += [
                f"{'parallel-push (' + str(b['parallel_workers']) + 'w)':<22}"
                f"{b['parallel_seconds']:<18.3f}",
                f"parallel identical to serial: {b['identical']}; "
                f"speedup {b['speedup']:.2f}x "
                f"(expect > 1 only with >= 4 real cores)",
            ]
        if s:
            shard_times = ", ".join(
                f"{t:.3f}" for t in s["shard_seconds"]
            )
            lines += [
                "",
                f"[sharded] {s['num_tasks']:,} tasks in "
                f"{s['num_shards']} shard(s) (cap {s['shard_size']}, "
                f"{s['cut_edges']} cut edge(s), "
                f"{s['split_components']} split component(s))",
                f"{'partition':<22}{s['partition_seconds']:<18.3f}",
                f"{'serial (whole graph)':<22}{s['serial_seconds']:<18.3f}",
                f"per-shard serial solve (s): [{shard_times}]",
                f"{'block merge':<22}{s['merge_seconds']:<18.3f}",
            ]
            if s["status"] == "skipped_single_core":
                lines.append(
                    "sharded pool: skipped_single_core (1 usable core); "
                    f"merged basis identical to serial: {s['identical']}"
                )
            else:
                lines += [
                    f"{'sharded pool (' + str(s['parallel_workers']) + 'w)':<22}"
                    f"{s['parallel_seconds']:<18.3f}",
                    f"merged basis identical to serial: {s['identical']}; "
                    f"speedup {s['speedup']:.2f}x",
                ]
        lines += [
            "",
            f"[cache] estimator start, {c['num_tasks']:,} tasks "
            f"(Fig. 10 workload)",
            f"{'start':<22}{'wall clock (s)':<18}",
            f"{'cold (compute+save)':<22}{c['cold_seconds']:<18.3f}",
            f"{'warm (cache load)':<22}{c['warm_seconds']:<18.3f}",
            f"warm speedup: {c['speedup']:.1f}x; "
            f"bit-identical basis: {c['bit_identical']}",
        ]
        i = self.incremental
        if i:
            rebuilds = ", ".join(
                f"{t:.3f}" for t in i["rebuild_seconds"]
            )
            repairs = ", ".join(
                f"{t:.3f}" for t in i["repair_seconds"]
            )
            lines += [
                "",
                f"[incremental] insertion rounds, "
                f"{i['num_tasks']:,} -> {i['final_tasks']:,} tasks "
                f"({i['rounds']} round(s) x {i['batch']} tasks, "
                f"clusters of {i['cluster_size']}, "
                f"epsilon={i['epsilon']:g})",
                f"{'cold basis':<22}{i['cold_seconds']:<18.3f}",
                f"per-round full rebuild (s): [{rebuilds}]",
                f"per-round repair (s):       [{repairs}]",
                f"rows re-pushed per round: {i['repaired_rows']} "
                f"(+{i['batch']} new), reused: {i['reused_rows']}",
                f"repair within epsilon of rebuild: "
                f"{i['within_epsilon']} "
                f"(max |diff| {i['max_abs_diff']:.2e}); "
                f"repair speedup {i['speedup']:.1f}x (serial vs serial)",
            ]
        z = self.sanitizer
        if z:
            lines += [
                "",
                f"[sanitizer] lockset race sanitizer tax, "
                f"{z['threads']} thread(s) x {z['rounds']} "
                f"issue/settle round(s)",
                f"{'clean':<22}{z['clean_seconds']:<18.3f}",
                f"{'instrumented':<22}{z['instrumented_seconds']:<18.3f}",
                f"overhead {z['overhead_x']:.2f}x "
                f"(opt-in: zero when not installed); "
                f"races found: {z['races']}",
            ]
        if self.profile:
            hottest = self.profile.get("top") or [{}]
            lines += [
                "",
                f"[profile] {self.profile['samples']} samples "
                f"@ {self.profile['interval_s'] * 1000:g}ms -> "
                f"{self.profile['path']} "
                f"(hottest: {hottest[0].get('function', '?')})",
            ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """Machine-readable payload (the ``BENCH_offline.json`` schema)."""
        return {
            "bench": "perf_offline",
            "cpu_count": self.cpu_count,
            "kernel": self.kernel,
            "basis": self.basis,
            "sharded": self.sharded,
            "cache": self.cache,
            "incremental": self.incremental,
            "sanitizer": self.sanitizer,
            "profile": self.profile,
        }

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write :meth:`to_json_dict` to ``path``; returns the path."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")
        return path


def _bases_identical(a: PPRBasis, b: PPRBasis) -> bool:
    am, bm = a.matrix, b.matrix
    return (
        am.shape == bm.shape
        and np.array_equal(am.indptr, bm.indptr)
        and np.array_equal(am.indices, bm.indices)
        and np.array_equal(am.data, bm.data)
    )


def _measure_sharded(
    graph: SimilarityGraph,
    basis_epsilon: float,
    workers: int,
    multicore: bool,
    shard_size: int | None,
) -> dict:
    """Time the sharded offline phase on ``graph``.

    Records partition cost and diagnostics, per-shard serial solve
    times (measured here, in the experiments layer — RL002 keeps wall
    clocks out of core), block-merge cost, bit-identity of the merged
    basis against the serial whole-graph push, and — only on a
    multicore box — the sharded pool timing and speedup.
    """
    n = graph.num_tasks
    cap = shard_size or max(256, n // (max(workers, 2) * 2))
    with Stopwatch() as sw:
        sharded_graph = graph.partition(max_shard_tasks=cap)
    partition_seconds = sw.elapsed
    index = sharded_graph.index
    normalized = graph.normalized

    with Stopwatch() as sw:
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=basis_epsilon, method="push"
        )
    serial_seconds = sw.elapsed

    # per-shard serial solve: one kernel, each shard's sources pushed
    # against the FULL matrix (the identity-preserving design)
    push_eps = basis_push_epsilon(basis_epsilon)
    kernel = PushKernel(normalized)
    shard_seconds: list[float] = []
    blocks = []
    for shard_id in range(index.num_shards):
        tasks = index.shard_tasks(shard_id)
        with Stopwatch() as sw:
            counts, cols, vals = push_sources(
                kernel, tasks, 0.5, push_eps, basis_epsilon
            )
            block = assemble_csr(counts, cols, vals, (tasks.size, n))
        shard_seconds.append(sw.elapsed)
        blocks.append(block)
    basis = ShardedBasis(index, blocks)
    with Stopwatch() as sw:
        merged = basis.to_global()
    merge_seconds = sw.elapsed

    identical = (
        np.array_equal(serial.matrix.indptr, merged.indptr)
        and np.array_equal(serial.matrix.indices, merged.indices)
        and np.array_equal(serial.matrix.data, merged.data)
    )
    section = {
        "num_tasks": n,
        "shard_size": cap,
        "num_shards": index.num_shards,
        "cut_edges": sharded_graph.cut_edges,
        "split_components": sharded_graph.split_components,
        "partition_seconds": partition_seconds,
        "serial_seconds": serial_seconds,
        "shard_seconds": shard_seconds,
        "merge_seconds": merge_seconds,
        "identical": identical,
    }
    if not multicore:
        section["status"] = "skipped_single_core"
        return section
    with Stopwatch() as sw:
        pooled = ShardedBasis.compute(
            normalized,
            index,
            damping=0.5,
            epsilon=basis_epsilon,
            num_workers=workers,
            force_parallel=True,
        )
    parallel_seconds = sw.elapsed
    pooled_global = pooled.to_global()
    section.update(
        {
            "status": "ok",
            "parallel_workers": workers,
            "parallel_seconds": parallel_seconds,
            "speedup": serial_seconds / max(parallel_seconds, 1e-12),
            "identical": section["identical"]
            and np.array_equal(pooled_global.data, merged.data)
            and np.array_equal(pooled_global.indices, merged.indices),
        }
    )
    return section


def _measure_incremental(
    stream_tasks: int,
    stream_batch: int,
    stream_rounds: int,
    cluster_size: int,
    neighbors: int,
    epsilon: float,
    seed: int,
) -> dict:
    """Time the insertion-round protocol: repair vs full rebuild.

    A clustered graph (see :func:`clustered_growable_graph`) grows by
    one ``stream_batch``-task cluster per round, bridged to the
    existing graph by a few edges.  Each round times (a) a cold
    rebuild of the whole basis and (b) an incremental repair seeded by
    the change journal, and checks the repaired basis stays within
    tolerance of the rebuild.  The tolerance is
    ``epsilon + 10·push_epsilon``: stored entries agree to push
    accuracy, but an entry just above the ``epsilon`` storage cut-off
    on one side may be truncated on the other, so stored matrices can
    legitimately differ by up to ``epsilon`` plus push slack at the
    boundary.  Both sides are serial pushes on one kernel design, so
    the comparison is honest on any core count.
    """
    rng = spawn_rng(seed, f"perf-incremental-{stream_tasks}")
    graph = clustered_growable_graph(
        stream_tasks, cluster_size, neighbors, seed
    )
    damping = 0.5
    with Stopwatch() as sw:
        basis = PPRBasis.compute(
            graph.normalized_csr(), damping,
            epsilon=epsilon, method="push",
        )
    cold_seconds = sw.elapsed
    graph.mark_clean()
    rebuild_seconds: list[float] = []
    repair_seconds: list[float] = []
    repaired_rows: list[int] = []
    reused_rows: list[int] = []
    max_abs_diff = 0.0
    for _ in range(stream_rounds):
        new_ids = graph.add_tasks(stream_batch)
        _add_cluster_edges(graph, new_ids, neighbors, rng)
        # a few bridges into the existing graph (the realistic bit:
        # new batches are not fully disconnected)
        for _ in range(4):
            i = int(new_ids[int(rng.integers(0, len(new_ids)))])
            j = int(rng.integers(0, new_ids[0]))
            graph.add_edge(i, j, float(rng.uniform(0.5, 1.0)))
        delta = graph.mark_clean()
        normalized = graph.normalized_csr()
        with Stopwatch() as sw:
            rebuilt = PPRBasis.compute(
                normalized, damping, epsilon=epsilon, method="push"
            )
        rebuild_seconds.append(sw.elapsed)
        stats = RepairStats()
        with Stopwatch() as sw:
            basis = basis.repair(
                normalized, delta.dirty_rows, damping,
                epsilon=epsilon, stats=stats,
            )
        repair_seconds.append(sw.elapsed)
        repaired_rows.append(stats.repaired_rows)
        reused_rows.append(stats.reused_rows)
        diff = basis.matrix - rebuilt.matrix
        if diff.nnz:
            max_abs_diff = max(
                max_abs_diff, float(np.abs(diff.data).max())
            )
    total_rebuild = sum(rebuild_seconds)
    total_repair = sum(repair_seconds)
    tolerance = max(epsilon + 10.0 * basis_push_epsilon(epsilon), 1e-9)
    return {
        "status": "ok",
        "num_tasks": stream_tasks,
        "final_tasks": graph.num_tasks,
        "cluster_size": cluster_size,
        "neighbors": neighbors,
        "epsilon": epsilon,
        "rounds": stream_rounds,
        "batch": stream_batch,
        "cold_seconds": cold_seconds,
        "rebuild_seconds": rebuild_seconds,
        "repair_seconds": repair_seconds,
        "repaired_rows": repaired_rows,
        "reused_rows": reused_rows,
        "max_abs_diff": max_abs_diff,
        "tolerance": tolerance,
        "within_epsilon": bool(max_abs_diff <= tolerance),
        "speedup": total_rebuild / max(total_repair, 1e-12),
    }


def _measure_sanitizer(
    threads: int = 4, rounds: int = 1_500
) -> dict:
    """Instrumentation tax of the lockset race sanitizer.

    Runs the same threaded lease-ledger hammer twice — clean, then
    under :func:`repro.analysis.sanitizer.sanitized` — and reports the
    wall-clock ratio.  The hammer's hot loop lives in
    ``repro.platform.leases``, a default sanitizer target, so this is
    the *worst case*: essentially every executed line is traced.  The
    representative <5x bound on the real hammer suite is asserted by
    ``benchmarks/test_race_overhead.py``.
    """
    from repro.analysis.sanitizer import sanitized
    from repro.platform.leases import LeaseLedger

    def hammer() -> float:
        ledger = LeaseLedger(timeout=10)

        def work(i: int) -> None:
            for k in range(rounds):
                ledger.issue(f"w{i}", k, now=0)
                ledger.settle(f"w{i}", k, now=1)

        pool = [
            threading.Thread(target=work, args=(i,))
            for i in range(threads)
        ]
        with Stopwatch() as sw:
            for t in pool:
                t.start()
            for t in pool:
                t.join()
        if ledger.stats.answered != threads * rounds:
            raise AssertionError("hammer lost updates")
        return sw.elapsed

    clean_seconds = hammer()
    with sanitized() as sanitizer:
        instrumented_seconds = hammer()
    return {
        "workload": "lease issue/settle hammer",
        "threads": threads,
        "rounds": rounds,
        "clean_seconds": clean_seconds,
        "instrumented_seconds": instrumented_seconds,
        "overhead_x": instrumented_seconds / max(clean_seconds, 1e-12),
        "races": len(sanitizer.reports),
    }


def perf_offline(
    kernel_tasks: int = 50_000,
    kernel_neighbors: int = 20,
    kernel_sources: int = 3,
    kernel_epsilon: float = 1e-6,
    basis_tasks: int = 6_000,
    basis_neighbors: int = 12,
    basis_epsilon: float = 1e-4,
    cache_tasks: int = 5_000,
    cache_neighbors: int = 20,
    num_workers: int | None = None,
    cache_dir: str | pathlib.Path | None = None,
    seed: int = 7,
    sharded: bool = True,
    shard_size: int | None = None,
    incremental: bool = True,
    stream_tasks: int = 5_000,
    stream_batch: int = 100,
    stream_rounds: int = 3,
    stream_neighbors: int = 6,
    cluster_size: int = 100,
    sanitizer: bool = True,
    profile_path: str | pathlib.Path | None = None,
) -> PerfOfflineResult:
    """Measure kernel / basis / sharded / cache / incremental timings.

    ``num_workers`` sets the pool size for the parallel measurements
    (default: the *usable* cpu count, capped at 8).  On a box with a
    single usable core the parallel and sharded-pool timings are
    skipped and marked ``"skipped_single_core"`` — an honest result
    beats a fake 1.00x.  ``sharded=False`` drops the sharded section
    (used by the fast CI smoke); ``shard_size`` caps shard sizes
    (default ``max(256, basis_tasks // (workers * 2))``).
    ``cache_dir`` defaults to a throwaway temp directory.

    ``incremental=False`` drops the insertion-round section; the
    ``stream_*`` / ``cluster_size`` knobs size its workload
    (``stream_tasks`` initial tasks in ``cluster_size``-task clusters,
    ``stream_rounds`` rounds of ``stream_batch`` new tasks each).  Its
    repair-vs-rebuild comparison is serial on both sides, so it never
    needs a multicore skip.

    ``sanitizer=False`` drops the race-sanitizer tax section (a
    threaded lease hammer timed clean vs instrumented).

    ``profile_path`` samples the whole measurement with
    :class:`repro.obs.SamplingProfiler` and writes collapsed stacks
    (flamegraph input) there; the profile summary lands in
    ``result.profile`` and the ``BENCH_offline.json`` payload.
    """
    if profile_path is not None:
        result, profiler = profile_call(
            lambda: perf_offline(
                kernel_tasks=kernel_tasks,
                kernel_neighbors=kernel_neighbors,
                kernel_sources=kernel_sources,
                kernel_epsilon=kernel_epsilon,
                basis_tasks=basis_tasks,
                basis_neighbors=basis_neighbors,
                basis_epsilon=basis_epsilon,
                cache_tasks=cache_tasks,
                cache_neighbors=cache_neighbors,
                num_workers=num_workers,
                cache_dir=cache_dir,
                seed=seed,
                sharded=sharded,
                shard_size=shard_size,
                incremental=incremental,
                stream_tasks=stream_tasks,
                stream_batch=stream_batch,
                stream_rounds=stream_rounds,
                stream_neighbors=stream_neighbors,
                cluster_size=cluster_size,
                sanitizer=sanitizer,
            )
        )
        out = profiler.write_collapsed(profile_path)
        result.profile = {"path": str(out), **profiler.summary()}
        return result
    cpu_count = usable_cpu_count()
    multicore = cpu_count >= 2
    result = PerfOfflineResult(cpu_count=cpu_count)

    # ---- layer 1: kernel vs reference ---------------------------------
    normalized = random_normalized_graph(
        kernel_tasks, kernel_neighbors, seed
    )
    sources = list(range(kernel_sources))
    with Stopwatch() as sw:
        for source in sources:
            forward_push_reference(
                normalized, source, damping=0.5, epsilon=kernel_epsilon
            )
    reference_per_source = sw.elapsed / len(sources)
    kernel = PushKernel(normalized)
    with Stopwatch() as sw:
        for source in sources:
            kernel.push(source, damping=0.5, epsilon=kernel_epsilon)
    vectorized_per_source = sw.elapsed / len(sources)
    result.kernel = {
        "num_tasks": kernel_tasks,
        "max_neighbors": kernel_neighbors,
        "epsilon": kernel_epsilon,
        "sample_sources": len(sources),
        "reference_per_source": reference_per_source,
        "vectorized_per_source": vectorized_per_source,
        "speedup": reference_per_source / max(vectorized_per_source, 1e-12),
    }

    # ---- layer 2: serial vs parallel basis ----------------------------
    normalized = random_normalized_graph(basis_tasks, basis_neighbors, seed)
    with Stopwatch() as sw:
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=basis_epsilon, method="push"
        )
    serial_seconds = sw.elapsed
    workers = num_workers or max(2, min(cpu_count, 8))
    result.basis = {
        "num_tasks": basis_tasks,
        "epsilon": basis_epsilon,
        "nnz": int(serial.nnz),
        "serial_seconds": serial_seconds,
    }
    if multicore:
        with Stopwatch() as sw:
            parallel = PPRBasis.compute(
                normalized,
                damping=0.5,
                epsilon=basis_epsilon,
                method="parallel-push",
                num_workers=workers,
                force_parallel=True,
            )
        parallel_seconds = sw.elapsed
        result.basis.update(
            {
                "status": "ok",
                "parallel_seconds": parallel_seconds,
                "parallel_workers": workers,
                "speedup": serial_seconds / max(parallel_seconds, 1e-12),
                "identical": _bases_identical(serial, parallel),
            }
        )
    else:
        result.basis["status"] = "skipped_single_core"

    # ---- layer 3: the sharded offline phase ---------------------------
    if sharded:
        shard_graph = random_similarity_graph(
            basis_tasks, basis_neighbors, seed
        )
        result.sharded = _measure_sharded(
            shard_graph, basis_epsilon, workers, multicore, shard_size
        )

    # ---- layer 4: cold vs warm (cached) estimator start ---------------
    graph = random_similarity_graph(cache_tasks, cache_neighbors, seed)
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(cache_dir) if cache_dir else pathlib.Path(tmp)
        config = EstimatorConfig(basis_cache_dir=str(directory))
        cold = AccuracyEstimator(graph, config, basis_method="push")
        with Stopwatch() as sw:
            cold.precompute()
        cold_seconds = sw.elapsed
        warm = AccuracyEstimator(graph, config, basis_method="push")
        with Stopwatch() as sw:
            warm.precompute()
        warm_seconds = sw.elapsed
        result.cache = {
            "num_tasks": cache_tasks,
            "max_neighbors": cache_neighbors,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / max(warm_seconds, 1e-12),
            "warm_from_cache": warm.basis_from_cache,
            "bit_identical": _bases_identical(cold.basis, warm.basis),
        }

    # ---- layer 5: incremental repair vs rebuild -----------------------
    if incremental:
        result.incremental = _measure_incremental(
            stream_tasks,
            stream_batch,
            stream_rounds,
            cluster_size,
            stream_neighbors,
            basis_epsilon,
            seed,
        )

    # ---- layer 6: race-sanitizer instrumentation tax ------------------
    if sanitizer:
        result.sanitizer = _measure_sanitizer()
    return result
