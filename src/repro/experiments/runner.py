"""Run one approach on the simulated platform and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    AvgAccPV,
    BestEffort,
    MatchingPolicy,
    QFOnly,
    RandomEM,
    RandomMV,
)
from repro.core.framework import ICrowd
from repro.experiments.setups import ExperimentSetup
from repro.platform import PlatformReport, SimulatedPlatform

#: Approach name → policy factory; every factory takes a setup and
#: returns a fresh policy instance bound to the shared workload.
APPROACHES = (
    "RandomMV",
    "RandomEM",
    "AvgAccPV",
    "QF-Only",
    "BestEffort",
    "Matching",
    "iCrowd",
)


@dataclass
class RunResult:
    """Metrics of one (approach, workload) platform run."""

    approach: str
    dataset: str
    overall_accuracy: float
    domain_accuracy: dict[str, float]
    steps: int
    finished: bool
    stalled: bool
    num_rejected: int
    report: PlatformReport

    def accuracy_row(self, domains: list[str]) -> list[float]:
        """Per-domain accuracies followed by the ALL column."""
        return [self.domain_accuracy.get(d, 0.0) for d in domains] + [
            self.overall_accuracy
        ]


def build_policy(name: str, setup: ExperimentSetup, k: int | None = None):
    """Instantiate an approach against the shared workload.

    All approaches share the task set, qualification ids, graph and
    assignment size, so differences in outcome are attributable to the
    assignment/estimation/aggregation strategy alone.
    """
    config = setup.config if k is None else setup.config.with_k(k)
    k_value = config.assigner.k
    qualification = list(setup.qualification_tasks)
    seed = setup.seed
    if name == "RandomMV":
        return RandomMV(
            setup.tasks, k=k_value, seed=seed, excluded_tasks=qualification
        )
    if name == "RandomEM":
        return RandomEM(
            setup.tasks, k=k_value, seed=seed, excluded_tasks=qualification
        )
    if name == "AvgAccPV":
        return AvgAccPV(
            setup.tasks,
            qualification,
            threshold=config.qualification.qualification_threshold,
            k=k_value,
            seed=seed,
        )
    # the precomputed basis is reusable whenever the estimator knobs are
    # unchanged (it depends on alpha, not on k)
    estimator = (
        setup.estimator
        if config.estimator == setup.config.estimator
        else None
    )
    framework_cls = {
        "QF-Only": QFOnly,
        "BestEffort": BestEffort,
        "Matching": MatchingPolicy,
        "iCrowd": ICrowd,
    }.get(name)
    if framework_cls is not None:
        return framework_cls(
            setup.tasks,
            config,
            graph=setup.graph,
            qualification_tasks=qualification,
            estimator=estimator,
        )
    raise ValueError(f"unknown approach {name!r}")


def run_approach(
    name: str,
    setup: ExperimentSetup,
    k: int | None = None,
    run_tag: str = "",
    max_steps: int | None = None,
) -> RunResult:
    """Run one approach to completion and score it.

    ``run_tag`` decorrelates the worker pool's answer noise between
    repetitions while keeping the same worker profiles.
    """
    policy = build_policy(name, setup, k=k)
    pool = setup.fresh_pool(run_tag=run_tag or name)
    platform = SimulatedPlatform(setup.tasks, pool, policy)
    report = platform.run(max_steps=max_steps)
    exclude = set(setup.qualification_tasks)
    return RunResult(
        approach=name,
        dataset=setup.dataset,
        overall_accuracy=report.accuracy(setup.tasks, exclude=exclude),
        domain_accuracy=report.accuracy_by_domain(
            setup.tasks, exclude=exclude
        ),
        steps=report.steps,
        finished=report.finished,
        stalled=report.stalled,
        num_rejected=len(report.rejected_workers),
        report=report,
    )
