"""Shared experiment setup: dataset + graph + qualification + workers.

Fair comparison requires every approach to see the same workload: the
same tasks, the same similarity graph, the same qualification set
(Section 6.4: "We used the same set of microtasks for qualification"),
and statistically identical worker pools.  :func:`make_setup` builds all
of that once per ``(dataset, seed, scale)`` and caches it, since graph +
basis construction dominates setup time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.core.config import GraphConfig, ICrowdConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.qualification import select_qualification_tasks
from repro.core.types import TaskId, TaskSet
from repro.datasets import make_itemcompare, make_yahooqa
from repro.workers import WorkerPool, generate_profiles
from repro.workers.profiles import WorkerProfile

#: Table 4 worker counts per dataset.
WORKER_COUNTS = {"yahooqa": 25, "itemcompare": 53}

#: Fast similarity settings used by default in the harness.  The paper's
#: best measure is cos(topic) at threshold 0.8 (Appendix D.1); on the
#: synthetic corpora, cheap lexical measures produce equivalently
#: domain-clustered graphs in a fraction of the time (Figure 12's bench
#: evaluates the full measure × threshold grid explicitly).  The
#: per-dataset choices below give ≥ 90% domain-pure edges with good
#: within-domain connectivity:
#: - ItemCompare's templated comparisons cluster cleanly under Jaccard;
#: - YahooQA's free-form QA text shares few raw tokens within a domain,
#:   so IDF-weighted cosine at a low threshold is needed: at 0.1 the
#:   graph is ~90% domain-pure and connected enough for estimation to
#:   propagate across a domain (at 0.15 it fragments into components
#:   too small to carry evidence, which starves the estimator).
FAST_GRAPH = GraphConfig(measure="jaccard", threshold=0.3)
DATASET_GRAPHS = {
    "itemcompare": FAST_GRAPH,
    "yahooqa": GraphConfig(measure="tfidf", threshold=0.1),
}


@dataclass(frozen=True, eq=False)
class ExperimentSetup:
    """Everything an experiment needs, built once and shared."""

    dataset: str
    seed: int
    tasks: TaskSet
    graph: SimilarityGraph
    config: ICrowdConfig
    qualification_tasks: tuple[TaskId, ...]
    estimator: AccuracyEstimator
    profiles: tuple[WorkerProfile, ...] = field(default_factory=tuple)

    def fresh_pool(self, run_tag: str = "") -> WorkerPool:
        """A new worker pool with independent answer noise per run tag."""
        from repro.utils.rng import stable_hash

        pool_seed = self.seed + (stable_hash(run_tag) % 10_000 if run_tag else 0)
        return WorkerPool(list(self.profiles), seed=pool_seed)

    def with_config(self, config: ICrowdConfig) -> "ExperimentSetup":
        """Variant setup with different framework knobs.

        The shared PPR basis depends on the estimator's alpha, so a
        change there rebuilds the estimator on the same graph; changes
        to k / qualification reuse it.
        """
        estimator = self.estimator
        if config.estimator != self.config.estimator:
            estimator = AccuracyEstimator(self.graph, config.estimator)
        return replace(self, config=config, estimator=estimator)


@lru_cache(maxsize=16)
def make_setup(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 1.0,
    graph_config: GraphConfig | None = None,
    num_workers: int | None = None,
) -> ExperimentSetup:
    """Build (and cache) the shared setup for one experiment workload.

    Parameters
    ----------
    dataset:
        ``"yahooqa"`` or ``"itemcompare"``.
    seed:
        Root seed shared by tasks, workers and qualification.
    scale:
        Fraction of the paper's task count (benchmarks default to a
        reduced scale so the whole suite runs in minutes; 1.0 is the
        paper's size).
    graph_config:
        Similarity measure/threshold for the shared graph.
    num_workers:
        Worker pool size (defaults to Table 4's counts).
    """
    if graph_config is None:
        graph_config = DATASET_GRAPHS.get(dataset, FAST_GRAPH)
    if dataset == "yahooqa":
        # yahooqa is already small (110 tasks); the scale knob only
        # applies to itemcompare, so it is ignored here
        tasks = make_yahooqa(seed=seed)
    elif dataset == "itemcompare":
        per_domain = max(5, round(90 * scale))
        tasks = make_itemcompare(seed=seed, tasks_per_domain=per_domain)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")

    config = ICrowdConfig(graph=graph_config, seed=seed)
    graph = SimilarityGraph.from_tasks(list(tasks), graph_config, seed=seed)
    estimator = AccuracyEstimator(graph, config.estimator)
    qualification = tuple(
        select_qualification_tasks(
            estimator.basis, config.qualification.num_qualification
        )
    )
    workers = num_workers or WORKER_COUNTS[dataset]
    if scale < 1.0 and dataset == "itemcompare":
        workers = max(10, round(workers * max(scale, 0.5)))
    profiles = tuple(generate_profiles(tasks.domains(), workers, seed=seed))
    return ExperimentSetup(
        dataset=dataset,
        seed=seed,
        tasks=tasks,
        graph=graph,
        config=config,
        qualification_tasks=qualification,
        estimator=estimator,
        profiles=profiles,
    )
