"""Structured run telemetry: one fully instrumented end-to-end run.

``run_telemetry`` wires a single :class:`repro.obs.MetricsRegistry`
through every layer — estimator, assigner, policy, lease ledger, fault
injector and the platform loop — runs one seeded crowdsourcing job, and
returns a result whose ``format_table()`` prints the per-span
count/total/mean table plus the headline counters.  When a trace path
is given, the registry streams every closed span to it as JSONL and the
run's platform events are appended afterwards, so the file parses both
as an observability trace and (via
:meth:`repro.platform.events.EventLog.from_jsonl`, which skips the span
records) as a platform event log.

``python -m repro.cli telemetry <setup>`` is the CLI wrapper.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.core.framework import ICrowd
from repro.experiments.setups import make_setup
from repro.obs.metrics import MetricsRegistry
from repro.platform.platform import PlatformReport, SimulatedPlatform

#: Metric-name prefixes surfaced in the headline-counter section of the
#: telemetry table (everything else stays in ``snapshot``).
_HEADLINE_PREFIXES = (
    "repro_platform_",
    "repro_lease_",
    "repro_fault_",
    "repro_estimator_",
    "repro_assigner_",
    "repro_ppr_",
    "repro_policy_",
)


@dataclass
class TelemetryResult:
    """Everything one instrumented run produced."""

    dataset: str
    seed: int
    scale: float
    report: PlatformReport
    #: flat metric snapshot at the end of the run
    snapshot: dict[str, float] = field(default_factory=dict)
    #: ``(name, count, total_s, mean_s)`` per span, descending total
    span_rows: list[tuple[str, int, float, float]] = field(
        default_factory=list
    )
    span_table: str = ""
    trace_path: pathlib.Path | None = None

    def headline_counters(self) -> list[tuple[str, float]]:
        """Instrumentation counters worth printing, sorted by name."""
        return sorted(
            (k, v)
            for k, v in self.snapshot.items()
            if k.startswith(_HEADLINE_PREFIXES)
        )

    def format_table(self) -> str:
        """Span timing table + headline counters, aligned for terminals."""
        lines = [
            f"Telemetry: {self.dataset} seed={self.seed} "
            f"scale={self.scale:g} — finished={self.report.finished} "
            f"steps={self.report.steps}",
            "",
            self.span_table,
            "",
            f"{'counter':<52}{'value':>12}",
        ]
        for name, value in self.headline_counters():
            rendered = (
                f"{int(value):d}" if float(value).is_integer() else f"{value:g}"
            )
            lines.append(f"{name:<52}{rendered:>12}")
        if self.trace_path is not None:
            lines.append("")
            lines.append(
                f"trace: {self.trace_path} "
                f"({len(self.report.events)} events appended)"
            )
        return "\n".join(lines)


def run_telemetry(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    trace_path: str | pathlib.Path | None = "telemetry_trace.jsonl",
    max_steps: int | None = None,
) -> TelemetryResult:
    """Run one fully instrumented iCrowd job on the simulated platform.

    The shared experiment setup caches one estimator per workload; its
    recorder is rebound to this run's registry for the duration and
    restored afterwards so later (un-instrumented) runs in the same
    process stay recorder-free.
    """
    registry = MetricsRegistry(trace_path=trace_path)
    setup = make_setup(dataset, seed=seed, scale=scale)
    previous_recorder = setup.estimator.recorder
    try:
        policy = ICrowd(
            setup.tasks,
            setup.config,
            graph=setup.graph,
            qualification_tasks=list(setup.qualification_tasks),
            estimator=setup.estimator,
            recorder=registry,
        )
        pool = setup.fresh_pool(run_tag="telemetry")
        platform = SimulatedPlatform(
            setup.tasks, pool, policy, recorder=registry
        )
        report = platform.run(max_steps=max_steps)
    finally:
        setup.estimator.recorder = previous_recorder
        registry.close()
    resolved_trace = None
    if trace_path is not None:
        resolved_trace = pathlib.Path(trace_path)
        # one file, two record families: spans first (streamed during
        # the run), then the platform events of the same run
        report.events.to_jsonl(resolved_trace, append=True)
    return TelemetryResult(
        dataset=dataset,
        seed=seed,
        scale=scale,
        report=report,
        snapshot=registry.snapshot(),
        span_rows=registry.span_summary(),
        span_table=registry.format_span_table(),
        trace_path=resolved_trace,
    )
