"""Structured run telemetry: one fully instrumented end-to-end run.

``run_telemetry`` wires a single :class:`repro.obs.MetricsRegistry`
through every layer — estimator, assigner, policy, lease ledger, fault
injector and the platform loop — runs one seeded crowdsourcing job, and
returns a result whose ``format_table()`` prints the per-span
count/total/mean table, the headline counters and the SLO verdicts.
When a trace path is given, the registry streams every closed span to
it as JSONL and the run's platform events are appended afterwards, so
the file parses both as an observability trace and (via
:meth:`repro.platform.events.EventLog.from_jsonl`, which skips the span
records) as a platform event log — exactly the combined stream
:class:`repro.obs.FlightRecorder` joins into per-task timelines.

Optional extras:

- ``faults_rate`` > 0 runs the job under
  :meth:`repro.platform.faults.FaultConfig.chaos` — a traced chaos
  round, the CI perf-smoke configuration;
- ``profile_path`` samples the run with
  :class:`repro.obs.SamplingProfiler` and writes collapsed stacks
  (flamegraph input) there;
- :meth:`TelemetryResult.as_dict` is the ``--format=json`` payload.

``python -m repro.cli telemetry <setup>`` is the CLI wrapper.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.core.framework import ICrowd
from repro.experiments.setups import make_setup
from repro.obs.ids import TraceIdSource
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SamplingProfiler
from repro.obs.slo import DEFAULT_SLOS, SLOReport, evaluate_slos
from repro.platform.faults import FaultConfig
from repro.platform.platform import PlatformReport, SimulatedPlatform

#: Metric-name prefixes surfaced in the headline-counter section of the
#: telemetry table (everything else stays in ``snapshot``).
_HEADLINE_PREFIXES = (
    "repro_platform_",
    "repro_lease_",
    "repro_fault_",
    "repro_estimator_",
    "repro_assigner_",
    "repro_ppr_",
    "repro_policy_",
)


@dataclass
class TelemetryResult:
    """Everything one instrumented run produced."""

    dataset: str
    seed: int
    scale: float
    report: PlatformReport
    #: flat metric snapshot at the end of the run
    snapshot: dict[str, float] = field(default_factory=dict)
    #: ``(name, count, total_s, mean_s)`` per span, descending total
    span_rows: list[tuple[str, int, float, float]] = field(
        default_factory=list
    )
    span_table: str = ""
    trace_path: pathlib.Path | None = None
    #: chaos rate the run was injected with (0 = clean run)
    faults_rate: float = 0.0
    #: verdicts of :data:`repro.obs.DEFAULT_SLOS` over the span
    #: histograms of this run
    slo_report: SLOReport | None = None
    profile_path: pathlib.Path | None = None
    #: :meth:`repro.obs.SamplingProfiler.summary` of the run, when
    #: profiling was requested
    profile: dict[str, object] | None = None

    def headline_counters(self) -> list[tuple[str, float]]:
        """Instrumentation counters worth printing, sorted by name."""
        return sorted(
            (k, v)
            for k, v in self.snapshot.items()
            if k.startswith(_HEADLINE_PREFIXES)
        )

    def format_table(self) -> str:
        """Span timings + headline counters + SLO verdicts, aligned."""
        chaos = (
            f" faults={self.faults_rate:g}" if self.faults_rate else ""
        )
        lines = [
            f"Telemetry: {self.dataset} seed={self.seed} "
            f"scale={self.scale:g}{chaos} — "
            f"finished={self.report.finished} "
            f"steps={self.report.steps}",
            "",
            self.span_table,
            "",
            f"{'counter':<52}{'value':>12}",
        ]
        for name, value in self.headline_counters():
            rendered = (
                f"{int(value):d}" if float(value).is_integer() else f"{value:g}"
            )
            lines.append(f"{name:<52}{rendered:>12}")
        if self.slo_report is not None:
            lines.append("")
            lines.append(self.slo_report.format_table())
        if self.profile_path is not None:
            lines.append("")
            lines.append(f"profile: {self.profile_path}")
        if self.trace_path is not None:
            lines.append("")
            lines.append(
                f"trace: {self.trace_path} "
                f"({len(self.report.events)} events appended)"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe view of the run (the ``--format=json`` payload)."""
        return {
            "dataset": self.dataset,
            "seed": self.seed,
            "scale": self.scale,
            "faults_rate": self.faults_rate,
            "finished": self.report.finished,
            "steps": self.report.steps,
            "num_answers": self.report.num_answers,
            "total_cost": self.report.total_cost,
            "spans": [
                {
                    "name": name,
                    "count": count,
                    "total_s": total,
                    "mean_s": mean,
                }
                for name, count, total, mean in self.span_rows
            ],
            "counters": dict(self.headline_counters()),
            "slo": (
                self.slo_report.as_dict()
                if self.slo_report is not None
                else None
            ),
            "profile": self.profile,
            "trace_path": (
                str(self.trace_path) if self.trace_path else None
            ),
            "profile_path": (
                str(self.profile_path) if self.profile_path else None
            ),
        }


def run_telemetry(
    dataset: str = "itemcompare",
    seed: int = 7,
    scale: float = 0.33,
    trace_path: str | pathlib.Path | None = "telemetry_trace.jsonl",
    max_steps: int | None = None,
    faults_rate: float = 0.0,
    profile_path: str | pathlib.Path | None = None,
) -> TelemetryResult:
    """Run one fully instrumented iCrowd job on the simulated platform.

    The shared experiment setup caches one estimator per workload; its
    recorder is rebound to this run's registry for the duration and
    restored afterwards so later (un-instrumented) runs in the same
    process stay recorder-free.

    ``faults_rate`` > 0 turns the job into a traced chaos round
    (:meth:`FaultConfig.chaos` seeded from ``seed``); ``profile_path``
    additionally samples the run and writes collapsed stacks there.
    Span identities come from a :class:`TraceIdSource` seeded from
    ``seed``, so the trace is replayable: same seed, same ids.
    """
    registry = MetricsRegistry(
        trace_path=trace_path, ids=TraceIdSource(seed=seed)
    )
    setup = make_setup(dataset, seed=seed, scale=scale)
    previous_recorder = setup.estimator.recorder
    profiler: SamplingProfiler | None = None
    try:
        policy = ICrowd(
            setup.tasks,
            setup.config,
            graph=setup.graph,
            qualification_tasks=list(setup.qualification_tasks),
            estimator=setup.estimator,
            recorder=registry,
        )
        pool = setup.fresh_pool(run_tag="telemetry")
        faults = (
            FaultConfig.chaos(faults_rate, seed=seed)
            if faults_rate
            else None
        )
        platform = SimulatedPlatform(
            setup.tasks, pool, policy, faults=faults, recorder=registry
        )
        if profile_path is not None:
            profiler = SamplingProfiler()
            with profiler:
                report = platform.run(max_steps=max_steps)
        else:
            report = platform.run(max_steps=max_steps)
        slo_report = evaluate_slos(registry, DEFAULT_SLOS)
    finally:
        setup.estimator.recorder = previous_recorder
        registry.close()
    resolved_trace = None
    if trace_path is not None:
        resolved_trace = pathlib.Path(trace_path)
        # one file, two record families: spans first (streamed during
        # the run), then the platform events of the same run
        report.events.to_jsonl(resolved_trace, append=True)
    resolved_profile = None
    profile_summary: dict[str, object] | None = None
    if profiler is not None and profile_path is not None:
        resolved_profile = profiler.write_collapsed(profile_path)
        profile_summary = profiler.summary()
    return TelemetryResult(
        dataset=dataset,
        seed=seed,
        scale=scale,
        report=report,
        snapshot=registry.snapshot(),
        span_rows=registry.span_summary(),
        span_table=registry.format_span_table(),
        trace_path=resolved_trace,
        faults_rate=faults_rate,
        slo_report=slo_report,
        profile_path=resolved_profile,
        profile=profile_summary,
    )
