"""Observability: metrics registry, span tracing, structured telemetry.

The paper's evaluation argues with per-round numbers — accuracy *and*
assignment elapsed time (Section 7) — and this layer makes the same
numbers visible inside a live run:

- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms, rendered to Prometheus text by
  :func:`render_prometheus` (served at ``GET /metrics`` on the HTTP
  facade);
- :meth:`MetricsRegistry.span` — nestable wall-time contexts over an
  injected monotonic clock, optionally traced to JSONL;
- :class:`NullRecorder` / :data:`NULL_RECORDER` — the zero-overhead
  disabled path every instrumented component defaults to;
- :class:`Stopwatch` — the bare timer behind the perf harness;
- :func:`get_logger` / :func:`log_event` — structured logging that
  keeps stderr clean unless a handler is attached.

The metric name catalogue lives in DESIGN.md §7.
"""

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MASS_BUCKETS,
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    resolve_recorder,
)
from repro.obs.tracing import Span, Stopwatch, TraceWriter

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "MASS_BUCKETS",
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "Span",
    "Stopwatch",
    "TraceWriter",
    "get_logger",
    "log_event",
    "render_prometheus",
    "resolve_recorder",
]
