"""Observability: metrics registry, span tracing, structured telemetry.

The paper's evaluation argues with per-round numbers — accuracy *and*
assignment elapsed time (Section 7) — and this layer makes the same
numbers visible inside a live run:

- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms, rendered to Prometheus text by
  :func:`render_prometheus` (served at ``GET /metrics`` on the HTTP
  facade);
- :meth:`MetricsRegistry.span` — nestable wall-time contexts over an
  injected monotonic clock, optionally traced to JSONL;
- :class:`NullRecorder` / :data:`NULL_RECORDER` — the zero-overhead
  disabled path every instrumented component defaults to;
- :class:`Stopwatch` — the bare timer behind the perf harness;
- :func:`get_logger` / :func:`log_event` — structured logging that
  keeps stderr clean unless a handler is attached;
- :class:`TraceIdSource` / :class:`TraceContext` — seeded span
  identities and W3C ``traceparent`` propagation across HTTP;
- :class:`FlightRecorder` — per-task lifecycle timelines joined from
  a combined span+event trace, exported as Chrome trace-event JSON;
- :class:`SamplingProfiler` — stdlib sampling profiler with
  collapsed-stack (flamegraph) output;
- :class:`SLO` / :func:`evaluate_slos` — named latency objectives
  evaluated over span histograms, with error-budget accounting.

The metric name catalogue lives in DESIGN.md §7.
"""

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.flight import (
    FlightRecorder,
    TaskTimeline,
    TimelineEntry,
    validate_chrome_trace,
)
from repro.obs.ids import (
    TRACEPARENT_HEADER,
    TraceContext,
    TraceIdSource,
    format_traceparent,
    parse_traceparent,
)
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MASS_BUCKETS,
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    resolve_recorder,
)
from repro.obs.profiling import SamplingProfiler, profile_call
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOReport,
    SLOResult,
    evaluate_slos,
    histogram_quantile,
)
from repro.obs.tracing import Span, Stopwatch, TraceWriter

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLOS",
    "MASS_BUCKETS",
    "NULL_RECORDER",
    "SLO",
    "TRACEPARENT_HEADER",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "SLOReport",
    "SLOResult",
    "SamplingProfiler",
    "Span",
    "Stopwatch",
    "TaskTimeline",
    "TimelineEntry",
    "TraceContext",
    "TraceIdSource",
    "TraceWriter",
    "evaluate_slos",
    "format_traceparent",
    "get_logger",
    "histogram_quantile",
    "log_event",
    "parse_traceparent",
    "profile_call",
    "render_prometheus",
    "resolve_recorder",
    "validate_chrome_trace",
]
