"""Prometheus text exposition of a :class:`MetricsRegistry`.

Renders version 0.0.4 of the text format — the format every Prometheus
scraper and ``promtool`` accepts — without depending on
``prometheus_client``:

- one ``# HELP`` / ``# TYPE`` header per metric family, with ``\\``
  and line feeds escaped in the help text as the spec requires,
- counters and gauges as bare samples,
- histograms as cumulative ``_bucket{le=...}`` samples plus ``_sum``
  and ``_count``, read atomically under the instrument's lock so a
  concurrent ``observe`` can never yield a torn family
  (``+Inf`` bucket ≠ ``_count``),
- non-finite sample values spelled ``+Inf`` / ``-Inf`` / ``NaN``.

``tests/obs/test_exposition.py`` holds a reference-output conformance
fixture.  :data:`CONTENT_TYPE` is the matching ``Content-Type`` header
served by ``GET /metrics`` on
:class:`repro.platform.server.ICrowdHTTPServer`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.obs.metrics import Histogram, MetricsRegistry

#: Content-Type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and line feed only (no quotes — the
    # text is not quoted on the wire).
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(
    labels: Iterable[tuple[str, str]],
    extra: dict[str, str] | None = None,
) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return _format_value(float(bound))


def _histogram_lines(name: str, metric: Histogram) -> list[str]:
    """One histogram's samples from an atomic state snapshot."""
    with metric.lock:
        bucket_counts = list(metric.bucket_counts)
        total_sum = metric.sum
        count = metric.count
    lines: list[str] = []
    cumulative = 0
    bounds = list(metric.buckets) + [math.inf]
    for bound, bucket_count in zip(bounds, bucket_counts):
        cumulative += bucket_count
        labels = _format_labels(
            metric.labels, {"le": _format_bound(bound)}
        )
        lines.append(f"{name}_bucket{labels} {cumulative}")
    labels = _format_labels(metric.labels)
    lines.append(f"{name}_sum{labels} {_format_value(total_sum)}")
    lines.append(f"{name}_count{labels} {count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric of ``registry`` in the text format."""
    families: dict[str, list] = {}
    headers: dict[str, tuple[str, str]] = {}
    for metric in registry.metrics():
        families.setdefault(metric.name, []).append(metric)
        if metric.name not in headers or metric.help_text:
            headers[metric.name] = (metric.kind, metric.help_text)
    lines: list[str] = []
    for name, metrics in families.items():
        kind, help_text = headers[name]
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in metrics:
            if isinstance(metric, Histogram):
                lines.extend(_histogram_lines(name, metric))
            else:
                labels = _format_labels(metric.labels)
                lines.append(
                    f"{name}{labels} {_format_value(float(metric.value))}"
                )
    return "\n".join(lines) + "\n"
