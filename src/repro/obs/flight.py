"""Task flight recorder: lifecycle timelines from a combined trace.

A telemetry trace file holds two record families on one JSONL stream —
``{"type": "span", ...}`` observability spans and the platform's typed
events (``assign`` / ``answer`` / ``expire`` / ``complete`` / ...).
The flight recorder joins them into **per-task lifecycle timelines**::

    created → assigned (lease opened) → submitted (lease settled)
            ↘ expired (lease requeued) ↗
    → aggregated (consensus reached) → paid

Join semantics (see DESIGN.md §7):

- ``created`` is synthesised at step 0 — tasks exist before the loop;
- an ``assign`` event *is* the lease issue: both platforms
  (:class:`repro.platform.SimulatedPlatform` and the HTTP server) open
  the lease in the same act that hands out the assignment;
- an ``answer`` event is a **settled** lease: late/duplicate deliveries
  are classified and dropped before the event log sees them, and
  accepted non-test answers are paid in the same step (``pay_once``),
  so ``submitted`` doubles as ``paid``;
- an ``expire`` event is a lease that died and whose slot was requeued
  with the policy;
- a ``complete`` event is the aggregation verdict (consensus label).

The recorder also exports the whole trace — spans *and* task lanes —
as Chrome trace-event JSON (the ``traceEvents`` array format), directly
loadable in Perfetto / ``chrome://tracing``.  Spans are placed on one
lane per ``trace_id`` with real wall-clock micros; task lifecycles are
placed on one lane per task on the platform's *step* clock (1 step =
1 ms of trace time).  The two clocks are unrelated; the export keeps
them in separate process groups so neither lies about the other.

``repro-icrowd timeline <trace.jsonl>`` is the CLI wrapper.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

#: Event-log wire tags consumed by the lifecycle join (stable API, see
#: ``repro.platform.events``).  Imported as data, not code: obs stays
#: import-independent of the platform package.
_TASK_EVENT_TYPES = frozenset({"assign", "answer", "complete", "expire"})

#: Microseconds of Chrome-trace time per platform step in task lanes.
_STEP_US = 1000.0

#: Phases a complete lifecycle must visit, in order of first occurrence.
_REQUIRED_PHASES = ("created", "assigned", "submitted", "aggregated")


@dataclass(frozen=True)
class TimelineEntry:
    """One lifecycle phase transition of one task."""

    step: int
    phase: str  #: created | assigned | submitted | expired | aggregated
    worker_id: str | None = None
    detail: str = ""


@dataclass
class TaskTimeline:
    """The full recorded lifecycle of one task."""

    task_id: int
    entries: list[TimelineEntry] = field(default_factory=list)

    def phases(self) -> list[str]:
        """Phase names in event order."""
        return [entry.phase for entry in self.entries]

    @property
    def is_complete(self) -> bool:
        """Whether the task went created → assigned → submitted →
        aggregated (possibly with expiries and re-assignments between)."""
        seen = set(self.phases())
        return all(phase in seen for phase in _REQUIRED_PHASES)

    @property
    def expiries(self) -> int:
        """Lease expiries (requeues) this task survived."""
        return sum(1 for entry in self.entries if entry.phase == "expired")

    def format_line(self) -> str:
        """One-line arrow rendering of the lifecycle."""
        hops = []
        for entry in self.entries:
            who = f"({entry.worker_id})" if entry.worker_id else ""
            hops.append(f"{entry.phase}@{entry.step}{who}")
        return f"task {self.task_id:>5}: " + " → ".join(hops)


class FlightRecorder:
    """Joins a span trace with the event log of the same run.

    Build one with :meth:`from_jsonl` (a combined telemetry trace file)
    or :meth:`from_records` (already-parsed dicts).
    """

    def __init__(
        self,
        spans: list[dict[str, object]],
        events: list[dict[str, object]],
    ) -> None:
        self.spans = spans
        self.events = events
        self._timelines: dict[int, TaskTimeline] | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_records(
        cls, records: list[dict[str, object]]
    ) -> "FlightRecorder":
        """Split parsed JSONL records into spans and task events."""
        spans = [r for r in records if r.get("type") == "span"]
        events = [
            r for r in records if r.get("type") in _TASK_EVENT_TYPES
        ]
        return cls(spans, events)

    @classmethod
    def from_jsonl(cls, path: str | pathlib.Path) -> "FlightRecorder":
        """Load a combined span+event JSONL trace file."""
        records: list[dict[str, object]] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                parsed = json.loads(line)
                if isinstance(parsed, dict):
                    records.append(parsed)
        return cls.from_records(records)

    # -- lifecycle join -------------------------------------------------
    def timelines(self) -> dict[int, TaskTimeline]:
        """Per-task lifecycle timelines, keyed by task id (cached)."""
        if self._timelines is not None:
            return self._timelines
        timelines: dict[int, TaskTimeline] = {}

        def timeline(task_id: int) -> TaskTimeline:
            if task_id not in timelines:
                timelines[task_id] = TaskTimeline(
                    task_id,
                    [TimelineEntry(step=0, phase="created")],
                )
            return timelines[task_id]

        for event in self.events:
            kind = str(event.get("type"))
            task_id = int(event.get("task_id", -1))  # type: ignore[arg-type]
            step = int(event.get("step", 0))  # type: ignore[arg-type]
            worker = event.get("worker_id")
            worker_id = str(worker) if worker is not None else None
            if kind == "assign":
                is_test = bool(event.get("is_test", False))
                timeline(task_id).entries.append(
                    TimelineEntry(
                        step=step,
                        phase="assigned",
                        worker_id=worker_id,
                        detail="test" if is_test else "lease opened",
                    )
                )
            elif kind == "answer":
                is_test = bool(event.get("is_test", False))
                timeline(task_id).entries.append(
                    TimelineEntry(
                        step=step,
                        phase="submitted",
                        worker_id=worker_id,
                        detail=(
                            "test graded"
                            if is_test
                            else "lease settled; paid"
                        ),
                    )
                )
            elif kind == "expire":
                timeline(task_id).entries.append(
                    TimelineEntry(
                        step=step,
                        phase="expired",
                        worker_id=worker_id,
                        detail="lease expired; slot requeued",
                    )
                )
            elif kind == "complete":
                timeline(task_id).entries.append(
                    TimelineEntry(
                        step=step,
                        phase="aggregated",
                        detail=f"consensus={event.get('consensus')}",
                    )
                )
        for task_timeline in timelines.values():
            task_timeline.entries.sort(
                key=lambda entry: (entry.step, _PHASE_ORDER[entry.phase])
            )
        self._timelines = timelines
        return timelines

    def incomplete_tasks(self) -> list[int]:
        """Task ids whose lifecycle never reached aggregation."""
        return sorted(
            task_id
            for task_id, timeline in self.timelines().items()
            if not timeline.is_complete
        )

    def format_table(self, task_id: int | None = None) -> str:
        """Aligned lifecycle rendering (one task, or a run summary)."""
        timelines = self.timelines()
        if task_id is not None:
            if task_id not in timelines:
                return f"task {task_id}: no recorded lifecycle"
            return timelines[task_id].format_line()
        complete = sum(1 for t in timelines.values() if t.is_complete)
        expiries = sum(t.expiries for t in timelines.values())
        lines = [
            f"Flight recorder: {len(timelines)} tasks, "
            f"{complete} complete lifecycles, {expiries} lease expiries, "
            f"{len(self.spans)} spans",
            "",
        ]
        for tid in sorted(timelines):
            lines.append(timelines[tid].format_line())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """Machine-readable summary (the ``--format=json`` payload)."""
        timelines = self.timelines()
        return {
            "tasks": len(timelines),
            "complete": sum(
                1 for t in timelines.values() if t.is_complete
            ),
            "expiries": sum(t.expiries for t in timelines.values()),
            "spans": len(self.spans),
            "timelines": {
                str(tid): [
                    {
                        "step": entry.step,
                        "phase": entry.phase,
                        "worker_id": entry.worker_id,
                        "detail": entry.detail,
                    }
                    for entry in timelines[tid].entries
                ]
                for tid in sorted(timelines)
            },
        }

    # -- Chrome trace-event export -------------------------------------
    def chrome_trace(self) -> dict[str, object]:
        """The whole trace as a Chrome trace-event JSON object."""
        trace_events: list[dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "spans"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "args": {"name": "task lifecycles (1 step = 1 ms)"},
            },
        ]
        # spans: one lane per trace_id, wall-clock micros
        lanes: dict[str, int] = {}
        for span in self.spans:
            trace_id = str(span.get("trace_id", "") or "untraced")
            lane = lanes.setdefault(trace_id, len(lanes) + 1)
            start = float(span.get("start", 0.0))  # type: ignore[arg-type]
            elapsed = float(span.get("elapsed", 0.0))  # type: ignore[arg-type]
            args = {
                key: value
                for key, value in span.items()
                if key not in ("type", "name", "start", "elapsed")
            }
            trace_events.append(
                {
                    "name": str(span.get("name", "?")),
                    "cat": "span",
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": elapsed * 1e6,
                    "pid": 1,
                    "tid": lane,
                    "args": args,
                }
            )
        for trace_id, lane in lanes.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": lane,
                    "args": {"name": f"trace {trace_id[:8]}"},
                }
            )
        # task lanes: instants per phase + one slice per open lease
        for task_id, timeline in sorted(self.timelines().items()):
            open_since: TimelineEntry | None = None
            for entry in timeline.entries:
                trace_events.append(
                    {
                        "name": entry.phase,
                        "cat": "lifecycle",
                        "ph": "i",
                        "s": "t",
                        "ts": entry.step * _STEP_US,
                        "pid": 2,
                        "tid": task_id,
                        "args": {
                            "worker": entry.worker_id,
                            "detail": entry.detail,
                        },
                    }
                )
                if entry.phase == "assigned":
                    open_since = entry
                elif entry.phase in ("submitted", "expired"):
                    if open_since is not None:
                        trace_events.append(
                            {
                                "name": "lease",
                                "cat": "lease",
                                "ph": "X",
                                "ts": open_since.step * _STEP_US,
                                "dur": max(
                                    (entry.step - open_since.step)
                                    * _STEP_US,
                                    1.0,
                                ),
                                "pid": 2,
                                "tid": task_id,
                                "args": {
                                    "worker": open_since.worker_id,
                                    "outcome": entry.phase,
                                },
                            }
                        )
                    open_since = None
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 2,
                    "tid": task_id,
                    "args": {"name": f"task {task_id}"},
                }
            )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the Chrome trace JSON to ``path``."""
        out = pathlib.Path(path)
        out.write_text(
            json.dumps(self.chrome_trace(), sort_keys=True),
            encoding="utf-8",
        )
        return out


#: Deterministic tiebreak when several phases land on one step: the
#: lifecycle can only advance in this order within a step.
_PHASE_ORDER = {
    "created": 0,
    "expired": 1,  # expiry sweeps run before assignment each step
    "assigned": 2,
    "submitted": 3,
    "aggregated": 4,
}


def validate_chrome_trace(trace: object) -> list[str]:
    """Schema-check a Chrome trace-event object; returns problems.

    Checks the invariants Perfetto's importer relies on: a top-level
    ``traceEvents`` array; every event a dict with string ``name`` and
    ``ph`` and numeric ``ts`` (metadata events excepted); ``X`` events
    carry a non-negative ``dur``; ``pid``/``tid`` are integers.  An
    empty list means the trace is loadable.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        phase = event.get("ph")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing string 'name'")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing string 'ph'")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if phase == "M":
            continue  # metadata events need no timestamp
        timestamp = event.get("ts")
        if not isinstance(timestamp, (int, float)):
            problems.append(f"{where}: 'ts' must be a number")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(
                    f"{where}: 'X' event needs a non-negative 'dur'"
                )
        if phase == "i" and event.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: instant scope must be g/p/t")
    return problems
