"""Deterministic trace/span identities and W3C context propagation.

Spans need identities to be correlated across the HTTP boundary: the
client stamps every request with a ``traceparent`` header, the server
parses it and parents its handler span under the client's span, and
every platform/framework span opened inside the handler inherits the
same ``trace_id``.  One trace then covers client retry → server
handler → lease issue → aggregation.

Identities must stay **replayable** — two runs with the same seed must
emit byte-identical traces — so they are never drawn from ``uuid4()``
or ``os.urandom``.  :class:`TraceIdSource` derives IDs from a seed via
keyed BLAKE2 over a monotone counter (repro-lint rule RL007 enforces
that core code never reaches for entropy-backed IDs instead).

The header format follows the W3C Trace Context ``traceparent`` field::

    traceparent: 00-<32 hex trace-id>-<16 hex span-id>-01

(version ``00``, flags ``01`` = sampled).  :func:`format_traceparent` /
:func:`parse_traceparent` round-trip it.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass

#: ``traceparent`` shape accepted by :func:`parse_traceparent` —
#: version-00 with lowercase hex fields, per the W3C recommendation.
_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

#: All-zero IDs are invalid per the spec.
_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16

#: HTTP header name carrying the context.
TRACEPARENT_HEADER = "traceparent"


@dataclass(frozen=True)
class TraceContext:
    """The propagated half of a span identity: ``(trace_id, span_id)``."""

    trace_id: str  #: 32 lowercase hex chars (16 bytes)
    span_id: str  #: 16 lowercase hex chars (8 bytes)

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id):
            raise ValueError(f"bad trace_id {self.trace_id!r}")
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id):
            raise ValueError(f"bad span_id {self.span_id!r}")


def format_traceparent(context: TraceContext) -> str:
    """Render ``context`` as a W3C ``traceparent`` header value."""
    return f"00-{context.trace_id}-{context.span_id}-01"


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` on absent/malformed.

    Per the spec, a malformed or all-zero header is *ignored* (the
    receiver starts a fresh trace) rather than rejected with an error —
    tracing must never turn a working request into a failing one.
    """
    if value is None:
        return None
    match = _TRACEPARENT_RE.match(value.strip())
    if match is None:
        return None
    trace_id, span_id, _flags = match.groups()
    if trace_id == _ZERO_TRACE or span_id == _ZERO_SPAN:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


class TraceIdSource:
    """Seeded, replayable source of trace and span IDs.

    IDs are ``blake2b(key=seed-derived)`` digests of a monotone
    per-source counter: collision-free within a run, stable across
    runs with the same ``(seed, tag)``, and never touching global
    entropy (``uuid4``/``os.urandom`` — see RL007) or any experiment
    RNG stream (allocating an ID can never perturb a seeded run).

    Thread-safe: the HTTP server allocates from handler threads.
    """

    __slots__ = ("_key", "_count", "_lock")

    def __init__(self, seed: int = 0, tag: str = "trace-ids") -> None:
        self._key = hashlib.blake2b(
            f"{seed}:{tag}".encode(), digest_size=16
        ).digest()
        self._count = 0
        self._lock = threading.Lock()

    def _next(self, size: int) -> str:
        with self._lock:
            count = self._count
            self._count += 1
        digest = hashlib.blake2b(
            count.to_bytes(8, "little"), key=self._key, digest_size=size
        ).hexdigest()
        # keyed BLAKE2 output is uniform: an (astronomically unlikely)
        # all-zero digest would be invalid on the wire, so perturb it
        if digest == "0" * (2 * size):  # pragma: no cover
            digest = "1" + digest[1:]
        return digest

    def trace_id(self) -> str:
        """A fresh 16-byte (32 hex chars) trace ID."""
        return self._next(16)

    def span_id(self) -> str:
        """A fresh 8-byte (16 hex chars) span ID."""
        return self._next(8)
