"""Structured logging under the ``repro`` logger hierarchy.

The repo's components never print to stderr on their own: the root
``repro`` logger carries a :class:`logging.NullHandler`, so nothing is
emitted unless the embedding application attaches a handler (e.g.
``logging.basicConfig(level=logging.DEBUG)``).  This is what lets the
HTTP server route its per-request log line through :func:`log_event`
at DEBUG level instead of discarding it — visible on demand, silent by
default.

Structured means machine-parseable: :func:`log_event` renders one JSON
object per record (``{"event": ..., **fields}``, keys sorted), the same
shape as the JSONL trace records of :mod:`repro.obs.tracing`.
"""

from __future__ import annotations

import json
import logging

_ROOT = logging.getLogger("repro")
if not any(
    isinstance(handler, logging.NullHandler) for handler in _ROOT.handlers
):
    _ROOT.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger below the silenced-by-default ``repro`` root."""
    return logging.getLogger(f"repro.{name}")


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """Emit one structured (JSON object) log record.

    The JSON is only serialised when the record would actually be
    handled, so disabled levels cost one ``isEnabledFor`` check.
    """
    if not logger.isEnabledFor(level):
        return
    logger.log(
        level, json.dumps({"event": event, **fields}, sort_keys=True)
    )
