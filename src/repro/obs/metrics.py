"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The observability layer is deliberately dependency-free (no
``prometheus_client``): a :class:`MetricsRegistry` owns every metric,
instruments are created on first use and shared by ``(name, labels)``
key, and :mod:`repro.obs.exposition` renders the whole registry in the
Prometheus text format.

Two recorder implementations share one duck-typed interface:

- :class:`MetricsRegistry` — the real thing: records values, times
  :meth:`~MetricsRegistry.span` contexts, optionally writes JSONL trace
  records (see :mod:`repro.obs.tracing`);
- :class:`NullRecorder` — the zero-overhead default used when
  observability is disabled.  Every method returns a shared no-op
  singleton, so instrumented hot paths cost a single method call.

Instrumented components accept a ``recorder`` parameter defaulting to
:data:`NULL_RECORDER` (enforced statically by repro-lint rule RL005),
so observability never changes behaviour — only whether anything is
recorded.  :func:`resolve_recorder` remains for callers holding an
optional recorder.
"""

from __future__ import annotations

import bisect
import pathlib
import threading
import time
from collections.abc import Callable, Iterator
from typing import TYPE_CHECKING, Any, TypeVar

from repro.obs.ids import TraceContext, TraceIdSource

if TYPE_CHECKING:
    from repro.obs.tracing import Span, TraceWriter

#: Canonical label-set key: sorted tuple of (label, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets (seconds), Prometheus-style log-ish spacing.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for residual-mass style quantities spanning many decades.
MASS_BUCKETS = (1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 1.0)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value.

    Mutation is lock-protected: ``value += amount`` is a read-modify-
    write that can lose updates when HTTP handler threads race — the
    GIL serialises bytecodes, not statements.
    """

    kind = "counter"
    __slots__ = ("name", "help_text", "labels", "value", "lock")

    def __init__(
        self, name: str, help_text: str = "", labels: LabelKey = ()
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self.value = 0.0
        self.lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self.lock:
            self.value += amount


class Gauge:
    """Value that can go up and down (lock-protected like Counter)."""

    kind = "gauge"
    __slots__ = ("name", "help_text", "labels", "value", "lock")

    def __init__(
        self, name: str, help_text: str = "", labels: LabelKey = ()
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self.value = 0.0
        self.lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self.lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        with self.lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        with self.lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with running sum and count.

    ``buckets`` are upper bounds (``le``); an implicit ``+Inf`` bucket
    catches everything beyond the last bound, exactly as Prometheus
    models it.  Bucket counts are stored non-cumulative; the exposition
    layer accumulates them.
    """

    kind = "histogram"
    __slots__ = (
        "name", "help_text", "labels", "buckets", "bucket_counts",
        "sum", "count", "lock",
    )

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: LabelKey = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or sorted(buckets) != list(buckets):
            raise ValueError("buckets must be a non-empty sorted tuple")
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + the +Inf one
        self.sum = 0.0
        self.count = 0
        self.lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation of ``value``.

        Sum, count and the bucket move under one lock so a concurrent
        exposition render never sees a torn (count ≠ Σ buckets) state.
        """
        index = bisect.bisect_left(self.buckets, value)
        with self.lock:
            self.sum += value
            self.count += 1
            self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        """Average observed value (0.0 when nothing was observed)."""
        return self.sum / self.count if self.count else 0.0


Metric = Counter | Gauge | Histogram

_MetricT = TypeVar("_MetricT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Owns every metric of one observed run (or server).

    Parameters
    ----------
    clock:
        Monotonic time source used by spans.  Injected explicitly so a
        simulated-time harness can drive it deterministically — span
        timing never touches the RNG streams or the simulation clock.
    trace_path:
        When set, every closed span is appended as one JSONL record to
        this file (the same on-disk format as
        :meth:`repro.platform.events.EventLog.to_jsonl`).
    ids:
        Injected :class:`repro.obs.ids.TraceIdSource` allocating every
        span's ``trace_id``/``span_id``.  Defaults to a fresh seed-0
        source, so traces are replayable out of the box; inject a
        source to share one ID space across registries (e.g. client
        and server of one test) or to vary the ID stream by seed.

    Creation of instruments is get-or-create by ``(name, labels)`` and
    lock-protected (the HTTP server records from handler threads);
    each instrument serialises its own mutations so concurrent
    recording never loses updates.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        trace_path: str | pathlib.Path | None = None,
        ids: TraceIdSource | None = None,
    ) -> None:
        self.clock = clock
        self.ids = ids if ids is not None else TraceIdSource()
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}
        self._lock = threading.Lock()
        self._trace: TraceWriter | None = None
        if trace_path is not None:
            from repro.obs.tracing import TraceWriter

            self._trace = TraceWriter(trace_path)
        self._span_stacks = threading.local()

    # -- instrument accessors ------------------------------------------
    def _get_or_create(
        self,
        cls: type[_MetricT],
        name: str,
        help_text: str,
        labels: dict[str, str],
        **kwargs: Any,
    ) -> _MetricT:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, help_text, key[1], **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """Get or create the :class:`Gauge` for ``(name, labels)``."""
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the :class:`Histogram` for ``(name, labels)``.

        ``buckets`` only applies on first creation.
        """
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    # -- spans ----------------------------------------------------------
    def span(
        self,
        name: str,
        remote_context: TraceContext | None = None,
        **attrs: object,
    ) -> "Span":
        """Nestable wall-time measurement context.

        Records the elapsed time into the
        ``repro_span_duration_seconds{span=name}`` histogram and, when a
        trace path is configured, appends one JSONL span record carrying
        the span's trace identity.  ``remote_context`` (a parsed
        ``traceparent`` header) parents a root span under a remote
        trace; it is ignored when a local span is already open.
        """
        from repro.obs.tracing import Span

        return Span(self, name, attrs, remote_context=remote_context)

    def current_span(self) -> "Span | None":
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list["Span"]:
        stack: list[Span] | None = getattr(self._span_stacks, "stack", None)
        if stack is None:
            stack = []
            self._span_stacks.stack = stack
        return stack

    # -- views ----------------------------------------------------------
    def metrics(self) -> Iterator[Metric]:
        """Every registered instrument, in registration order.

        Copied under ``_lock``: handler threads register instruments
        concurrently, and copying an insertion-ordered dict mid-insert
        can tear.
        """
        with self._lock:
            return iter(list(self._metrics.values()))

    def snapshot(self) -> dict[str, float]:
        """Flat name→value view for reports.

        Labelled metrics key as ``name{k="v",...}``; histograms expose
        ``name_count`` and ``name_sum``.
        """
        out: dict[str, float] = {}
        for metric in self.metrics():
            suffix = "".join(
                f'{k}="{v}",' for k, v in metric.labels
            ).rstrip(",")
            key = f"{metric.name}{{{suffix}}}" if suffix else metric.name
            if isinstance(metric, Histogram):
                out[key + "_count"] = metric.count
                out[key + "_sum"] = metric.sum
            else:
                out[key] = metric.value
        return out

    def span_summary(self) -> list[tuple[str, int, float, float]]:
        """Per-span ``(name, count, total_seconds, mean_seconds)`` rows,
        sorted by descending total time."""
        rows: list[tuple[str, int, float, float]] = []
        for metric in self.metrics():
            if (
                isinstance(metric, Histogram)
                and metric.name == "repro_span_duration_seconds"
            ):
                name = dict(metric.labels).get("span", "?")
                rows.append((name, metric.count, metric.sum, metric.mean))
        rows.sort(key=lambda r: -r[2])
        return rows

    def format_span_table(self) -> str:
        """Aligned count/total/mean table of every recorded span."""
        rows = self.span_summary()
        lines = [
            f"{'span':<28}{'count':>8}{'total (s)':>12}{'mean (s)':>12}"
        ]
        for name, count, total, mean in rows:
            lines.append(
                f"{name:<28}{count:>8}{total:>12.4f}{mean:>12.6f}"
            )
        if not rows:
            lines.append("(no spans recorded)")
        return "\n".join(lines)

    def close(self) -> None:
        """Flush and close the trace writer, if any."""
        if self._trace is not None:
            self._trace.close()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    """Shared no-op span context (reentrant; records nothing).

    Carries empty identity fields so callers can probe
    ``span.trace_id`` without isinstance checks: falsy means "no
    tracing identity — do not propagate headers".
    """

    __slots__ = ()
    elapsed = 0.0
    trace_id = ""
    span_id = ""
    parent_id: str | None = None

    @property
    def attrs(self) -> dict[str, object]:
        """Write-and-forget sink (the null span records nothing)."""
        return {}

    @property
    def context(self) -> TraceContext:
        """Never propagate from a null span — guard on ``trace_id``."""
        raise RuntimeError(
            "null span has no trace context; check span.trace_id first"
        )

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder used when observability is off: every call is a no-op.

    The singletons keep the disabled hot path at one attribute lookup
    plus one call per instrumentation point — the overhead bench
    (``benchmarks/test_obs_overhead.py``) guards the cost.
    """

    enabled = False

    def counter(
        self, name: str, help_text: str = "", **labels: str
    ) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(
        self, name: str, help_text: str = "", **labels: str
    ) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def span(
        self,
        name: str,
        remote_context: TraceContext | None = None,
        **attrs: object,
    ) -> _NullSpan:
        """Return the shared no-op span context."""
        return _NULL_SPAN

    def current_span(self) -> None:
        """No span is ever open on the null recorder."""
        return None

    def snapshot(self) -> dict[str, float]:
        """Nothing is recorded, so the snapshot is empty."""
        return {}

    def span_summary(self) -> list[tuple[str, int, float, float]]:
        """Nothing is recorded, so there are no span rows."""
        return []

    def close(self) -> None:
        """No trace writer to close."""


#: The process-wide disabled recorder.
NULL_RECORDER = NullRecorder()

#: Either recorder flavour (duck-typed; kept as an alias for signatures).
Recorder = MetricsRegistry | NullRecorder


def resolve_recorder(recorder: Recorder | None) -> Recorder:
    """``None`` → the shared :data:`NULL_RECORDER`; else pass through."""
    return NULL_RECORDER if recorder is None else recorder
