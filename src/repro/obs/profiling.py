"""Stdlib sampling profiler with collapsed-stack (flamegraph) output.

Hot-path claims in ``BENCH_offline.json`` need evidence, not vibes: the
:class:`SamplingProfiler` interrupts nothing and instruments nothing —
a daemon thread snapshots ``sys._current_frames()`` at a fixed
interval and aggregates the target thread's stacks.  Output is the
*collapsed stack* format (``frame;frame;frame count`` per line) that
``flamegraph.pl``, speedscope and Perfetto all ingest directly, plus a
terminal-friendly top-functions table.

Sampling is statistical: a frame's share of samples estimates its share
of wall time, with no per-call overhead on the measured code (the
sampler thread costs one stack walk per interval).  The profiler never
touches any RNG stream, so profiled runs stay byte-identical to
unprofiled ones — only wall-clock timing differs.

``python -m repro.cli perf --profile out.txt`` profiles the offline
phase; ``telemetry ... --profile out.txt`` profiles a platform round.
"""

from __future__ import annotations

import pathlib
import sys
import threading
from collections import Counter as _TallyCounter
from collections.abc import Callable
from types import FrameType
from typing import TypeVar

_T = TypeVar("_T")


def _frame_label(frame: FrameType) -> str:
    """``module:function`` label for one stack frame."""
    code = frame.f_code
    path = pathlib.PurePath(code.co_filename)
    return f"{path.stem}:{code.co_name}"


def _collapse(frame: FrameType | None) -> str:
    """Root-first ``;``-joined stack below ``frame``."""
    labels: list[str] = []
    current: FrameType | None = frame
    while current is not None:
        labels.append(_frame_label(current))
        current = current.f_back
    return ";".join(reversed(labels))


class SamplingProfiler:
    """Wall-clock sampling profiler for one thread.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5 ms — coarse enough to stay
        invisible, fine enough for multi-second hot paths).
    target_thread:
        ``threading.get_ident()`` of the thread to sample; defaults to
        the thread that enters the context.

    Use as a context manager::

        with SamplingProfiler() as prof:
            expensive_call()
        prof.write_collapsed("flame.txt")
    """

    def __init__(
        self,
        interval: float = 0.005,
        target_thread: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.target_thread = target_thread
        self.stacks: _TallyCounter[str] = _TallyCounter()
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling loop --------------------------------------------------
    def _run(self, target: int) -> None:
        while not self._stop.is_set():
            frames = sys._current_frames()
            frame = frames.get(target)
            if frame is not None:
                self.stacks[_collapse(frame)] += 1
                self.samples += 1
            del frames, frame  # drop frame refs before sleeping
            self._stop.wait(self.interval)

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent guard: one run per instance)."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        target = (
            self.target_thread
            if self.target_thread is not None
            else threading.get_ident()
        )
        self._thread = threading.Thread(
            target=self._run, args=(target,), daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- output ---------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: ``frame;frame count`` per line."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the collapsed stacks to ``path`` (flamegraph input)."""
        out = pathlib.Path(path)
        out.write_text(self.collapsed(), encoding="utf-8")
        return out

    def top_functions(self, limit: int = 10) -> list[tuple[str, int]]:
        """Leaf-frame tally: the functions samples actually landed in."""
        leaves: _TallyCounter[str] = _TallyCounter()
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] += count
        return leaves.most_common(limit)

    def format_table(self, limit: int = 10) -> str:
        """Aligned top-functions table with sample shares."""
        rows = self.top_functions(limit)
        lines = [f"{'function':<44}{'samples':>9}{'share':>8}"]
        total = self.samples or 1
        for name, count in rows:
            lines.append(
                f"{name:<44}{count:>9}{count / total:>8.1%}"
            )
        if not rows:
            lines.append("(no samples collected)")
        return "\n".join(lines)

    def summary(self, limit: int = 10) -> dict[str, object]:
        """Machine-readable profile summary for bench JSON sections."""
        total = self.samples or 1
        return {
            "samples": self.samples,
            "interval_s": self.interval,
            "top": [
                {
                    "function": name,
                    "samples": count,
                    "share": count / total,
                }
                for name, count in self.top_functions(limit)
            ],
        }


def profile_call(
    fn: Callable[[], _T],
    interval: float = 0.005,
) -> tuple[_T, SamplingProfiler]:
    """Run ``fn()`` under a profiler; returns ``(result, profiler)``."""
    profiler = SamplingProfiler(interval=interval)
    with profiler:
        result = fn()
    return result, profiler
