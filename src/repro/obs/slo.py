"""SLO evaluation over span/latency histograms.

A service-level objective here is a named statement about a recorded
histogram: *"the q-quantile of <metric>{<labels>} stays under T
seconds"*.  The evaluator reads the cumulative bucket counts the
Prometheus exposition also renders and answers three questions per
objective:

- **observed quantile** — PromQL-style ``histogram_quantile``: linear
  interpolation inside the bucket the target rank falls in (the
  ``+Inf`` bucket reports the largest finite bound);
- **pass/fail** — observed quantile ≤ threshold;
- **error budget** — an objective "q-quantile ≤ T" tolerates a
  ``1 - q`` fraction of observations above T.  The fraction actually
  above T (conservatively: everything past the last bucket bound ≤ T)
  is divided by that allowance; ``budget_used ≥ 1.0`` means the budget
  is spent, which is exactly the fail condition restated in spend
  terms.

The measurement harness of ROADMAP item 1 (p50/p99 serving SLOs) plugs
its latency targets straight into :func:`evaluate_slos`; today the
``telemetry`` CLI evaluates :data:`DEFAULT_SLOS` over the span
histograms of an instrumented run.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.obs.metrics import Histogram, MetricsRegistry, _label_key


@dataclass(frozen=True)
class SLO:
    """One named latency objective over a histogram family."""

    name: str  #: human handle, e.g. ``"assign_p99"``
    metric: str  #: histogram metric name
    quantile: float  #: e.g. 0.99
    threshold: float  #: upper bound for the quantile, in the metric's unit
    labels: tuple[tuple[str, str], ...] = ()  #: sorted (label, value) pairs

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        if self.threshold <= 0:
            raise ValueError(
                f"threshold must be positive, got {self.threshold}"
            )

    @classmethod
    def span(
        cls, name: str, span: str, quantile: float, threshold: float
    ) -> "SLO":
        """Objective over one named span's duration histogram."""
        return cls(
            name=name,
            metric="repro_span_duration_seconds",
            quantile=quantile,
            threshold=threshold,
            labels=(("span", span),),
        )


@dataclass
class SLOResult:
    """Verdict for one objective."""

    slo: SLO
    count: int  #: observations the verdict is based on
    observed: float  #: estimated quantile (NaN when count == 0)
    passed: bool
    violations: int  #: observations (conservatively) above threshold
    budget_used: float  #: violating fraction / allowed fraction

    @property
    def skipped(self) -> bool:
        """No observations were recorded for the target histogram."""
        return self.count == 0

    def as_dict(self) -> dict[str, object]:
        """JSON-safe view (NaN observed → ``null``, not bare ``NaN``)."""
        return {
            "name": self.slo.name,
            "metric": self.slo.metric,
            "labels": dict(self.slo.labels),
            "quantile": self.slo.quantile,
            "threshold_s": self.slo.threshold,
            "count": self.count,
            "observed_s": (
                None if math.isnan(self.observed) else self.observed
            ),
            "passed": self.passed,
            "violations": self.violations,
            "budget_used": self.budget_used,
        }


@dataclass
class SLOReport:
    """All objective verdicts of one evaluation."""

    results: list[SLOResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every evaluated (non-skipped) objective passed."""
        return all(
            result.passed for result in self.results if not result.skipped
        )

    def format_table(self) -> str:
        """Aligned pass/fail + error-budget table."""
        lines = [
            f"{'SLO':<26}{'objective':<22}{'observed':>10}"
            f"{'n':>7}{'budget':>9}{'verdict':>9}"
        ]
        for result in self.results:
            objective = (
                f"p{result.slo.quantile * 100:g}"
                f" <= {result.slo.threshold:g}s"
            )
            if result.skipped:
                observed, verdict, budget = "-", "skip", "-"
            else:
                observed = f"{result.observed:.4f}s"
                verdict = "pass" if result.passed else "FAIL"
                budget = f"{result.budget_used:.0%}"
            lines.append(
                f"{result.slo.name:<26}{objective:<22}{observed:>10}"
                f"{result.count:>7}{budget:>9}{verdict:>9}"
            )
        if not self.results:
            lines.append("(no objectives evaluated)")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe view (the telemetry ``--format=json`` section)."""
        return {
            "passed": self.passed,
            "objectives": [result.as_dict() for result in self.results],
        }


def histogram_quantile(histogram: Histogram, quantile: float) -> float:
    """PromQL-style quantile estimate from cumulative buckets.

    Linear interpolation within the bucket holding the target rank;
    ranks landing in the ``+Inf`` bucket report the largest finite
    bound (there is nothing finite to interpolate towards).  NaN when
    the histogram is empty.
    """
    with histogram.lock:
        counts = list(histogram.bucket_counts)
        total = histogram.count
    if total == 0:
        return float("nan")
    rank = quantile * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(histogram.buckets):
                return histogram.buckets[-1]  # +Inf bucket
            upper = histogram.buckets[index]
            lower = histogram.buckets[index - 1] if index else 0.0
            below = cumulative - bucket_count
            if bucket_count == 0:  # pragma: no cover - defensive
                return upper
            return lower + (upper - lower) * (rank - below) / bucket_count
    return histogram.buckets[-1]  # pragma: no cover - defensive


def _violations_above(histogram: Histogram, threshold: float) -> int:
    """Observations conservatively counted above ``threshold``.

    Bucketed data only bounds each observation: everything in buckets
    whose *upper* bound exceeds ``threshold`` might be above it, so it
    counts against the budget.  (With a bucket bound placed exactly at
    the threshold, the count is exact.)
    """
    with histogram.lock:
        counts = list(histogram.bucket_counts)
    boundary = bisect.bisect_right(histogram.buckets, threshold)
    return sum(counts[boundary:])


def evaluate_slo(registry: MetricsRegistry, slo: SLO) -> SLOResult:
    """Evaluate one objective against a registry."""
    metric = None
    for candidate in registry.metrics():
        if (
            isinstance(candidate, Histogram)
            and candidate.name == slo.metric
            and candidate.labels == _label_key(dict(slo.labels))
        ):
            metric = candidate
            break
    if metric is None or metric.count == 0:
        return SLOResult(
            slo=slo,
            count=0,
            observed=float("nan"),
            passed=True,
            violations=0,
            budget_used=0.0,
        )
    observed = histogram_quantile(metric, slo.quantile)
    violations = _violations_above(metric, slo.threshold)
    allowance = (1.0 - slo.quantile) * metric.count
    budget_used = violations / allowance if allowance > 0 else math.inf
    return SLOResult(
        slo=slo,
        count=metric.count,
        observed=observed,
        passed=bool(observed <= slo.threshold),
        violations=violations,
        budget_used=budget_used,
    )


def evaluate_slos(
    registry: MetricsRegistry, slos: tuple[SLO, ...]
) -> SLOReport:
    """Evaluate every objective; skipped ones never fail the report."""
    return SLOReport(
        results=[evaluate_slo(registry, slo) for slo in slos]
    )


#: Objectives the ``telemetry`` CLI evaluates by default.  Thresholds
#: are generous single-box bounds — they exist to exercise the
#: evaluator on every run and to catch order-of-magnitude regressions,
#: not to gate CI on machine speed.  ROADMAP item 1's serving bench
#: will bring its own, tight, p50/p99 targets.
DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO.span("scheme_build_p99", "assigner.scheme", 0.99, 2.5),
    SLO.span("offline_estimate_p99", "estimator.offline", 0.99, 10.0),
    SLO.span("platform_run_p50", "platform.run", 0.50, 60.0),
    SLO.span("http_request_p99", "server.request", 0.99, 0.5),
    SLO.span("http_submit_p99", "server.submit", 0.99, 0.5),
)
