"""Span timing contexts and JSONL trace records.

A :class:`Span` measures one wall-clock interval on the registry's
injected monotonic clock and records it into the
``repro_span_duration_seconds{span=...}`` histogram.  Spans nest: a
per-thread stack tracks the enclosing span so each trace record carries
its ``parent`` and ``depth``.

Trace records share the on-disk format of
:meth:`repro.platform.events.EventLog.to_jsonl` — one JSON object per
line with a ``type`` tag — so platform event traces and observability
traces can live in the same file and be consumed by the same tooling
(``EventLog.from_jsonl`` simply skips ``span`` records).

:class:`Stopwatch` is the bare timing utility behind the experiment
harness' repeated *start/elapsed* measurements.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.obs.ids import TraceContext

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


class Stopwatch:
    """Context manager measuring one wall-clock interval.

    ``elapsed`` is live while the context is open and frozen at exit,
    so both ``with Stopwatch() as sw: ...`` followed by ``sw.elapsed``
    and mid-flight reads behave as the plain ``perf_counter`` pairs
    this replaces.
    """

    __slots__ = ("clock", "_start", "_elapsed")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._elapsed = None
        self._start = self.clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self._start is None:
            raise RuntimeError("Stopwatch was never started")
        self._elapsed = self.clock() - self._start
        return False

    @property
    def elapsed(self) -> float:
        """Seconds since entry (frozen once the context exits)."""
        if self._elapsed is not None:
            return self._elapsed
        if self._start is None:
            raise RuntimeError("Stopwatch was never started")
        return self.clock() - self._start


class Span:
    """One nestable timing context owned by a :class:`MetricsRegistry`.

    Created via :meth:`repro.obs.MetricsRegistry.span`; do not
    instantiate directly.

    Every span carries a causal identity (``trace_id`` / ``span_id`` /
    ``parent_id``) allocated at entry from the registry's injected
    :class:`repro.obs.ids.TraceIdSource`:

    - nested under a live span → inherits the parent's ``trace_id``
      and parents under its ``span_id``;
    - opened with a ``remote_context`` (a parsed ``traceparent``
      header) → joins that remote trace;
    - otherwise → roots a fresh trace.
    """

    __slots__ = (
        "_registry", "name", "attrs", "parent", "depth",
        "started", "elapsed", "remote_context",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        attrs: dict[str, object],
        remote_context: TraceContext | None = None,
    ) -> None:
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self.remote_context = remote_context
        self.parent: str | None = None
        self.depth = 0
        self.started = 0.0
        self.elapsed = 0.0
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: str | None = None

    @property
    def context(self) -> TraceContext:
        """This span's identity, ready to propagate downstream."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def __enter__(self) -> "Span":
        stack = self._registry._stack()
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        ids = self._registry.ids
        self.span_id = ids.span_id()
        if stack:
            enclosing = stack[-1]
            self.trace_id = enclosing.trace_id
            self.parent_id = enclosing.span_id
        elif self.remote_context is not None:
            self.trace_id = self.remote_context.trace_id
            self.parent_id = self.remote_context.span_id
        else:
            self.trace_id = ids.trace_id()
            self.parent_id = None
        stack.append(self)
        self.started = self._registry.clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.elapsed = self._registry.clock() - self.started
        stack = self._registry._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._registry.histogram(
            "repro_span_duration_seconds",
            "Wall time spent inside named spans.",
            span=self.name,
        ).observe(self.elapsed)
        trace = self._registry._trace
        if trace is not None:
            record = {
                "type": "span",
                "name": self.name,
                "parent": self.parent,
                "depth": self.depth,
                "start": self.started,
                "elapsed": self.elapsed,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
            }
            if self.attrs:
                record.update(self.attrs)
            trace.write(record)
        return False


class TraceWriter:
    """Append-one-JSON-object-per-line writer with eager flushing.

    The file is truncated on construction (one trace per run) and each
    record is flushed immediately so a crash mid-run still leaves a
    readable prefix.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, record: dict[str, object]) -> None:
        """Append ``record`` as one sorted-key JSON line and flush."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
