"""Simulated crowdsourcing platform (substitute for Amazon Mechanical
Turk; see Appendix A of the paper and DESIGN.md's substitution table).

The paper's deployment wraps MTurk's ExternalQuestion mechanism: workers
request tasks, iCrowd's web server decides the assignment, answers flow
back, payments are processed.  This package reproduces that interaction
loop against simulated workers:

- :class:`SimulatedPlatform` — the request/assign/answer/pay driver,
- :class:`PolicyProtocol` — what an assignment policy must implement
  (both :class:`repro.core.ICrowd` and every baseline satisfy it),
- :mod:`repro.platform.leases` — the assignment-lease ledger (issue →
  answer / expire → requeue) shared by the driver and the HTTP facade,
- :mod:`repro.platform.faults` — fault injection (duplicate and late
  submissions, blackout bursts, malformed submits),
- :mod:`repro.platform.hits` — HIT batching (10 microtasks per HIT at
  $0.10 per assignment, the paper's pricing),
- :mod:`repro.platform.payments` — the idempotent payment ledger,
- :mod:`repro.platform.events` — a structured event log,
- :mod:`repro.platform.client` — bounded-retry client for the server.
"""

from repro.platform.client import ICrowdClient, SubmitResult, TransportError
from repro.platform.events import (
    AnswerEvent,
    AssignEvent,
    CompleteEvent,
    EventLog,
    ExpireEvent,
    RejectEvent,
    RequestEvent,
)
from repro.platform.faults import FaultConfig, FaultInjector, FaultStats
from repro.platform.hits import HIT, build_hits
from repro.platform.leases import (
    Lease,
    LeaseLedger,
    LeaseStats,
    LeaseStatus,
    SettleResult,
)
from repro.platform.payments import PaymentLedger
from repro.platform.platform import (
    PlatformReport,
    PolicyProtocol,
    SimulatedPlatform,
)
from repro.platform.server import ICrowdHTTPServer

__all__ = [
    "AnswerEvent",
    "AssignEvent",
    "CompleteEvent",
    "EventLog",
    "ExpireEvent",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "HIT",
    "ICrowdClient",
    "ICrowdHTTPServer",
    "Lease",
    "LeaseLedger",
    "LeaseStats",
    "LeaseStatus",
    "PaymentLedger",
    "PlatformReport",
    "PolicyProtocol",
    "RejectEvent",
    "RequestEvent",
    "SettleResult",
    "SimulatedPlatform",
    "SubmitResult",
    "TransportError",
    "build_hits",
]
