"""Bounded-retry HTTP client for :class:`ICrowdHTTPServer`.

Worker-side integrations talk to the iCrowd server over a network that
drops connections and loses responses.  The client implements the
at-least-once delivery discipline the hardened server is built for:

- transport errors and 5xx responses are retried up to ``max_retries``
  times with exponential backoff;
- 4xx responses are **never** retried — they are protocol verdicts, not
  transient failures;
- a 409 on ``/submit`` after a retry means the first POST landed and
  only its response was lost; the server's idempotent answer handling
  makes that a success (``SubmitResult.ok``), not an error.

With a live recorder attached, every endpoint call runs inside a
``client.<endpoint>`` span and stamps each HTTP attempt with a W3C
``traceparent`` header carrying that span's identity — retries reuse
the same span, so the server-side handler spans of all delivery
attempts parent under one client span and share one ``trace_id``.
With the default :data:`NULL_RECORDER` no header is sent and the wire
format is unchanged.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass

from repro.core.types import Label, TaskId, WorkerId
from repro.obs.ids import TRACEPARENT_HEADER, format_traceparent
from repro.obs.metrics import NULL_RECORDER, Recorder


class TransportError(RuntimeError):
    """All retries were exhausted without reaching the server."""


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of one (possibly retried) answer submission."""

    status: int
    body: dict | None
    #: attempts actually made (1 = first try succeeded)
    attempts: int

    @property
    def accepted(self) -> bool:
        """The answer was recorded by this submission."""
        return self.status == 200 and bool(
            (self.body or {}).get("accepted", False)
        )

    @property
    def deduplicated(self) -> bool:
        """The answer was already on record (idempotent replay)."""
        return self.status == 409

    @property
    def expired(self) -> bool:
        """The assignment lease expired before the answer arrived."""
        return self.status == 410

    @property
    def ok(self) -> bool:
        """The answer is durably recorded — directly or via replay."""
        return self.accepted or self.deduplicated


class ICrowdClient:
    """Thin bounded-retry wrapper over the server's three endpoints.

    Parameters
    ----------
    address:
        ``(host, port)`` of a running :class:`ICrowdHTTPServer`.
    max_retries:
        Additional attempts after the first (3 → up to 4 requests).
    backoff:
        Initial sleep between attempts, doubled each retry.
    timeout:
        Per-connection socket timeout in seconds.
    recorder:
        Metrics/tracing sink; a live registry wraps every endpoint
        call in a ``client.<endpoint>`` span and propagates its
        identity server-side via the ``traceparent`` header.
    """

    def __init__(
        self,
        address: tuple[str, int],
        max_retries: int = 3,
        backoff: float = 0.05,
        timeout: float = 5.0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.address = address
        self.max_retries = max_retries
        self.backoff = backoff
        self.timeout = timeout
        self.recorder = recorder

    # ------------------------------------------------------------------
    def _call(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict | None, int]:
        """One endpoint call with bounded retries on transport/5xx.

        The whole retry loop runs inside a single ``client.<endpoint>``
        span, so every delivery attempt carries the same traceparent
        and the server-side handler spans of all attempts join one
        trace under one client parent.
        """
        endpoint = path.partition("?")[0].lstrip("/") or "root"
        with self.recorder.span(
            f"client.{endpoint}", method=method
        ) as span:
            headers: dict[str, str] = {}
            if span.trace_id:
                headers[TRACEPARENT_HEADER] = format_traceparent(
                    span.context
                )
            status, data, attempts = self._send(
                method, path, payload, headers
            )
            if span.trace_id:
                span.attrs["attempts"] = attempts
                span.attrs["status"] = status
            return status, data, attempts

    def _send(
        self,
        method: str,
        path: str,
        payload: dict | None,
        headers: dict[str, str],
    ) -> tuple[int, dict | None, int]:
        """The bounded-retry delivery loop behind :meth:`_call`."""
        body = json.dumps(payload) if payload is not None else None
        delay = self.backoff
        last_error: Exception | None = None
        for attempt in range(1, self.max_retries + 2):
            try:
                conn = http.client.HTTPConnection(
                    *self.address, timeout=self.timeout
                )
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                    status = response.status
                finally:
                    conn.close()
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                if attempt <= self.max_retries:
                    if delay:
                        time.sleep(delay)
                        delay *= 2
                    continue
                raise TransportError(
                    f"{method} {path} failed after {attempt} attempts: "
                    f"{exc}"
                ) from exc
            if status >= 500 and attempt <= self.max_retries:
                if delay:
                    time.sleep(delay)
                    delay *= 2
                continue
            data = json.loads(raw) if raw else None
            return status, data, attempt
        raise TransportError(
            f"{method} {path} failed after {self.max_retries + 1} "
            f"attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    def request_task(self, worker_id: WorkerId) -> dict | None:
        """Ask for the next microtask; None when nothing is assignable."""
        status, data, _ = self._call(
            "GET", f"/request?worker={worker_id}"
        )
        if status == 204:
            return None
        if status != 200:
            raise RuntimeError(
                f"/request returned {status}: {data}"
            )
        return data

    def submit(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label | int,
        is_test: bool = False,
    ) -> SubmitResult:
        """Submit one answer; retried deliveries dedupe server-side."""
        status, data, attempts = self._call(
            "POST",
            "/submit",
            {
                "worker": worker_id,
                "task_id": int(task_id),
                "label": int(label),
                "is_test": is_test,
            },
        )
        return SubmitResult(status=status, body=data, attempts=attempts)

    def status(self) -> dict:
        """Job progress (finished flag, completion and lease counters)."""
        status, data, _ = self._call("GET", "/status")
        if status != 200 or data is None:
            raise RuntimeError(f"/status returned {status}: {data}")
        return data
