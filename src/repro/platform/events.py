"""Structured event log of a platform run.

Every interaction is recorded as a typed event so experiments can
reconstruct the full dynamics (e.g. Figure 15's assignment distribution
or per-domain answer traces) without instrumenting the policies.

The log round-trips through JSONL (:meth:`EventLog.to_jsonl` /
:meth:`EventLog.from_jsonl`): one ``{"type": ..., ...}`` object per
line, the same on-disk format the observability layer uses for span
traces (:mod:`repro.obs.tracing`).  Records with an unknown ``type``
are skipped on load, so a combined telemetry file — spans plus events —
parses as an event log without ceremony.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import asdict, dataclass, field, fields
from collections.abc import Iterator, Mapping

from repro.core.types import Label, TaskId, WorkerId


@dataclass(frozen=True)
class RequestEvent:
    """A worker asked the platform for work."""

    step: int
    worker_id: WorkerId


@dataclass(frozen=True)
class AssignEvent:
    """The policy assigned a task to a worker."""

    step: int
    worker_id: WorkerId
    task_id: TaskId
    is_test: bool


@dataclass(frozen=True)
class AnswerEvent:
    """A worker submitted an answer."""

    step: int
    worker_id: WorkerId
    task_id: TaskId
    label: Label
    is_test: bool


@dataclass(frozen=True)
class CompleteEvent:
    """A task became globally completed."""

    step: int
    task_id: TaskId
    consensus: Label


@dataclass(frozen=True)
class RejectEvent:
    """A worker was rejected (failed warm-up)."""

    step: int
    worker_id: WorkerId


@dataclass(frozen=True)
class ExpireEvent:
    """An assignment lease expired and its slot was requeued."""

    step: int
    worker_id: WorkerId
    task_id: TaskId


Event = (
    RequestEvent
    | AssignEvent
    | AnswerEvent
    | CompleteEvent
    | RejectEvent
    | ExpireEvent
)

#: JSONL ``type`` tag per event class (the wire names are stable API).
_EVENT_TYPES: dict[str, type] = {
    "request": RequestEvent,
    "assign": AssignEvent,
    "answer": AnswerEvent,
    "complete": CompleteEvent,
    "reject": RejectEvent,
    "expire": ExpireEvent,
}
_TYPE_NAMES = {cls: name for name, cls in _EVENT_TYPES.items()}
#: Fields holding a label: binary runs store :class:`Label`, multi-choice
#: runs an arbitrary choice value — both must survive the round-trip.
_LABEL_FIELDS = ("label", "consensus")


def _encode_label(value: object) -> object:
    return int(value) if isinstance(value, Label) else value


def _decode_label(value: object) -> object:
    if isinstance(value, (int, bool)) and not isinstance(value, Label):
        try:
            return Label(int(value))
        except ValueError:
            return value
    return value


def event_to_dict(event: Event) -> dict[str, object]:
    """One event as a plain JSON-safe dict with a ``type`` tag."""
    record: dict[str, object] = {
        "type": _TYPE_NAMES[type(event)], **asdict(event)
    }
    for key in _LABEL_FIELDS:
        if key in record:
            record[key] = _encode_label(record[key])
    return record


def event_from_dict(record: Mapping[str, object]) -> Event | None:
    """Rebuild an event from its dict form; ``None`` for unknown types.

    Unknown *fields* are dropped rather than fatal, so logs written by
    newer code still load.
    """
    cls = _EVENT_TYPES.get(str(record.get("type")))
    if cls is None:
        return None
    names = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in record.items() if k in names}
    for key in _LABEL_FIELDS:
        if key in kwargs:
            kwargs[key] = _decode_label(kwargs[key])
    return cls(**kwargs)


@dataclass
class EventLog:
    """Append-only event trace with typed accessors.

    Safe to share between the HTTP handler threads that append and a
    reader polling the accessors: appends run under ``_lock`` and every
    accessor (including iteration) works on a locked snapshot, so a
    concurrent append never tears an in-progress scan.
    """

    events: list[Event] = field(default_factory=list)
    #: late-bound factory so the race sanitizer's patched lock
    #: constructor is used when a log is created under test
    _lock: threading.Lock = field(
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )

    def append(self, event: Event) -> None:
        """Record one event."""
        with self._lock:
            self.events.append(event)

    def snapshot(self) -> list[Event]:
        """All events so far, as a consistent copy."""
        with self._lock:
            return list(self.events)

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())

    def answers(self) -> list[AnswerEvent]:
        """All answer events in order."""
        return [e for e in self.snapshot() if isinstance(e, AnswerEvent)]

    def assignments(self) -> list[AssignEvent]:
        """All assignment events in order."""
        return [e for e in self.snapshot() if isinstance(e, AssignEvent)]

    def completions(self) -> list[CompleteEvent]:
        """All task-completion events in order."""
        return [e for e in self.snapshot() if isinstance(e, CompleteEvent)]

    def rejections(self) -> list[RejectEvent]:
        """All worker-rejection events in order."""
        return [e for e in self.snapshot() if isinstance(e, RejectEvent)]

    def expirations(self) -> list[ExpireEvent]:
        """All lease-expiry events in order."""
        return [e for e in self.snapshot() if isinstance(e, ExpireEvent)]

    # -- persistence ----------------------------------------------------
    def to_jsonl(
        self, path: str | pathlib.Path, append: bool = False
    ) -> None:
        """Write the log as JSONL, one ``{"type": ...}`` object per line.

        ``append=True`` adds to an existing file — e.g. appending the
        run's events after the observability trace of the same run.
        """
        with open(path, "a" if append else "w", encoding="utf-8") as fh:
            for event in self.snapshot():
                fh.write(
                    json.dumps(event_to_dict(event), sort_keys=True) + "\n"
                )

    @classmethod
    def from_jsonl(cls, path: str | pathlib.Path) -> "EventLog":
        """Load a JSONL log, skipping blank lines and unknown types."""
        log = cls()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                event = event_from_dict(json.loads(line))
                if event is not None:
                    log.append(event)
        return log

    def assignment_counts(self, include_tests: bool = False) -> dict[WorkerId, int]:
        """Answers submitted per worker (Figure 15's distribution)."""
        counts: dict[WorkerId, int] = {}
        for event in self.answers():
            if event.is_test and not include_tests:
                continue
            counts[event.worker_id] = counts.get(event.worker_id, 0) + 1
        return counts
