"""Structured event log of a platform run.

Every interaction is recorded as a typed event so experiments can
reconstruct the full dynamics (e.g. Figure 15's assignment distribution
or per-domain answer traces) without instrumenting the policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.types import Label, TaskId, WorkerId


@dataclass(frozen=True)
class RequestEvent:
    """A worker asked the platform for work."""

    step: int
    worker_id: WorkerId


@dataclass(frozen=True)
class AssignEvent:
    """The policy assigned a task to a worker."""

    step: int
    worker_id: WorkerId
    task_id: TaskId
    is_test: bool


@dataclass(frozen=True)
class AnswerEvent:
    """A worker submitted an answer."""

    step: int
    worker_id: WorkerId
    task_id: TaskId
    label: Label
    is_test: bool


@dataclass(frozen=True)
class CompleteEvent:
    """A task became globally completed."""

    step: int
    task_id: TaskId
    consensus: Label


@dataclass(frozen=True)
class RejectEvent:
    """A worker was rejected (failed warm-up)."""

    step: int
    worker_id: WorkerId


@dataclass(frozen=True)
class ExpireEvent:
    """An assignment lease expired and its slot was requeued."""

    step: int
    worker_id: WorkerId
    task_id: TaskId


Event = (
    RequestEvent
    | AssignEvent
    | AnswerEvent
    | CompleteEvent
    | RejectEvent
    | ExpireEvent
)


@dataclass
class EventLog:
    """Append-only event trace with typed accessors."""

    events: list[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        """Record one event."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def answers(self) -> list[AnswerEvent]:
        """All answer events in order."""
        return [e for e in self.events if isinstance(e, AnswerEvent)]

    def assignments(self) -> list[AssignEvent]:
        """All assignment events in order."""
        return [e for e in self.events if isinstance(e, AssignEvent)]

    def completions(self) -> list[CompleteEvent]:
        """All task-completion events in order."""
        return [e for e in self.events if isinstance(e, CompleteEvent)]

    def rejections(self) -> list[RejectEvent]:
        """All worker-rejection events in order."""
        return [e for e in self.events if isinstance(e, RejectEvent)]

    def expirations(self) -> list[ExpireEvent]:
        """All lease-expiry events in order."""
        return [e for e in self.events if isinstance(e, ExpireEvent)]

    def assignment_counts(self, include_tests: bool = False) -> dict[WorkerId, int]:
        """Answers submitted per worker (Figure 15's distribution)."""
        counts: dict[WorkerId, int] = {}
        for event in self.answers():
            if event.is_test and not include_tests:
                continue
            counts[event.worker_id] = counts.get(event.worker_id, 0) + 1
        return counts
