"""Fault injection for the interaction loop (chaos testing).

Reputation-tracking crowdsourcing systems degrade sharply when the
answer stream is unreliable (Tarable et al.; Karger, Oh & Shah), so the
platform can inject the failure modes real microtask markets exhibit:

- **duplicate submissions** — a recorded answer is delivered to the
  policy a second time (client retry / double POST); idempotent
  policies report :attr:`repro.core.types.AnswerOutcome.DUPLICATE`
  and nothing changes;
- **late answers** — the worker holds the answer until after the
  assignment lease expired; the platform drops it instead of letting
  it corrupt the vote state of a requeued slot;
- **blackout bursts** — a fraction of the active workers goes dark for
  a stretch of steps (connectivity loss, mass HIT return);
- **malformed submissions** — the submission is garbage and discarded
  before it reaches the policy; the lease stays open and is reclaimed
  by expiry.

All randomness comes from one dedicated generator, so enabling a fault
never perturbs worker answers or arrival order: a run with
``FaultConfig.disabled()`` is byte-identical to one without a fault
config at all.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.core.types import WorkerId
from repro.obs.metrics import NULL_RECORDER, Recorder
from repro.utils.rng import spawn_rng

_RATE_FIELDS = (
    "duplicate_submission",
    "late_answer",
    "malformed_submission",
    "blackout_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-fault activation rates and blackout shape.

    Rates are per-opportunity probabilities: ``duplicate_submission``,
    ``late_answer`` and ``malformed_submission`` apply to each
    submitted answer, ``blackout_rate`` to each platform step.
    """

    duplicate_submission: float = 0.0
    late_answer: float = 0.0
    malformed_submission: float = 0.0
    blackout_rate: float = 0.0
    #: fraction of the currently active workers a burst takes down
    blackout_fraction: float = 0.3
    #: steps a blacked-out worker stays dark
    blackout_duration: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 < self.blackout_fraction <= 1.0:
            raise ValueError("blackout_fraction must be in (0, 1]")
        if self.blackout_duration <= 0:
            raise ValueError("blackout_duration must be positive")

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually fire."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def disabled(cls) -> "FaultConfig":
        """A config that injects nothing (the regression baseline)."""
        return cls()

    @classmethod
    def chaos(cls, rate: float, seed: int = 0) -> "FaultConfig":
        """Convenience: every submission fault at ``rate``, plus rare
        blackout bursts."""
        return cls(
            duplicate_submission=rate,
            late_answer=rate,
            malformed_submission=rate / 2,
            blackout_rate=min(1.0, rate / 5),
            seed=seed,
        )

    def describe(self) -> str:
        """Short human-readable summary of the active faults."""
        active = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if f.name in _RATE_FIELDS and getattr(self, f.name) > 0.0
        ]
        return ", ".join(active) if active else "none"


@dataclass
class FaultStats:
    """What the injector actually did, surfaced in the report."""

    duplicates_injected: int = 0
    duplicates_dropped: int = 0
    late_injected: int = 0
    late_dropped: int = 0
    malformed_injected: int = 0
    blackout_bursts: int = 0
    blackout_workers: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports and experiment tables."""
        return {
            "duplicates_injected": self.duplicates_injected,
            "duplicates_dropped": self.duplicates_dropped,
            "late_injected": self.late_injected,
            "late_dropped": self.late_dropped,
            "malformed_injected": self.malformed_injected,
            "blackout_bursts": self.blackout_bursts,
            "blackout_workers": self.blackout_workers,
        }


class FaultInjector:
    """Draws fault decisions from a dedicated RNG stream.

    The injector only *decides*; the platform applies the consequences
    (re-delivery, held answers, pool suspension) so every side effect
    stays in one place.

    ``recorder`` (:data:`NULL_RECORDER` = disabled) mirrors fired decisions as the
    ``repro_fault_injections_total{kind=...}`` counter; it never draws
    from the RNG, so attaching one cannot perturb a seeded run.
    """

    def __init__(
        self,
        config: FaultConfig,
        seed: int = 0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.config = config
        self.recorder = recorder
        self._rng = spawn_rng(seed + config.seed, "platform-faults")
        self.stats = FaultStats()

    def _count(self, kind: str, amount: int = 1) -> None:
        self.recorder.counter(
            "repro_fault_injections_total",
            "Fault decisions fired by the injector.",
            kind=kind,
        ).inc(amount)

    # -- per-submission decisions --------------------------------------
    def duplicate_submission(self) -> bool:
        """Whether this accepted answer gets delivered a second time."""
        rate = self.config.duplicate_submission
        if rate and self._rng.random() < rate:
            self.stats.duplicates_injected += 1
            self._count("duplicate")
            return True
        return False

    def late_answer(self) -> bool:
        """Whether the worker holds this answer past lease expiry."""
        rate = self.config.late_answer
        if rate and self._rng.random() < rate:
            self.stats.late_injected += 1
            self._count("late")
            return True
        return False

    def malformed_submission(self) -> bool:
        """Whether this submission arrives as undecodable garbage."""
        rate = self.config.malformed_submission
        if rate and self._rng.random() < rate:
            self.stats.malformed_injected += 1
            self._count("malformed")
            return True
        return False

    # -- per-step decisions --------------------------------------------
    def blackout_victims(
        self, active: list[WorkerId]
    ) -> list[WorkerId]:
        """Workers a blackout burst takes down this step (often none)."""
        rate = self.config.blackout_rate
        if not rate or not active:
            return []
        if self._rng.random() >= rate:
            return []
        count = max(1, round(len(active) * self.config.blackout_fraction))
        picks = self._rng.choice(len(active), size=count, replace=False)
        victims = [active[int(i)] for i in sorted(picks)]
        self.stats.blackout_bursts += 1
        self.stats.blackout_workers += len(victims)
        self._count("blackout_burst")
        return victims
