"""HIT batching (Section 6.1 / Appendix A).

The paper publishes 10 microtasks per Human Intelligence Task at $0.10
per assignment, using MTurk's ExternalQuestion mode so the actual
microtask shown is chosen server-side at request time.  The HIT layer is
therefore bookkeeping: it groups task ids into batches and carries the
pricing used by the payment ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.types import TaskId

#: Paper defaults (Section 6.1).
DEFAULT_TASKS_PER_HIT = 10
DEFAULT_PRICE_PER_ASSIGNMENT = 0.10


@dataclass(frozen=True)
class HIT:
    """A published batch of microtasks."""

    hit_id: str
    task_ids: tuple[TaskId, ...]
    price_per_assignment: float = DEFAULT_PRICE_PER_ASSIGNMENT
    max_assignments: int = 10

    def __post_init__(self) -> None:
        if not self.task_ids:
            raise ValueError("a HIT must contain at least one microtask")
        if self.price_per_assignment < 0:
            raise ValueError("price must be non-negative")
        if self.max_assignments <= 0:
            raise ValueError("max_assignments must be positive")

    @property
    def size(self) -> int:
        return len(self.task_ids)

    @property
    def price_per_microtask(self) -> float:
        """Per-microtask share of the assignment price."""
        return self.price_per_assignment / self.size


def build_hits(
    task_ids: Sequence[TaskId],
    tasks_per_hit: int = DEFAULT_TASKS_PER_HIT,
    price_per_assignment: float = DEFAULT_PRICE_PER_ASSIGNMENT,
    max_assignments: int = 10,
) -> list[HIT]:
    """Partition tasks into consecutive HIT batches (last may be short)."""
    if tasks_per_hit <= 0:
        raise ValueError("tasks_per_hit must be positive")
    hits: list[HIT] = []
    for start in range(0, len(task_ids), tasks_per_hit):
        chunk = tuple(task_ids[start : start + tasks_per_hit])
        hits.append(
            HIT(
                hit_id=f"hit{len(hits):04d}",
                task_ids=chunk,
                price_per_assignment=price_per_assignment,
                max_assignments=max_assignments,
            )
        )
    return hits
