"""Assignment leases: the platform-side contract behind every slot.

The paper's Appendix A loop assumes a cooperative AMT — every issued
assignment comes back as exactly one answer.  Real microtask platforms
do not behave that way: HITs are returned, submissions are duplicated
by client retries, and answers arrive after the HIT expired.  The lease
ledger makes the platform's side of the contract explicit:

- ``issue``   — an assignment handed to a worker opens a *lease* that
  expires ``timeout`` clock ticks later;
- ``settle``  — the matching answer closes the lease (``ANSWERED``);
- ``expire_due`` — leases past their deadline flip to ``EXPIRED`` and
  the slot is requeued with the policy; an answer arriving afterwards
  is classified ``LATE`` and must be dropped by the caller.

The ledger is pure bookkeeping — it never touches the policy — so both
:class:`repro.platform.SimulatedPlatform` and the HTTP facade share it.
In the HTTP deployment it is hit by concurrent handler threads, so
every state transition runs under the ledger's own ``_lock`` — the
server's coarse lock nests outside it (always server → ledger, never
the reverse, so the static lock-order graph stays acyclic).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.core.types import TaskId, WorkerId
from repro.obs.metrics import NULL_RECORDER, Recorder

#: A lease is keyed by the (worker, task) pair it covers.
LeaseKey = tuple[WorkerId, TaskId]


class LeaseStatus(enum.Enum):
    """Lifecycle of one assignment lease."""

    PENDING = "pending"
    ANSWERED = "answered"
    EXPIRED = "expired"


class SettleResult(enum.Enum):
    """Classification of an incoming answer against the ledger."""

    #: A pending lease matched: the answer is good.
    ANSWERED = "answered"
    #: The lease expired before the answer arrived: drop it.
    LATE = "late"
    #: The lease was already settled: a duplicate submission.
    DUPLICATE = "duplicate"
    #: No lease was ever issued for this (worker, task) pair.
    UNKNOWN = "unknown"


@dataclass
class Lease:
    """One issued assignment awaiting its answer."""

    worker_id: WorkerId
    task_id: TaskId
    issued_at: int
    expires_at: int
    is_test: bool = False
    status: LeaseStatus = LeaseStatus.PENDING

    @property
    def key(self) -> LeaseKey:
        return (self.worker_id, self.task_id)


@dataclass
class LeaseStats:
    """Counters surfaced in :class:`repro.platform.PlatformReport`."""

    issued: int = 0
    answered: int = 0
    expired: int = 0
    late_answers: int = 0
    duplicate_answers: int = 0
    reissued: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reports and the HTTP status endpoint."""
        return {
            "issued": self.issued,
            "answered": self.answered,
            "expired": self.expired,
            "late_answers": self.late_answers,
            "duplicate_answers": self.duplicate_answers,
            "reissued": self.reissued,
        }


class LeaseLedger:
    """Tracks every outstanding assignment lease.

    Parameters
    ----------
    timeout:
        Lease lifetime in caller clock ticks; a lease issued at tick
        ``s`` may be settled up to tick ``s + timeout`` inclusive and
        expires on the first sweep after that.
    recorder:
        Observability recorder (:data:`NULL_RECORDER` = disabled).  Mirrors the
        :class:`LeaseStats` counters as ``repro_lease_*_total`` metrics
        so the HTTP ``/metrics`` endpoint and platform reports expose
        lease health without polling the ledger.
    """

    def __init__(
        self, timeout: int, recorder: Recorder = NULL_RECORDER
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"lease timeout must be positive, got {timeout}")
        self.timeout = timeout
        self.recorder = recorder
        #: guards every ledger mutation; acquired by handler threads
        #: while the server lock is (possibly) already held.
        self._lock = threading.Lock()
        self._pending: dict[LeaseKey, Lease] = {}
        #: pairs whose lease expired and was never answered; an answer
        #: arriving for one of these is late exactly once.
        self._expired: set[LeaseKey] = set()
        #: pairs answered at least once (for duplicate classification).
        self._answered: set[LeaseKey] = set()
        self.stats = LeaseStats()

    # ------------------------------------------------------------------
    def issue(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        now: int,
        is_test: bool = False,
    ) -> Lease:
        """Open a lease for an assignment handed out at tick ``now``."""
        key = (worker_id, task_id)
        lease = Lease(
            worker_id=worker_id,
            task_id=task_id,
            issued_at=now,
            expires_at=now + self.timeout,
            is_test=is_test,
        )
        with self._lock:
            if key in self._expired:
                # the same worker took the same slot again after expiry
                self._expired.discard(key)
                self.stats.reissued += 1
                self.recorder.counter(
                    "repro_lease_reissued_total",
                    "Leases reopened by the same worker after expiry.",
                ).inc()
            self._pending[key] = lease
            self.stats.issued += 1
            self.recorder.counter(
                "repro_lease_issued_total", "Assignment leases opened."
            ).inc()
        return lease

    def settle(
        self, worker_id: WorkerId, task_id: TaskId, now: int
    ) -> SettleResult:
        """Classify an incoming answer and close its lease if pending."""
        key = (worker_id, task_id)
        with self._lock:
            lease = self._pending.get(key)
            if lease is not None:
                if now > lease.expires_at:
                    # expired but not yet swept: treat exactly like a
                    # sweep
                    del self._pending[key]
                    lease.status = LeaseStatus.EXPIRED
                    self.stats.expired += 1
                    self.stats.late_answers += 1
                    self._count_expired(1)
                    self._count_late()
                    return SettleResult.LATE
                del self._pending[key]
                lease.status = LeaseStatus.ANSWERED
                self._answered.add(key)
                self.stats.answered += 1
                self.recorder.counter(
                    "repro_lease_answered_total",
                    "Leases closed by a matching in-time answer.",
                ).inc()
                return SettleResult.ANSWERED
            if key in self._expired:
                self._expired.discard(key)
                self.stats.late_answers += 1
                self._count_late()
                return SettleResult.LATE
            if key in self._answered:
                self.stats.duplicate_answers += 1
                self.recorder.counter(
                    "repro_lease_duplicate_total",
                    "Answers arriving for already-settled leases.",
                ).inc()
                return SettleResult.DUPLICATE
            return SettleResult.UNKNOWN

    def expire_due(self, now: int) -> list[Lease]:
        """Expire every pending lease whose deadline has passed."""
        with self._lock:
            due = [
                lease
                for lease in self._pending.values()
                if now > lease.expires_at
            ]
            for lease in due:
                del self._pending[lease.key]
                lease.status = LeaseStatus.EXPIRED
                self._expired.add(lease.key)
                self.stats.expired += 1
            if due:
                self._count_expired(len(due))
        return due

    def _count_expired(self, amount: int) -> None:
        self.recorder.counter(
            "repro_lease_expired_total", "Leases expired past deadline."
        ).inc(amount)

    def _count_late(self) -> None:
        self.recorder.counter(
            "repro_lease_late_total",
            "Answers arriving after their lease expired.",
        ).inc()

    # ------------------------------------------------------------------
    def outstanding(self) -> dict[LeaseKey, Lease]:
        """Currently pending leases (copy)."""
        with self._lock:
            return dict(self._pending)

    def has_pending(self, worker_id: WorkerId, task_id: TaskId) -> bool:
        """Whether a lease for the pair is currently open."""
        with self._lock:
            return (worker_id, task_id) in self._pending

    def has_seen(self, worker_id: WorkerId) -> bool:
        """Whether any lease (in any state) was ever issued to a worker."""
        with self._lock:
            if any(w == worker_id for w, _ in self._pending):
                return True
            if any(w == worker_id for w, _ in self._answered):
                return True
            return any(w == worker_id for w, _ in self._expired)
