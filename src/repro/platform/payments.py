"""Payment ledger (Appendix A: the server "calls back some APIs of AMT
to process payment" after each submission)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import WorkerId


@dataclass
class PaymentLedger:
    """Accumulates per-worker earnings for a platform run."""

    price_per_microtask: float = 0.01
    _earnings: dict[WorkerId, float] = field(default_factory=dict)
    _counts: dict[WorkerId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.price_per_microtask < 0:
            raise ValueError("price_per_microtask must be non-negative")

    def pay(self, worker_id: WorkerId, amount: float | None = None) -> float:
        """Credit a worker for one submitted microtask answer."""
        amount = self.price_per_microtask if amount is None else amount
        if amount < 0:
            raise ValueError("payment amount must be non-negative")
        self._earnings[worker_id] = self._earnings.get(worker_id, 0.0) + amount
        self._counts[worker_id] = self._counts.get(worker_id, 0) + 1
        return amount

    def earnings(self, worker_id: WorkerId) -> float:
        """Total amount credited to a worker so far."""
        return self._earnings.get(worker_id, 0.0)

    def payments_made(self, worker_id: WorkerId) -> int:
        """Number of payments credited to a worker so far."""
        return self._counts.get(worker_id, 0)

    @property
    def total_cost(self) -> float:
        """Total amount the requester has spent."""
        return sum(self._earnings.values())

    def statement(self) -> dict[WorkerId, float]:
        """Per-worker earnings snapshot."""
        return dict(self._earnings)
