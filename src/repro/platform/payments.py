"""Payment ledger (Appendix A: the server "calls back some APIs of AMT
to process payment" after each submission).

Payments are idempotent per ``(worker, task)``: a worker sees a given
microtask at most once per job (as a vote or a performance test), so
that pair is a natural payment key.  Duplicate submissions — client
retries, re-delivered POSTs — therefore can never double-pay; the
attempt is counted instead (:attr:`PaymentLedger.duplicate_attempts`).

In the HTTP deployment the ledger is shared by concurrent handler
threads, so every credit and every snapshot runs under the ledger's
own ``_lock`` (innermost in the server → ledger nesting order).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.types import TaskId, WorkerId


@dataclass
class PaymentLedger:
    """Accumulates per-worker earnings for a platform run."""

    price_per_microtask: float = 0.01
    _earnings: dict[WorkerId, float] = field(default_factory=dict)
    _counts: dict[WorkerId, int] = field(default_factory=dict)
    _paid_keys: set[tuple[WorkerId, TaskId]] = field(default_factory=set)
    #: blocked double-payment attempts (should stay 0 without faults)
    duplicate_attempts: int = 0
    #: guards every mutation and snapshot; ``pay_once`` holds it across
    #: the paid-key check *and* the credit so the idempotence test-then-
    #: insert is atomic (the lock is non-reentrant — internal helpers
    #: below run with it already held).  The lambda keeps the factory
    #: late-bound so the race sanitizer's patched constructor is used.
    _lock: threading.Lock = field(
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )

    def __post_init__(self) -> None:
        if self.price_per_microtask < 0:
            raise ValueError("price_per_microtask must be non-negative")

    def _credit(self, worker_id: WorkerId, amount: float | None) -> float:
        """Apply one credit; caller must hold ``_lock``."""
        amount = self.price_per_microtask if amount is None else amount
        if amount < 0:
            raise ValueError("payment amount must be non-negative")
        self._earnings[worker_id] = self._earnings.get(worker_id, 0.0) + amount
        self._counts[worker_id] = self._counts.get(worker_id, 0) + 1
        return amount

    def pay(self, worker_id: WorkerId, amount: float | None = None) -> float:
        """Credit a worker for one submitted microtask answer."""
        with self._lock:
            return self._credit(worker_id, amount)

    def pay_once(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        amount: float | None = None,
    ) -> float:
        """Credit a worker for a microtask at most once.

        Returns the amount credited, or 0.0 when the ``(worker, task)``
        pair was already paid (the attempt is counted, not honoured).
        """
        key = (worker_id, task_id)
        with self._lock:
            if key in self._paid_keys:
                self.duplicate_attempts += 1
                return 0.0
            self._paid_keys.add(key)
            return self._credit(worker_id, amount)

    def earnings(self, worker_id: WorkerId) -> float:
        """Total amount credited to a worker so far."""
        with self._lock:
            return self._earnings.get(worker_id, 0.0)

    def payments_made(self, worker_id: WorkerId) -> int:
        """Number of payments credited to a worker so far."""
        with self._lock:
            return self._counts.get(worker_id, 0)

    @property
    def total_cost(self) -> float:
        """Total amount the requester has spent."""
        with self._lock:
            return sum(self._earnings.values())

    def statement(self) -> dict[WorkerId, float]:
        """Per-worker earnings snapshot."""
        with self._lock:
            return dict(self._earnings)
