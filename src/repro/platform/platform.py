"""The simulated platform driver (Appendix A's interaction loop).

``SimulatedPlatform.run`` iterates the paper's cycle: an active worker
requests work → the policy assigns a microtask → the worker answers →
the platform records the answer and processes payment → the policy
updates its state.  The loop ends when the policy reports all tasks
globally completed, when no progress is possible (every active worker
drew a blank repeatedly), or at a step cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.types import Assignment, Label, TaskId, TaskSet, WorkerId
from repro.platform.events import (
    AnswerEvent,
    AssignEvent,
    CompleteEvent,
    EventLog,
    RejectEvent,
    RequestEvent,
)
from repro.platform.hits import DEFAULT_PRICE_PER_ASSIGNMENT, DEFAULT_TASKS_PER_HIT
from repro.platform.payments import PaymentLedger
from repro.workers.pool import WorkerPool


@runtime_checkable
class PolicyProtocol(Protocol):
    """What an assignment policy must provide to run on the platform.

    :class:`repro.core.ICrowd` and every baseline in
    :mod:`repro.baselines` implement this protocol.
    """

    def on_worker_request(
        self, worker_id: WorkerId, active_workers=None
    ) -> Assignment | None:
        """Serve a task request; None when nothing is assignable."""
        ...

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool = False,
    ) -> None:
        """Record a submitted answer."""
        ...

    def is_finished(self) -> bool:
        """True once every task is globally completed."""
        ...

    def predictions(self) -> dict[TaskId, Label]:
        """Current aggregated result per task."""
        ...


@dataclass
class PlatformReport:
    """Outcome of one platform run."""

    steps: int
    finished: bool
    predictions: dict[TaskId, Label]
    events: EventLog
    payments: PaymentLedger
    stalled: bool = False
    rejected_workers: list[WorkerId] = field(default_factory=list)

    @property
    def num_answers(self) -> int:
        return len(self.events.answers())

    @property
    def total_cost(self) -> float:
        return self.payments.total_cost

    def accuracy(
        self, tasks: TaskSet, exclude: set[TaskId] | None = None
    ) -> float:
        """Fraction of tasks whose predicted result matches ground truth.

        ``exclude`` typically holds the qualification task ids so the
        gold-labelled freebies do not inflate the metric.
        """
        exclude = exclude or set()
        considered = [t for t in tasks if t.task_id not in exclude]
        if not considered:
            return 0.0
        correct = sum(
            1
            for t in considered
            if self.predictions.get(t.task_id) == t.truth
        )
        return correct / len(considered)

    def accuracy_by_domain(
        self, tasks: TaskSet, exclude: set[TaskId] | None = None
    ) -> dict[str, float]:
        """Per-domain accuracy (the paper's per-domain bars)."""
        exclude = exclude or set()
        totals: dict[str, int] = {}
        corrects: dict[str, int] = {}
        for task in tasks:
            if task.task_id in exclude:
                continue
            totals[task.domain] = totals.get(task.domain, 0) + 1
            if self.predictions.get(task.task_id) == task.truth:
                corrects[task.domain] = corrects.get(task.domain, 0) + 1
        return {
            domain: corrects.get(domain, 0) / total
            for domain, total in totals.items()
        }


class SimulatedPlatform:
    """Drives a policy against a simulated worker pool.

    Parameters
    ----------
    tasks:
        The microtask set being crowdsourced.
    pool:
        The dynamic worker pool.
    policy:
        The assignment policy under evaluation.
    price_per_assignment / tasks_per_hit:
        Pricing used by the payment ledger (paper defaults: $0.10 for a
        10-microtask HIT, i.e. one cent per answered microtask).
    """

    def __init__(
        self,
        tasks: TaskSet,
        pool: WorkerPool,
        policy: PolicyProtocol,
        price_per_assignment: float = DEFAULT_PRICE_PER_ASSIGNMENT,
        tasks_per_hit: int = DEFAULT_TASKS_PER_HIT,
        abandonment: float = 0.0,
        assignment_timeout: int = 50,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= abandonment < 1.0:
            raise ValueError(
                f"abandonment must be in [0, 1), got {abandonment}"
            )
        if assignment_timeout <= 0:
            raise ValueError("assignment_timeout must be positive")
        self.tasks = tasks
        self.pool = pool
        self.policy = policy
        #: probability a worker walks away from an issued assignment
        #: without answering (the MTurk "returned HIT" case); the
        #: policy's expiry hook reopens the slot after
        #: ``assignment_timeout`` of its clock ticks.
        self.abandonment = abandonment
        self.assignment_timeout = assignment_timeout
        self.events = EventLog()
        self.payments = PaymentLedger(
            price_per_microtask=price_per_assignment / tasks_per_hit
        )
        self._rejected: list[WorkerId] = []
        from repro.utils.rng import spawn_rng

        self._rng = spawn_rng(seed, "platform-abandonment")

    def run(self, max_steps: int | None = None) -> PlatformReport:
        """Run the interaction loop until completion, stall or cap.

        ``max_steps`` defaults to a generous multiple of the total work
        (k answers per task plus warm-up), so broken policies terminate.
        """
        if max_steps is None:
            max_steps = 200 * max(1, len(self.tasks))
        step = 0
        consecutive_blanks = 0
        stall_limit = 3 * max(1, len(self.pool))
        stalled = False
        while step < max_steps and not self.policy.is_finished():
            step += 1
            self.pool.tick()
            if self.abandonment:
                # reopen slots whose workers walked away long ago
                self._expire_stale()
            requester = self.pool.sample_requester()
            if requester is None:
                consecutive_blanks += 1
                if consecutive_blanks > stall_limit:
                    stalled = True
                    break
                continue
            self.events.append(RequestEvent(step=step, worker_id=requester))
            assignment = self.policy.on_worker_request(
                requester, self.pool.active_workers()
            )
            if assignment is None:
                # nothing for this worker: rejected, or no eligible task
                if self._policy_rejected(requester):
                    self.pool.remove(requester)
                    self._rejected.append(requester)
                    self.events.append(
                        RejectEvent(step=step, worker_id=requester)
                    )
                consecutive_blanks += 1
                if consecutive_blanks > stall_limit:
                    stalled = True
                    break
                continue
            consecutive_blanks = 0
            self.events.append(
                AssignEvent(
                    step=step,
                    worker_id=requester,
                    task_id=assignment.task_id,
                    is_test=assignment.is_test,
                )
            )
            if (
                self.abandonment
                and not assignment.is_test
                and self._rng.random() < self.abandonment
            ):
                # the worker walks away without answering; stale slots
                # are reopened by the policy's expiry hook
                self.pool.note_submission(requester)
                self._expire_stale()
                continue
            worker = self.pool.worker(requester)
            label = worker.answer(self.tasks[assignment.task_id])
            completed_before = self._completed_tasks()
            self.policy.on_answer(
                requester, assignment.task_id, label, assignment.is_test
            )
            self.events.append(
                AnswerEvent(
                    step=step,
                    worker_id=requester,
                    task_id=assignment.task_id,
                    label=label,
                    is_test=assignment.is_test,
                )
            )
            newly_completed = self._completed_tasks() - completed_before
            for task_id in sorted(newly_completed):
                self.events.append(
                    CompleteEvent(
                        step=step,
                        task_id=task_id,
                        consensus=self.policy.predictions()[task_id],
                    )
                )
            self.payments.pay(requester)
            self.pool.note_submission(requester)
        return PlatformReport(
            steps=step,
            finished=self.policy.is_finished(),
            predictions=self.policy.predictions(),
            events=self.events,
            payments=self.payments,
            stalled=stalled,
            rejected_workers=list(self._rejected),
        )

    # ------------------------------------------------------------------
    def _expire_stale(self) -> None:
        """Ask the policy to reopen assignments abandoned too long ago."""
        expire = getattr(self.policy, "expire_stale_assignments", None)
        if expire is not None:
            expire(self.assignment_timeout)

    def _policy_rejected(self, worker_id: WorkerId) -> bool:
        """Whether the policy has permanently rejected a worker."""
        checker = getattr(self.policy, "is_worker_rejected", None)
        if checker is None:
            return False
        return bool(checker(worker_id))

    def _completed_tasks(self) -> set[TaskId]:
        getter = getattr(self.policy, "completed_tasks", None)
        if getter is None:
            return set()
        return set(getter())
