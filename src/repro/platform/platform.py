"""The simulated platform driver (Appendix A's interaction loop).

``SimulatedPlatform.run`` iterates the paper's cycle: an active worker
requests work → the policy assigns a microtask → the worker answers →
the platform records the answer and processes payment → the policy
updates its state.  The loop ends when the policy reports all tasks
globally completed, when no progress is possible (every active worker
drew a blank repeatedly), or at a step cap.

Unlike the paper's idealised loop, every issued assignment is covered
by a *lease* (:mod:`repro.platform.leases`): if the answer does not
arrive within ``assignment_timeout`` steps — the worker walked away,
blacked out, or submitted garbage — the lease expires, the slot is
requeued with the policy, and a later answer for it is dropped instead
of corrupting the vote state.  A :class:`repro.platform.faults
.FaultConfig` additionally injects the failure modes real microtask
markets exhibit (duplicate submissions, late answers, blackout bursts,
malformed submits) to exercise exactly those paths.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.types import (
    AnswerOutcome,
    Assignment,
    Label,
    TaskId,
    TaskSet,
    WorkerId,
)
from repro.obs.metrics import NULL_RECORDER, Recorder
from repro.platform.events import (
    AnswerEvent,
    AssignEvent,
    CompleteEvent,
    EventLog,
    ExpireEvent,
    RejectEvent,
    RequestEvent,
)
from repro.platform.faults import FaultConfig, FaultInjector, FaultStats
from repro.platform.hits import DEFAULT_PRICE_PER_ASSIGNMENT, DEFAULT_TASKS_PER_HIT
from repro.platform.leases import LeaseLedger, LeaseStats, SettleResult
from repro.platform.payments import PaymentLedger
from repro.workers.pool import WorkerPool


@runtime_checkable
class PolicyProtocol(Protocol):
    """What an assignment policy must provide to run on the platform.

    :class:`repro.core.ICrowd` and every baseline in
    :mod:`repro.baselines` implement this protocol, including the
    optional lease hooks below.
    """

    def on_worker_request(
        self,
        worker_id: WorkerId,
        active_workers: Sequence[WorkerId] | None = None,
    ) -> Assignment | None:
        """Serve a task request; None when nothing is assignable."""
        ...

    def on_answer(
        self,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool = False,
    ) -> AnswerOutcome | None:
        """Record a submitted answer, idempotently.

        Must tolerate re-delivery: a repeated ``(worker, task)`` vote
        leaves the policy unchanged and reports
        :attr:`repro.core.types.AnswerOutcome.DUPLICATE`.  A ``None``
        return is treated as ``ACCEPTED`` for backward compatibility.
        """
        ...

    def is_finished(self) -> bool:
        """True once every task is globally completed."""
        ...

    def predictions(self) -> dict[TaskId, Label]:
        """Current aggregated result per task."""
        ...

    # -- optional lease hooks ------------------------------------------
    # The platform probes these with ``getattr``; a policy that omits
    # them still runs, with the documented default behaviour.

    def release_assignment(self, worker_id: WorkerId, task_id: TaskId) -> bool:
        """Reopen one outstanding (unanswered) slot after lease expiry.

        Optional; default when absent: the platform falls back to
        :meth:`expire_stale_assignments`, or does nothing if that is
        missing too (the slot is then permanently consumed).
        """
        ...

    def expire_stale_assignments(
        self, max_age: int
    ) -> list[tuple[WorkerId, TaskId]]:
        """Release every outstanding assignment older than ``max_age``
        policy-clock ticks.

        Optional; default when absent: a no-op returning ``[]`` — the
        platform-side lease ledger then provides the only reclamation.
        """
        ...


@dataclass
class PlatformReport:
    """Outcome of one platform run."""

    steps: int
    finished: bool
    predictions: dict[TaskId, Label]
    events: EventLog
    payments: PaymentLedger
    stalled: bool = False
    rejected_workers: list[WorkerId] = field(default_factory=list)
    leases: LeaseStats = field(default_factory=LeaseStats)
    faults: FaultStats = field(default_factory=FaultStats)
    #: flat metric snapshot (``recorder.snapshot()``) of the run; empty
    #: when the platform ran without a recorder.
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def num_answers(self) -> int:
        return len(self.events.answers())

    @property
    def total_cost(self) -> float:
        return self.payments.total_cost

    def accuracy(
        self, tasks: TaskSet, exclude: set[TaskId] | None = None
    ) -> float:
        """Fraction of tasks whose predicted result matches ground truth.

        ``exclude`` typically holds the qualification task ids so the
        gold-labelled freebies do not inflate the metric.  An empty
        denominator (every task excluded) is *not* "all wrong": it
        returns NaN so experiment reports cannot mistake it for 0%.
        """
        exclude = exclude or set()
        considered = [t for t in tasks if t.task_id not in exclude]
        if not considered:
            return float("nan")
        correct = sum(
            1
            for t in considered
            if self.predictions.get(t.task_id) == t.truth
        )
        return correct / len(considered)

    def accuracy_by_domain(
        self, tasks: TaskSet, exclude: set[TaskId] | None = None
    ) -> dict[str, float]:
        """Per-domain accuracy (the paper's per-domain bars).

        Domains whose every task is excluded map to NaN, mirroring
        :meth:`accuracy`'s empty-denominator convention.
        """
        exclude = exclude or set()
        totals: dict[str, int] = {}
        corrects: dict[str, int] = {}
        for task in tasks:
            totals.setdefault(task.domain, 0)
            if task.task_id in exclude:
                continue
            totals[task.domain] += 1
            if self.predictions.get(task.task_id) == task.truth:
                corrects[task.domain] = corrects.get(task.domain, 0) + 1
        return {
            domain: (
                corrects.get(domain, 0) / total
                if total
                else float("nan")
            )
            for domain, total in totals.items()
        }


class SimulatedPlatform:
    """Drives a policy against a simulated worker pool.

    Parameters
    ----------
    tasks:
        The microtask set being crowdsourced.
    pool:
        The dynamic worker pool.
    policy:
        The assignment policy under evaluation.
    price_per_assignment / tasks_per_hit:
        Pricing used by the payment ledger (paper defaults: $0.10 for a
        10-microtask HIT, i.e. one cent per answered microtask).
    abandonment:
        Probability a worker walks away from an issued assignment
        without answering (the MTurk "returned HIT" case); the lease
        ledger reclaims the slot after ``assignment_timeout`` steps.
    assignment_timeout:
        Lease lifetime in platform steps; expiry runs every step.
    faults:
        Optional :class:`FaultConfig`; ``None`` and
        ``FaultConfig.disabled()`` behave identically.
    recorder:
        Observability recorder (``None`` = disabled).  Shared with the
        lease ledger and the fault injector; the run loop records step,
        request, assignment and answer-outcome counters and a
        ``platform.run`` span, and :attr:`PlatformReport.metrics`
        carries the final snapshot.  The recorder never draws from any
        RNG stream, so a seeded run's event log is byte-identical with
        and without one.
    """

    def __init__(
        self,
        tasks: TaskSet,
        pool: WorkerPool,
        policy: PolicyProtocol,
        price_per_assignment: float = DEFAULT_PRICE_PER_ASSIGNMENT,
        tasks_per_hit: int = DEFAULT_TASKS_PER_HIT,
        abandonment: float = 0.0,
        assignment_timeout: int = 50,
        faults: FaultConfig | None = None,
        seed: int = 0,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        if not 0.0 <= abandonment < 1.0:
            raise ValueError(
                f"abandonment must be in [0, 1), got {abandonment}"
            )
        if assignment_timeout <= 0:
            raise ValueError("assignment_timeout must be positive")
        self.tasks = tasks
        self.pool = pool
        self.policy = policy
        self.abandonment = abandonment
        self.assignment_timeout = assignment_timeout
        self.recorder = recorder
        self.events = EventLog()
        self.payments = PaymentLedger(
            price_per_microtask=price_per_assignment / tasks_per_hit
        )
        self.leases = LeaseLedger(assignment_timeout, recorder=self.recorder)
        self.injector = FaultInjector(
            faults or FaultConfig.disabled(),
            seed=seed,
            recorder=self.recorder,
        )
        self._rejected: list[WorkerId] = []
        #: late-fault answers held until after their lease expired:
        #: (deliver_at_step, worker, task, label, is_test)
        self._held: list[tuple[int, WorkerId, TaskId, Label, bool]] = []
        from repro.utils.rng import spawn_rng

        self._rng = spawn_rng(seed, "platform-abandonment")

    def run(self, max_steps: int | None = None) -> PlatformReport:
        """Run the interaction loop until completion, stall or cap.

        ``max_steps`` defaults to a generous multiple of the total work
        (k answers per task plus warm-up), so broken policies terminate.
        """
        with self.recorder.span("platform.run"):
            report = self._run_loop(max_steps)
        report.metrics = self.recorder.snapshot()
        return report

    def _run_loop(self, max_steps: int | None) -> PlatformReport:
        if max_steps is None:
            max_steps = 200 * max(1, len(self.tasks))
        step = 0
        consecutive_blanks = 0
        stall_limit = 3 * max(1, len(self.pool))
        if self.injector.config.blackout_rate > 0.0:
            # blanks during a blackout burst are downtime, not a stall
            stall_limit += 2 * self.injector.config.blackout_duration
        stalled = False
        while step < max_steps and not self.policy.is_finished():
            step += 1
            self.pool.tick()
            self._apply_blackouts()
            self._deliver_held(step)
            self._expire_due(step)
            requester = self.pool.sample_requester()
            if requester is None:
                consecutive_blanks += 1
                if consecutive_blanks > stall_limit:
                    stalled = True
                    break
                continue
            self.events.append(RequestEvent(step=step, worker_id=requester))
            self.recorder.counter(
                "repro_platform_requests_total",
                "Task requests issued by sampled workers.",
            ).inc()
            assignment = self.policy.on_worker_request(
                requester, self.pool.active_workers()
            )
            if assignment is None:
                self.recorder.counter(
                    "repro_platform_blank_requests_total",
                    "Requests the policy served with no assignment.",
                ).inc()
                # nothing for this worker: rejected, or no eligible task
                if self._policy_rejected(requester):
                    self.pool.remove(requester)
                    self._rejected.append(requester)
                    self.events.append(
                        RejectEvent(step=step, worker_id=requester)
                    )
                consecutive_blanks += 1
                if consecutive_blanks > stall_limit:
                    stalled = True
                    break
                continue
            consecutive_blanks = 0
            self.events.append(
                AssignEvent(
                    step=step,
                    worker_id=requester,
                    task_id=assignment.task_id,
                    is_test=assignment.is_test,
                )
            )
            lease = self.leases.issue(
                requester, assignment.task_id, step, assignment.is_test
            )
            self.recorder.counter(
                "repro_platform_assignments_total",
                "Assignments issued, split by qualification tests.",
                is_test=str(assignment.is_test).lower(),
            ).inc()
            if (
                self.abandonment
                and not assignment.is_test
                and self._rng.random() < self.abandonment
            ):
                # the worker walks away without answering: no submission
                # is credited, and the open lease is reclaimed by expiry
                self.pool.note_abandonment(requester)
                self.recorder.counter(
                    "repro_platform_abandonments_total",
                    "Assignments abandoned without a submission.",
                ).inc()
                continue
            worker = self.pool.worker(requester)
            label = worker.answer(self.tasks[assignment.task_id])
            if self.injector.malformed_submission():
                # garbage submit: dropped before it reaches the policy;
                # the lease stays open and expiry requeues the slot
                self.pool.note_submission(requester)
                continue
            if not assignment.is_test and self.injector.late_answer():
                # the worker sits on the answer until after expiry
                self._held.append(
                    (
                        lease.expires_at + 2,
                        requester,
                        assignment.task_id,
                        label,
                        assignment.is_test,
                    )
                )
                self.pool.note_submission(requester)
                continue
            self._deliver(
                step, requester, assignment.task_id, label,
                assignment.is_test,
            )
            if self.injector.duplicate_submission():
                # the same submission arrives again (client retry): the
                # ledger flags it and the policy must shrug it off
                self._deliver(
                    step, requester, assignment.task_id, label,
                    assignment.is_test,
                )
            self.pool.note_submission(requester)
        if step:
            self.recorder.counter(
                "repro_platform_steps_total", "Interaction-loop steps run."
            ).inc(step)
        return PlatformReport(
            steps=step,
            finished=self.policy.is_finished(),
            predictions=self.policy.predictions(),
            events=self.events,
            payments=self.payments,
            stalled=stalled,
            rejected_workers=list(self._rejected),
            leases=self.leases.stats,
            faults=self.injector.stats,
        )

    # ------------------------------------------------------------------
    def _deliver(
        self,
        step: int,
        worker_id: WorkerId,
        task_id: TaskId,
        label: Label,
        is_test: bool,
    ) -> bool:
        """Deliver one submission through the lease ledger to the policy.

        Returns True when the answer was accepted (event recorded and
        the worker paid); late, duplicate and policy-ignored answers
        are dropped and counted.
        """
        settle = self.leases.settle(worker_id, task_id, step)
        if settle is SettleResult.LATE:
            # the lease expired and the slot was requeued: the answer
            # can no longer count (it may not even be a valid vote)
            self._count_answer("late")
            return False
        if settle in (SettleResult.DUPLICATE, SettleResult.UNKNOWN):
            # deliver anyway: idempotent policies must leave their
            # state untouched and report the duplicate
            outcome = _coerce_outcome(
                self.policy.on_answer(worker_id, task_id, label, is_test)
            )
            if outcome.accepted:
                raise RuntimeError(
                    f"policy accepted a duplicate submission for "
                    f"({worker_id!r}, {task_id}); on_answer must be "
                    f"idempotent"
                )
            self.injector.stats.duplicates_dropped += 1
            self._count_answer(settle.value)
            return False
        completed_before = self._completed_tasks()
        outcome = _coerce_outcome(
            self.policy.on_answer(worker_id, task_id, label, is_test)
        )
        if not outcome.accepted:
            self._count_answer(outcome.name.lower())
            return False
        self._count_answer("accepted")
        self.events.append(
            AnswerEvent(
                step=step,
                worker_id=worker_id,
                task_id=task_id,
                label=label,
                is_test=is_test,
            )
        )
        newly_completed = self._completed_tasks() - completed_before
        for completed_id in sorted(newly_completed):
            self.events.append(
                CompleteEvent(
                    step=step,
                    task_id=completed_id,
                    consensus=self.policy.predictions()[completed_id],
                )
            )
        if newly_completed:
            self.recorder.counter(
                "repro_platform_completions_total",
                "Tasks whose vote reached global completion.",
            ).inc(len(newly_completed))
        self.payments.pay_once(worker_id, task_id)
        return True

    def _count_answer(self, result: str) -> None:
        self.recorder.counter(
            "repro_platform_answers_total",
            "Submissions delivered through the lease ledger, by result.",
            result=result,
        ).inc()

    def _deliver_held(self, step: int) -> None:
        """Deliver answers the late-fault held past their lease expiry."""
        if not self._held:
            return
        due = [item for item in self._held if item[0] <= step]
        if not due:
            return
        self._held = [item for item in self._held if item[0] > step]
        for _, worker_id, task_id, label, is_test in due:
            if not self._deliver(step, worker_id, task_id, label, is_test):
                self.injector.stats.late_dropped += 1

    def _expire_due(self, step: int) -> None:
        """Reclaim every lease past its deadline — runs every step,
        independent of the abandonment setting."""
        due = self.leases.expire_due(step)
        if due:
            self.recorder.counter(
                "repro_platform_lease_sweeps_total",
                "Expiry sweeps that reclaimed at least one lease.",
            ).inc()
        for lease in due:
            self._release_with_policy(lease.worker_id, lease.task_id)
            self.events.append(
                ExpireEvent(
                    step=step,
                    worker_id=lease.worker_id,
                    task_id=lease.task_id,
                )
            )

    def _release_with_policy(
        self, worker_id: WorkerId, task_id: TaskId
    ) -> None:
        """Tell the policy an expired slot is open again."""
        release = getattr(self.policy, "release_assignment", None)
        if release is not None:
            release(worker_id, task_id)
            return
        expire = getattr(self.policy, "expire_stale_assignments", None)
        if expire is not None:
            expire(self.assignment_timeout)

    def _apply_blackouts(self) -> None:
        """Suspend blackout-burst victims for the configured duration."""
        victims = self.injector.blackout_victims(self.pool.active_workers())
        for worker_id in victims:
            self.pool.suspend(
                worker_id, self.injector.config.blackout_duration
            )

    def _policy_rejected(self, worker_id: WorkerId) -> bool:
        """Whether the policy has permanently rejected a worker."""
        checker = getattr(self.policy, "is_worker_rejected", None)
        if checker is None:
            return False
        return bool(checker(worker_id))

    def _completed_tasks(self) -> set[TaskId]:
        getter = getattr(self.policy, "completed_tasks", None)
        if getter is None:
            return set()
        return set(getter())


def _coerce_outcome(value: AnswerOutcome | None) -> AnswerOutcome:
    """Back-compat: policies returning None are treated as accepting."""
    return AnswerOutcome.ACCEPTED if value is None else value


def is_empty_accuracy(value: float) -> bool:
    """Whether an accuracy value is the empty-denominator NaN marker."""
    return isinstance(value, float) and math.isnan(value)
