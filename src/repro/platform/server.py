"""HTTP facade over an assignment policy (Appendix A).

The paper deploys iCrowd behind MTurk's *ExternalQuestion* mechanism:
each HIT embeds a URL of the iCrowd web server; when a worker accepts
the HIT, AMT requests the actual microtask from that server, displays
it in an iframe, and posts the answer back.  This module reproduces
that integration surface as a small threaded HTTP server:

- ``GET /request?worker=<id>`` — ask for the next microtask; returns
  ``{"task_id", "text", "is_test"}`` or HTTP 204 when nothing is
  assignable to the worker;
- ``POST /submit`` with JSON ``{"worker", "task_id", "label",
  "is_test"}`` — submit an answer; returns the task's completion state;
- ``GET /status`` — job progress (answers collected, finished flag,
  lease counters).

Because request and submit are separate HTTP calls, a worker may
simply never post back.  Every served assignment therefore opens a
lease (:mod:`repro.platform.leases`); leases are swept on every
interaction, expired slots are requeued with the policy, and submits
are classified against the ledger:

====== ==============================================================
status meaning
====== ==============================================================
200    answer accepted (or idempotently ignored; see ``accepted``)
400    malformed JSON / missing or invalid fields
404    unknown route, unknown task id, or never-seen worker
409    duplicate submit, or no outstanding assignment for the pair
410    the assignment lease expired before the answer arrived
====== ==============================================================

The server serialises access to the policy with a lock (policies are
deliberately single-threaded state machines) and binds to an ephemeral
localhost port by default.  :class:`repro.platform.client.ICrowdClient`
is the matching bounded-retry client.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.types import AnswerOutcome, Label, TaskSet, WorkerId
from repro.platform.leases import LeaseLedger, SettleResult


class ICrowdHTTPServer:
    """Threaded HTTP wrapper around a :class:`PolicyProtocol` policy.

    Parameters
    ----------
    tasks:
        Task set (supplies the text shown to workers).
    policy:
        Any assignment policy (ICrowd or a baseline).
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    lease_timeout:
        Assignment lease lifetime, measured in server interactions
        (each handled /request or /submit advances the clock by one).
        Defaults to ``max(50, 4 * len(tasks))``.
    """

    def __init__(
        self,
        tasks: TaskSet,
        policy,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: int | None = None,
    ) -> None:
        self.tasks = tasks
        self.policy = policy
        if lease_timeout is None:
            lease_timeout = max(50, 4 * len(tasks))
        self.leases = LeaseLedger(lease_timeout)
        self._tick = 0
        self._known_workers: set[WorkerId] = set()
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve requests on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ICrowdHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _advance_and_sweep(self) -> None:
        """Advance the interaction clock and reclaim expired leases.

        Caller must hold the lock.  Expired slots are handed back to
        the policy so another worker can take them — the HTTP analogue
        of an MTurk HIT expiring unanswered.
        """
        self._tick += 1
        for lease in self.leases.expire_due(self._tick):
            release = getattr(self.policy, "release_assignment", None)
            if release is not None:
                release(lease.worker_id, lease.task_id)

    def _handle_request(self, worker_id: str) -> tuple[int, dict | None]:
        with self._lock:
            self._advance_and_sweep()
            self._known_workers.add(worker_id)
            assignment = self.policy.on_worker_request(worker_id)
            if assignment is not None:
                self.leases.issue(
                    worker_id,
                    assignment.task_id,
                    self._tick,
                    assignment.is_test,
                )
        if assignment is None:
            return 204, None
        task = self.tasks[assignment.task_id]
        return 200, {
            "task_id": assignment.task_id,
            "text": task.text,
            "is_test": assignment.is_test,
        }

    def _handle_submit(self, payload: dict) -> tuple[int, dict]:
        if not isinstance(payload, dict):
            return 400, {"error": "submit payload must be a JSON object"}
        try:
            worker_id = str(payload["worker"])
            task_id = int(payload["task_id"])
            label = Label(int(payload["label"]))
            is_test = bool(payload.get("is_test", False))
        except (KeyError, ValueError, TypeError) as exc:
            return 400, {"error": f"bad submit payload: {exc}"}
        if not 0 <= task_id < len(self.tasks):
            return 404, {"error": f"unknown task {task_id}"}
        with self._lock:
            if worker_id not in self._known_workers:
                return 404, {"error": f"unknown worker {worker_id!r}"}
            self._advance_and_sweep()
            settle = self.leases.settle(worker_id, task_id, self._tick)
            if settle is SettleResult.LATE:
                return 410, {
                    "error": (
                        f"assignment lease for task {task_id} expired; "
                        f"the slot was requeued"
                    )
                }
            if settle is SettleResult.DUPLICATE:
                return 409, {
                    "error": (
                        f"worker {worker_id!r} already submitted task "
                        f"{task_id}"
                    )
                }
            if settle is SettleResult.UNKNOWN:
                return 409, {
                    "error": (
                        f"no outstanding assignment of task {task_id} "
                        f"for worker {worker_id!r}"
                    )
                }
            outcome = self.policy.on_answer(
                worker_id, task_id, label, is_test
            )
            if outcome is None:
                outcome = AnswerOutcome.ACCEPTED
            if outcome is AnswerOutcome.DUPLICATE:
                return 409, {
                    "error": (
                        f"worker {worker_id!r} already answered task "
                        f"{task_id}"
                    )
                }
            completed = task_id in set(
                getattr(self.policy, "completed_tasks", list)()
            )
        return 200, {
            "accepted": outcome is AnswerOutcome.ACCEPTED,
            "outcome": outcome.value,
            "task_completed": completed,
        }

    def _handle_status(self) -> tuple[int, dict]:
        with self._lock:
            finished = self.policy.is_finished()
            completed = len(
                getattr(self.policy, "completed_tasks", list)()
            )
            lease_stats = self.leases.stats.as_dict()
            outstanding = len(self.leases.outstanding())
        return 200, {
            "finished": finished,
            "completed_tasks": completed,
            "total_tasks": len(self.tasks),
            "leases": {**lease_stats, "outstanding": outstanding},
        }

    # ------------------------------------------------------------------
    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            """Routes /request, /submit and /status to the policy."""

            def log_message(self, *args) -> None:  # silence stderr
                pass

            def _reply(self, status: int, body: dict | None) -> None:
                data = (
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else b""
                )
                self.send_response(status)
                if data:
                    self.send_header(
                        "Content-Type", "application/json"
                    )
                    self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                if data:
                    self.wfile.write(data)

            def do_GET(self) -> None:
                parsed = urlparse(self.path)
                if parsed.path == "/request":
                    params = parse_qs(parsed.query)
                    workers = params.get("worker")
                    if not workers:
                        self._reply(
                            400, {"error": "missing worker parameter"}
                        )
                        return
                    status, body = server._handle_request(workers[0])
                    self._reply(status, body)
                elif parsed.path == "/status":
                    status, body = server._handle_status()
                    self._reply(status, body)
                else:
                    self._reply(404, {"error": "not found"})

            def do_POST(self) -> None:
                parsed = urlparse(self.path)
                if parsed.path != "/submit":
                    self._reply(404, {"error": "not found"})
                    return
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    return
                status, body = server._handle_submit(payload)
                self._reply(status, body)

        return Handler
