"""HTTP facade over an assignment policy (Appendix A).

The paper deploys iCrowd behind MTurk's *ExternalQuestion* mechanism:
each HIT embeds a URL of the iCrowd web server; when a worker accepts
the HIT, AMT requests the actual microtask from that server, displays
it in an iframe, and posts the answer back.  This module reproduces
that integration surface as a small threaded HTTP server:

- ``GET /request?worker=<id>`` — ask for the next microtask; returns
  ``{"task_id", "text", "is_test"}`` or HTTP 204 when nothing is
  assignable to the worker;
- ``POST /submit`` with JSON ``{"worker", "task_id", "label",
  "is_test"}`` — submit an answer; returns the task's completion state;
- ``GET /status`` — job progress (answers collected, finished flag,
  lease counters).

Because request and submit are separate HTTP calls, a worker may
simply never post back.  Every served assignment therefore opens a
lease (:mod:`repro.platform.leases`); leases are swept on every
interaction, expired slots are requeued with the policy, and submits
are classified against the ledger:

====== ==============================================================
status meaning
====== ==============================================================
200    answer accepted (or idempotently ignored; see ``accepted``)
400    malformed JSON / missing or invalid fields
404    unknown route, unknown task id, or never-seen worker
409    duplicate submit, or no outstanding assignment for the pair
410    the assignment lease expired before the answer arrived
====== ==============================================================

The server serialises access to the policy with a lock (policies are
deliberately single-threaded state machines) and binds to an ephemeral
localhost port by default.  :class:`repro.platform.client.ICrowdClient`
is the matching bounded-retry client.

Two observability surfaces make served rounds reconstructable after
the fact:

- **causal tracing** — handlers honour the W3C ``traceparent`` header
  (malformed or absent → a fresh trace): each request runs inside a
  ``server.<endpoint>`` span joined to the caller's trace, with nested
  ``server.lease_issue`` / ``server.aggregate`` spans around the two
  state transitions that matter;
- **flight data** — the server keeps its own :class:`EventLog` of
  request/assign/answer/complete/expire events at interaction-tick
  granularity, so :class:`repro.obs.FlightRecorder` can join it with
  the span trace into per-task lifecycle timelines.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlparse

from repro.core.types import AnswerOutcome, Label, TaskSet, WorkerId

if TYPE_CHECKING:
    from repro.platform.platform import PolicyProtocol
from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.ids import (
    TRACEPARENT_HEADER,
    TraceContext,
    parse_traceparent,
)
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, Recorder
from repro.platform.events import (
    AnswerEvent,
    AssignEvent,
    CompleteEvent,
    EventLog,
    ExpireEvent,
    RequestEvent,
)
from repro.platform.leases import LeaseLedger, SettleResult

_LOGGER = get_logger("platform.server")


class ICrowdHTTPServer:
    """Threaded HTTP wrapper around a :class:`PolicyProtocol` policy.

    Parameters
    ----------
    tasks:
        Task set (supplies the text shown to workers).
    policy:
        Any assignment policy (ICrowd or a baseline).
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    lease_timeout:
        Assignment lease lifetime, measured in server interactions
        (each handled /request or /submit advances the clock by one).
        Defaults to ``max(50, 4 * len(tasks))``.
    recorder:
        Observability recorder.  Unlike the in-process components the
        server defaults to its *own* :class:`MetricsRegistry` (not the
        null recorder) so ``GET /metrics`` serves Prometheus text out
        of the box; pass an explicit registry to aggregate with policy
        metrics, or :data:`repro.obs.NULL_RECORDER` to disable.
    """

    def __init__(
        self,
        tasks: TaskSet,
        policy: "PolicyProtocol",
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: int | None = None,
        # repro-lint: disable=RL005 -- None means "own a live registry":
        # the server serves GET /metrics, so its default is a real
        # MetricsRegistry created below, not the null recorder.
        recorder: Recorder | None = None,
    ) -> None:
        self.tasks = tasks
        self.policy = policy
        self.recorder = MetricsRegistry() if recorder is None else recorder
        self._clock = getattr(self.recorder, "clock", time.perf_counter)
        if lease_timeout is None:
            lease_timeout = max(50, 4 * len(tasks))
        self.leases = LeaseLedger(lease_timeout, recorder=self.recorder)
        #: Flight data: every served interaction as a typed event, at
        #: interaction-tick granularity (guarded by the server lock).
        self.events = EventLog()
        self._tick = 0
        self._known_workers: set[WorkerId] = set()
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve requests on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ICrowdHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _advance_and_sweep(self) -> None:
        """Advance the interaction clock and reclaim expired leases.

        Caller must hold the lock.  Expired slots are handed back to
        the policy so another worker can take them — the HTTP analogue
        of an MTurk HIT expiring unanswered.
        """
        self._tick += 1
        for lease in self.leases.expire_due(self._tick):
            self.events.append(
                ExpireEvent(
                    step=self._tick,
                    worker_id=lease.worker_id,
                    task_id=lease.task_id,
                )
            )
            release = getattr(self.policy, "release_assignment", None)
            if release is not None:
                release(lease.worker_id, lease.task_id)

    def _handle_request(
        self, worker_id: str
    ) -> tuple[int, dict[str, object] | None]:
        with self._lock:
            self._advance_and_sweep()
            self._known_workers.add(worker_id)
            self.events.append(
                RequestEvent(step=self._tick, worker_id=worker_id)
            )
            assignment = self.policy.on_worker_request(worker_id)
            if assignment is not None:
                with self.recorder.span(
                    "server.lease_issue", worker=worker_id
                ):
                    self.leases.issue(
                        worker_id,
                        assignment.task_id,
                        self._tick,
                        assignment.is_test,
                    )
                self.events.append(
                    AssignEvent(
                        step=self._tick,
                        worker_id=worker_id,
                        task_id=assignment.task_id,
                        is_test=assignment.is_test,
                    )
                )
        if assignment is None:
            return 204, None
        task = self.tasks[assignment.task_id]
        return 200, {
            "task_id": assignment.task_id,
            "text": task.text,
            "is_test": assignment.is_test,
        }

    def _handle_submit(
        self, payload: object
    ) -> tuple[int, dict[str, object]]:
        if not isinstance(payload, dict):
            return 400, {"error": "submit payload must be a JSON object"}
        try:
            worker_id = str(payload["worker"])
            task_id = int(payload["task_id"])
            label = Label(int(payload["label"]))
            is_test = bool(payload.get("is_test", False))
        except (KeyError, ValueError, TypeError) as exc:
            return 400, {"error": f"bad submit payload: {exc}"}
        if not 0 <= task_id < len(self.tasks):
            return 404, {"error": f"unknown task {task_id}"}
        with self._lock:
            if worker_id not in self._known_workers:
                return 404, {"error": f"unknown worker {worker_id!r}"}
            self._advance_and_sweep()
            settle = self.leases.settle(worker_id, task_id, self._tick)
            if settle is SettleResult.LATE:
                self._count_rejection("late")
                return 410, {
                    "error": (
                        f"assignment lease for task {task_id} expired; "
                        f"the slot was requeued"
                    )
                }
            if settle is SettleResult.DUPLICATE:
                self._count_rejection("duplicate")
                return 409, {
                    "error": (
                        f"worker {worker_id!r} already submitted task "
                        f"{task_id}"
                    )
                }
            if settle is SettleResult.UNKNOWN:
                self._count_rejection("unknown")
                return 409, {
                    "error": (
                        f"no outstanding assignment of task {task_id} "
                        f"for worker {worker_id!r}"
                    )
                }
            completed_before = set(
                getattr(self.policy, "completed_tasks", list)()
            )
            with self.recorder.span(
                "server.aggregate", worker=worker_id, task=task_id
            ):
                outcome = self.policy.on_answer(
                    worker_id, task_id, label, is_test
                )
            if outcome is None:
                outcome = AnswerOutcome.ACCEPTED
            if outcome is AnswerOutcome.DUPLICATE:
                self._count_rejection("policy_duplicate")
                return 409, {
                    "error": (
                        f"worker {worker_id!r} already answered task "
                        f"{task_id}"
                    )
                }
            if outcome is AnswerOutcome.ACCEPTED:
                self.events.append(
                    AnswerEvent(
                        step=self._tick,
                        worker_id=worker_id,
                        task_id=task_id,
                        label=label,
                        is_test=is_test,
                    )
                )
            completed_now = set(
                getattr(self.policy, "completed_tasks", list)()
            )
            predictions = getattr(self.policy, "predictions", None)
            for completed_id in sorted(completed_now - completed_before):
                consensus = (
                    predictions()[completed_id]
                    if predictions is not None
                    else label
                )
                self.events.append(
                    CompleteEvent(
                        step=self._tick,
                        task_id=completed_id,
                        consensus=consensus,
                    )
                )
            completed = task_id in completed_now
        return 200, {
            "accepted": outcome is AnswerOutcome.ACCEPTED,
            "outcome": outcome.value,
            "task_completed": completed,
        }

    def _count_rejection(self, reason: str) -> None:
        """Count a rejected submit (the HTTP-visible fault surface)."""
        self.recorder.counter(
            "repro_http_submit_rejections_total",
            "Submits rejected by the lease ledger or the policy.",
            reason=reason,
        ).inc()

    def _handle_metrics(self) -> tuple[int, str | None]:
        """Render the registry as Prometheus text (0.0.4 exposition)."""
        if not self.recorder.enabled:
            return 503, None
        with self._lock:
            return 200, render_prometheus(self.recorder)

    def _handle_status(self) -> tuple[int, dict[str, object]]:
        with self._lock:
            finished = self.policy.is_finished()
            completed = len(
                getattr(self.policy, "completed_tasks", list)()
            )
            lease_stats = self.leases.stats.as_dict()
            outstanding = len(self.leases.outstanding())
        return 200, {
            "finished": finished,
            "completed_tasks": completed,
            "total_tasks": len(self.tasks),
            "leases": {**lease_stats, "outstanding": outstanding},
        }

    # ------------------------------------------------------------------
    def _make_handler(self) -> type[BaseHTTPRequestHandler]:
        server = self

        class Handler(BaseHTTPRequestHandler):
            """Routes /request, /submit, /status and /metrics."""

            def log_message(self, format: str, *args: object) -> None:
                # Stdlib access lines go to the structured "repro"
                # logger at DEBUG: stderr stays clean unless a caller
                # attaches a handler and opts in.
                log_event(
                    _LOGGER,
                    logging.DEBUG,
                    "http.access",
                    client=self.address_string(),
                    line=format % args,
                )

            def _observe(
                self, endpoint: str, status: int, started: float
            ) -> None:
                server.recorder.counter(
                    "repro_http_requests_total",
                    "HTTP requests handled, by endpoint and status.",
                    endpoint=endpoint,
                    status=str(status),
                ).inc()
                server.recorder.histogram(
                    "repro_http_request_seconds",
                    "Request handling latency, by endpoint.",
                    endpoint=endpoint,
                ).observe(server._clock() - started)

            def _reply(
                self, status: int, body: dict[str, object] | None
            ) -> None:
                data = (
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else b""
                )
                self._reply_raw(status, data, "application/json")

            def _reply_raw(
                self, status: int, data: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                if data:
                    self.send_header("Content-Type", content_type)
                    self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                if data:
                    self.wfile.write(data)

            def _remote_context(self) -> TraceContext | None:
                # A malformed or absent traceparent header must never
                # fail a request: parse_traceparent returns None and
                # the handler span roots a fresh trace instead.
                header = self.headers.get(TRACEPARENT_HEADER) or ""
                return parse_traceparent(header)

            def do_GET(self) -> None:
                started = server._clock()
                parsed = urlparse(self.path)
                endpoint = parsed.path
                remote = self._remote_context()
                if parsed.path == "/request":
                    params = parse_qs(parsed.query)
                    workers = params.get("worker")
                    if not workers:
                        status, body = (
                            400, {"error": "missing worker parameter"}
                        )
                    else:
                        with server.recorder.span(
                            "server.request", remote_context=remote
                        ):
                            status, body = server._handle_request(
                                workers[0]
                            )
                elif parsed.path == "/status":
                    with server.recorder.span(
                        "server.status", remote_context=remote
                    ):
                        status, body = server._handle_status()
                elif parsed.path == "/metrics":
                    with server.recorder.span(
                        "server.metrics", remote_context=remote
                    ):
                        status, text = server._handle_metrics()
                    self._reply_raw(
                        status,
                        text.encode("utf-8") if text else b"",
                        CONTENT_TYPE,
                    )
                    self._observe(endpoint, status, started)
                    return
                else:
                    endpoint = "(unknown)"
                    status, body = 404, {"error": "not found"}
                self._reply(status, body)
                self._observe(endpoint, status, started)

            def do_POST(self) -> None:
                started = server._clock()
                parsed = urlparse(self.path)
                if parsed.path != "/submit":
                    self._reply(404, {"error": "not found"})
                    self._observe("(unknown)", 404, started)
                    return
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    self._observe("/submit", 400, started)
                    return
                with server.recorder.span(
                    "server.submit", remote_context=self._remote_context()
                ):
                    status, body = server._handle_submit(payload)
                self._reply(status, body)
                self._observe("/submit", status, started)

        return Handler
