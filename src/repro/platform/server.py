"""HTTP facade over an assignment policy (Appendix A).

The paper deploys iCrowd behind MTurk's *ExternalQuestion* mechanism:
each HIT embeds a URL of the iCrowd web server; when a worker accepts
the HIT, AMT requests the actual microtask from that server, displays
it in an iframe, and posts the answer back.  This module reproduces
that integration surface as a small threaded HTTP server:

- ``GET /request?worker=<id>`` — ask for the next microtask; returns
  ``{"task_id", "text", "is_test"}`` or HTTP 204 when nothing is
  assignable to the worker;
- ``POST /submit`` with JSON ``{"worker", "task_id", "label",
  "is_test"}`` — submit an answer; returns the task's completion state;
- ``GET /status`` — job progress (answers collected, finished flag).

The server serialises access to the policy with a lock (policies are
deliberately single-threaded state machines), binds to an ephemeral
localhost port by default, and is used by the integration tests to
exercise the exact request/submit loop the paper's Figure 11 shows.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.types import Label, TaskSet


class ICrowdHTTPServer:
    """Threaded HTTP wrapper around a :class:`PolicyProtocol` policy.

    Parameters
    ----------
    tasks:
        Task set (supplies the text shown to workers).
    policy:
        Any assignment policy (ICrowd or a baseline).
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    """

    def __init__(
        self,
        tasks: TaskSet,
        policy,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.tasks = tasks
        self.policy = policy
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve requests on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ICrowdHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _handle_request(self, worker_id: str) -> tuple[int, dict | None]:
        with self._lock:
            assignment = self.policy.on_worker_request(worker_id)
        if assignment is None:
            return 204, None
        task = self.tasks[assignment.task_id]
        return 200, {
            "task_id": assignment.task_id,
            "text": task.text,
            "is_test": assignment.is_test,
        }

    def _handle_submit(self, payload: dict) -> tuple[int, dict]:
        try:
            worker_id = str(payload["worker"])
            task_id = int(payload["task_id"])
            label = Label(int(payload["label"]))
            is_test = bool(payload.get("is_test", False))
        except (KeyError, ValueError, TypeError) as exc:
            return 400, {"error": f"bad submit payload: {exc}"}
        if not 0 <= task_id < len(self.tasks):
            return 400, {"error": f"unknown task {task_id}"}
        with self._lock:
            try:
                self.policy.on_answer(worker_id, task_id, label, is_test)
            except ValueError as exc:
                return 409, {"error": str(exc)}
            completed = task_id in set(
                getattr(self.policy, "completed_tasks", list)()
            )
        return 200, {"accepted": True, "task_completed": completed}

    def _handle_status(self) -> tuple[int, dict]:
        with self._lock:
            finished = self.policy.is_finished()
            completed = len(
                getattr(self.policy, "completed_tasks", list)()
            )
        return 200, {
            "finished": finished,
            "completed_tasks": completed,
            "total_tasks": len(self.tasks),
        }

    # ------------------------------------------------------------------
    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            """Routes /request, /submit and /status to the policy."""

            def log_message(self, *args) -> None:  # silence stderr
                pass

            def _reply(self, status: int, body: dict | None) -> None:
                data = (
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else b""
                )
                self.send_response(status)
                if data:
                    self.send_header(
                        "Content-Type", "application/json"
                    )
                    self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                if data:
                    self.wfile.write(data)

            def do_GET(self) -> None:
                parsed = urlparse(self.path)
                if parsed.path == "/request":
                    params = parse_qs(parsed.query)
                    workers = params.get("worker")
                    if not workers:
                        self._reply(
                            400, {"error": "missing worker parameter"}
                        )
                        return
                    status, body = server._handle_request(workers[0])
                    self._reply(status, body)
                elif parsed.path == "/status":
                    status, body = server._handle_status()
                    self._reply(status, body)
                else:
                    self._reply(404, {"error": "not found"})

            def do_POST(self) -> None:
                parsed = urlparse(self.path)
                if parsed.path != "/submit":
                    self._reply(404, {"error": "not found"})
                    return
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    self._reply(400, {"error": "invalid JSON"})
                    return
                status, body = server._handle_submit(payload)
                self._reply(status, body)

        return Handler
