"""Text-processing substrate: tokenisation, TF-IDF, and LDA.

Section 3.3 / Appendix D.1 of the paper derive microtask similarities
from task text using Jaccard over token sets, cosine over TF-IDF
vectors, and cosine over LDA topic distributions.  This package
implements all three representations from scratch (no external NLP
dependencies are available offline).
"""

from repro.text.tokenize import STOPWORDS, tokenize
from repro.text.tfidf import TfIdfVectorizer
from repro.text.lda import LatentDirichletAllocation

__all__ = [
    "LatentDirichletAllocation",
    "STOPWORDS",
    "TfIdfVectorizer",
    "tokenize",
]
