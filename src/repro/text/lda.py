"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

The cos(topic) similarity of Appendix D.1 — the paper's best-performing
measure — requires a per-task topic distribution from an LDA model
(Blei et al., cited as [6]).  No topic-modelling library is available
offline, so this module implements the standard collapsed Gibbs sampler
(Griffiths & Steyvers, 2004) from scratch:

- topic assignment ``z`` for every token position,
- count matrices ``n_dk`` (doc × topic) and ``n_kw`` (topic × word),
- full-conditional draw  P(z=k) ∝ (n_dk + α) · (n_kw + β) / (n_k + Vβ).

The sampler is deterministic given a seed, vectorised where it matters,
and sized for corpora of a few hundred short documents (the paper's
datasets are 110 and 360 microtasks).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.tokenize import tokenize


class LatentDirichletAllocation:
    """Collapsed-Gibbs LDA returning per-document topic distributions.

    Parameters
    ----------
    num_topics:
        Number of latent topics K.
    alpha:
        Symmetric Dirichlet prior on document-topic mixtures.  The
        classic Griffiths-Steyvers ``50 / K`` suits long documents;
        microtasks are 5-15 tokens, where that prior would drown the
        evidence, so the default here is 0.1 (a standard short-text
        setting).
    beta:
        Symmetric Dirichlet prior on topic-word distributions.
    num_iterations:
        Gibbs sweeps over the corpus.
    seed:
        RNG seed; identical seeds give identical topic distributions.
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float | None = None,
        beta: float = 0.01,
        num_iterations: int = 200,
        seed: int = 0,
    ) -> None:
        if num_topics <= 1:
            raise ValueError(f"num_topics must be > 1, got {num_topics}")
        if num_iterations <= 0:
            raise ValueError("num_iterations must be positive")
        if beta <= 0:
            raise ValueError("beta must be positive")
        if alpha is not None and alpha <= 0:
            raise ValueError("alpha must be positive")
        self.num_topics = num_topics
        self.alpha = alpha if alpha is not None else 0.1
        self.beta = beta
        self.num_iterations = num_iterations
        self.seed = seed
        self.vocabulary_: dict[str, int] = {}
        self.doc_topic_: np.ndarray | None = None
        self.topic_word_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit the sampler and return the (n_docs × K) topic matrix.

        Rows are proper probability distributions (sum to 1).  Documents
        whose every token is a stop-word receive the uniform distribution.
        """
        if not documents:
            raise ValueError("cannot fit LDA on an empty corpus")
        token_docs = [tokenize(doc) for doc in documents]
        self.vocabulary_ = self._build_vocabulary(token_docs)
        encoded = [
            np.array([self.vocabulary_[t] for t in doc], dtype=np.int64)
            for doc in token_docs
        ]
        self.doc_topic_, self.topic_word_ = self._gibbs(encoded)
        return self.doc_topic_

    def _build_vocabulary(
        self, token_docs: Sequence[Sequence[str]]
    ) -> dict[str, int]:
        vocab: dict[str, int] = {}
        for doc in token_docs:
            for token in doc:
                if token not in vocab:
                    vocab[token] = len(vocab)
        if not vocab:
            raise ValueError("corpus contains no non-stopword tokens")
        return vocab

    def _gibbs(
        self, encoded: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run collapsed Gibbs sampling and return (theta, phi)."""
        rng = np.random.default_rng(self.seed)
        n_docs = len(encoded)
        n_words = len(self.vocabulary_)
        k = self.num_topics

        n_dk = np.zeros((n_docs, k), dtype=np.int64)
        n_kw = np.zeros((k, n_words), dtype=np.int64)
        n_k = np.zeros(k, dtype=np.int64)
        assignments: list[np.ndarray] = []

        # random initialisation of topic assignments
        for d, words in enumerate(encoded):
            z = rng.integers(0, k, size=len(words))
            assignments.append(z)
            for word, topic in zip(words, z):
                n_dk[d, topic] += 1
                n_kw[topic, word] += 1
                n_k[topic] += 1

        v_beta = n_words * self.beta
        for _ in range(self.num_iterations):
            for d, words in enumerate(encoded):
                z = assignments[d]
                for pos, word in enumerate(words):
                    topic = z[pos]
                    # remove current assignment from the counts
                    n_dk[d, topic] -= 1
                    n_kw[topic, word] -= 1
                    n_k[topic] -= 1
                    # full conditional over topics
                    weights = (n_dk[d] + self.alpha) * (
                        (n_kw[:, word] + self.beta) / (n_k + v_beta)
                    )
                    total = weights.sum()
                    topic = int(
                        np.searchsorted(
                            np.cumsum(weights), rng.random() * total
                        )
                    )
                    topic = min(topic, k - 1)
                    z[pos] = topic
                    n_dk[d, topic] += 1
                    n_kw[topic, word] += 1
                    n_k[topic] += 1

        theta = (n_dk + self.alpha).astype(np.float64)
        theta /= theta.sum(axis=1, keepdims=True)
        phi = (n_kw + self.beta).astype(np.float64)
        phi /= phi.sum(axis=1, keepdims=True)
        return theta, phi

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def top_words(self, topic: int, n: int = 10) -> list[str]:
        """Most probable words of a topic (for debugging / examples)."""
        if self.topic_word_ is None:
            raise RuntimeError("LDA model is not fitted")
        if not 0 <= topic < self.num_topics:
            raise ValueError(f"topic index {topic} out of range")
        inverse = {idx: word for word, idx in self.vocabulary_.items()}
        order = np.argsort(self.topic_word_[topic])[::-1][:n]
        return [inverse[int(i)] for i in order]
