"""TF-IDF vectorisation for the cos(tf-idf) similarity (Appendix D.1).

Implements the standard smooth-IDF weighting with L2 normalisation so
that cosine similarity reduces to a dot product.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.text.tokenize import tokenize


class TfIdfVectorizer:
    """Fit a vocabulary on a corpus and transform documents to TF-IDF rows.

    The vectorizer is deliberately minimal: lower-case word tokens,
    smooth inverse document frequency ``log((1 + n) / (1 + df)) + 1``,
    and L2-normalised rows.

    Examples
    --------
    >>> vec = TfIdfVectorizer().fit(["iphone 4 wifi", "ipad 3 wifi"])
    >>> matrix = vec.transform(["iphone 4 wifi"])
    >>> matrix.shape[0]
    1
    """

    def __init__(self) -> None:
        self.vocabulary_: dict[str, int] = {}
        self.idf_: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.idf_ is not None

    def fit(self, documents: Sequence[str]) -> "TfIdfVectorizer":
        """Learn the vocabulary and IDF weights from ``documents``."""
        if not documents:
            raise ValueError("cannot fit TF-IDF on an empty corpus")
        doc_freq: dict[str, int] = {}
        for doc in documents:
            # Order only feeds doc_freq counts; vocabulary is sorted().
            for token in set(tokenize(doc)):  # repro-lint: disable=RL003
                doc_freq[token] = doc_freq.get(token, 0) + 1
        self.vocabulary_ = {
            token: idx for idx, token in enumerate(sorted(doc_freq))
        }
        n_docs = len(documents)
        idf = np.empty(len(self.vocabulary_), dtype=np.float64)
        for token, idx in self.vocabulary_.items():
            idf[idx] = math.log((1 + n_docs) / (1 + doc_freq[token])) + 1.0
        self.idf_ = idf
        return self

    def transform(self, documents: Iterable[str]) -> sparse.csr_matrix:
        """Map documents into the fitted TF-IDF space (rows L2-normalised).

        Out-of-vocabulary tokens are ignored, matching standard practice.
        """
        if self.idf_ is None:
            raise RuntimeError("TfIdfVectorizer.transform called before fit")
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        n_rows = 0
        for row, doc in enumerate(documents):
            n_rows = row + 1
            counts: dict[int, int] = {}
            for token in tokenize(doc):
                idx = self.vocabulary_.get(token)
                if idx is not None:
                    counts[idx] = counts.get(idx, 0) + 1
            if not counts:
                continue
            weights = {
                idx: count * self.idf_[idx] for idx, count in counts.items()
            }
            norm = math.sqrt(sum(w * w for w in weights.values()))
            for idx, weight in weights.items():
                rows.append(row)
                cols.append(idx)
                data.append(weight / norm)
        return sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(n_rows, len(self.vocabulary_)),
            dtype=np.float64,
        )

    def fit_transform(self, documents: Sequence[str]) -> sparse.csr_matrix:
        """Fit on ``documents`` and return their TF-IDF matrix."""
        return self.fit(documents).transform(documents)
