"""Tokenisation with stop-word removal (Appendix D.1).

The paper tokenises microtask text and removes stop-words before
computing any similarity.  We implement a simple, deterministic
lower-case word tokenizer over alphanumeric runs.
"""

from __future__ import annotations

import re

#: A compact English stop-word list.  Appendix D.1 only says stop-words
#: are removed; the exact list is immaterial to the algorithms, so we use
#: the usual high-frequency function words plus the comparison phrasing
#: that appears in every ItemCompare-style microtask.
STOPWORDS: frozenset[str] = frozenset(
    """
    a an the and or of to in on for with is are was were be been being
    this that these those it its as at by from which who whom whose what
    when where why how do does did done can could should would will
    shall may might must have has had having not no nor so than then
    there here very more most much many s t
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str, remove_stopwords: bool = True) -> list[str]:
    """Split ``text`` into lower-cased alphanumeric tokens.

    Parameters
    ----------
    text:
        Raw microtask text.
    remove_stopwords:
        Drop tokens appearing in :data:`STOPWORDS` (the paper's default).

    Returns
    -------
    list of str
        Tokens in order of appearance (duplicates preserved; callers
        needing a set should wrap the result).
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if remove_stopwords:
        tokens = [tok for tok in tokens if tok not in STOPWORDS]
    return tokens


def token_set(text: str) -> frozenset[str]:
    """Deduplicated token set used by Jaccard similarity."""
    return frozenset(tokenize(text))
