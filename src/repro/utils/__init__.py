"""Small shared utilities (RNG plumbing, validation helpers)."""

from repro.utils.rng import spawn_rng, stable_hash

__all__ = ["spawn_rng", "stable_hash"]
