"""Deterministic random-number plumbing.

Experiments in this repository must be exactly reproducible: every
stochastic component (worker pool, answer noise, platform arrival order,
LDA sampler, random baselines) receives its own :class:`numpy.random
.Generator` derived from a root seed plus a stable string tag.  This
keeps components independent — adding a draw in one module never
perturbs another module's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(tag: str) -> int:
    """Map a string tag to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    for reproducible seeding; use BLAKE2 instead.
    """
    digest = hashlib.blake2b(tag.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def spawn_rng(seed: int, tag: str) -> np.random.Generator:
    """Create an independent generator for ``(seed, tag)``.

    Parameters
    ----------
    seed:
        Root experiment seed.
    tag:
        Stable name of the consuming component, e.g. ``"worker-pool"``.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, stable_hash(tag)]))
