"""Worker substrate: simulated crowd workers with diverse accuracies.

The paper's Figure 6 shows that real MTurk workers have strongly
domain-dependent accuracies — excellent in one or two familiar domains,
mediocre to worse-than-random elsewhere.  This package synthesises
worker populations with that statistical structure:

- :class:`WorkerProfile` — per-domain Bernoulli correctness rates,
- :func:`generate_profiles` — archetype mixtures (experts, generalists,
  spammers) matching the paper's observed diversity,
- :class:`SimulatedWorker` — answers tasks by flipping the domain coin,
- :class:`WorkerPool` — dynamic arrivals/departures (Section 2.1:
  "worker set in crowdsourcing is dynamic").
"""

from repro.workers.behavior import BehaviorConfig, BehavioralWorker
from repro.workers.profiles import (
    Archetype,
    WorkerProfile,
    generate_profiles,
)
from repro.workers.pool import WorkerPool
from repro.workers.simulator import SimulatedWorker

__all__ = [
    "Archetype",
    "BehaviorConfig",
    "BehavioralWorker",
    "SimulatedWorker",
    "WorkerPool",
    "WorkerProfile",
    "generate_profiles",
]
