"""Extended worker behaviour models (robustness substrate).

The paper's Definition 1 models a worker as a per-task Bernoulli
correctness probability.  Real crowds misbehave in structured ways that
quality-control systems must survive; this module layers the common
failure modes onto :class:`repro.workers.SimulatedWorker`:

- **label bias** — a tendency to answer YES (or NO) regardless of the
  task (the classic acquiescence/spam pattern);
- **fatigue** — accuracy decays with the number of completed tasks
  (attention drains over a long session);
- **learning** — the opposite: accuracy improves with practice up to a
  ceiling (workers acquire the domain as they go).

These are *simulation-side* models: estimation code never sees them,
it only sees answers — exactly how a deployed iCrowd would experience
them.  The robustness ablation bench runs iCrowd against biased and
fatigued crowds and checks quality degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Label, Task
from repro.workers.profiles import WorkerProfile
from repro.workers.simulator import SimulatedWorker


@dataclass(frozen=True)
class BehaviorConfig:
    """Knobs of the extended behaviour model.

    Attributes
    ----------
    yes_bias:
        Probability of ignoring the task entirely and answering YES
        (the acquiescence/spam pattern; 0 = unbiased).  This skews the
        worker's confusion matrix asymmetrically: accuracy on
        truth=YES tasks rises while accuracy on truth=NO tasks falls.
    fatigue_rate:
        Per-answer multiplicative decay of the accuracy *margin above
        0.5* (0 disables fatigue).  A rate of 0.01 halves the margin
        after ~69 answers.
    learning_rate:
        Per-answer growth of the margin toward the ceiling (0 disables
        learning).  Mutually exclusive with fatigue.
    floor / ceiling:
        Clamps on effective accuracy.
    """

    yes_bias: float = 0.0
    fatigue_rate: float = 0.0
    learning_rate: float = 0.0
    floor: float = 0.05
    ceiling: float = 0.98

    def __post_init__(self) -> None:
        if not 0.0 <= self.yes_bias <= 1.0:
            raise ValueError("yes_bias must be in [0, 1]")
        if self.fatigue_rate < 0 or self.learning_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.fatigue_rate > 0 and self.learning_rate > 0:
            raise ValueError("fatigue and learning are mutually exclusive")
        if not 0.0 <= self.floor < self.ceiling <= 1.0:
            raise ValueError("need 0 <= floor < ceiling <= 1")


class BehavioralWorker(SimulatedWorker):
    """A simulated worker with bias, fatigue or learning dynamics."""

    def __init__(
        self,
        profile: WorkerProfile,
        behavior: BehaviorConfig | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(profile, seed=seed)
        self.behavior = behavior or BehaviorConfig()
        self._answered = 0

    def effective_accuracy(self, task: Task) -> float:
        """Accuracy after fatigue/learning at the current answer count."""
        base = self.profile.accuracy(task.domain)
        margin = base - 0.5
        config = self.behavior
        if config.fatigue_rate > 0:
            margin *= (1.0 - config.fatigue_rate) ** self._answered
        elif config.learning_rate > 0:
            ceiling_margin = config.ceiling - 0.5
            gap = ceiling_margin - margin
            margin = ceiling_margin - gap * (
                (1.0 - config.learning_rate) ** self._answered
            )
        accuracy = 0.5 + margin
        return min(max(accuracy, config.floor), config.ceiling)

    def answer(self, task: Task) -> Label:
        """Answer with the effective accuracy after applying label bias.

        With probability ``yes_bias`` the worker answers YES without
        engaging with the task; otherwise she answers correctly with
        her (fatigue/learning-adjusted) accuracy.
        """
        accuracy = self.effective_accuracy(task)
        self._answered += 1
        if (
            self.behavior.yes_bias > 0
            and self._rng.random() < self.behavior.yes_bias
        ):
            return Label.YES
        if self._rng.random() < accuracy:
            return task.truth
        return task.truth.flipped()

    @property
    def answers_given(self) -> int:
        """Number of answers produced so far (drives the dynamics)."""
        return self._answered
