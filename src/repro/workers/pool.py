"""Dynamic worker pool (Section 2.1: workers come and go).

The pool drives which workers are *active* at a given simulation step:
workers arrive according to a staggered schedule, work for a stretch
(a "session" of task requests), and may leave and later return.  The
paper's Appendix D.5 observes that the worker set completing a job is
"relatively stable" — a small core completes most assignments — so the
default dynamics keep a stable core with light churn.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.types import WorkerId
from repro.utils.rng import spawn_rng
from repro.workers.profiles import WorkerProfile
from repro.workers.simulator import SimulatedWorker


@dataclass
class _Membership:
    worker: SimulatedWorker
    arrives_at: int
    active: bool = False
    requests_made: int = 0
    abandonments: int = 0
    #: clock tick until which the worker is forcibly dark (blackout)
    suspended_until: int = 0


class WorkerPool:
    """Dynamic population of simulated workers.

    Parameters
    ----------
    profiles:
        Worker profiles to instantiate.
    seed:
        Root seed for arrival jitter, churn and requester sampling.
    arrival_spread:
        Workers arrive uniformly over the first ``arrival_spread``
        steps (0 = everyone present from the start).
    churn:
        Per-request probability that a worker takes a break (becomes
        inactive) after submitting; an inactive worker re-activates with
        the same probability each step.  0 disables churn.
    behavior:
        Optional :class:`repro.workers.BehaviorConfig` applied to every
        member (label bias / fatigue / learning); None instantiates the
        plain Definition-1 workers.
    """

    def __init__(
        self,
        profiles: list[WorkerProfile],
        seed: int = 0,
        arrival_spread: int = 0,
        churn: float = 0.0,
        behavior=None,
    ) -> None:
        if not profiles:
            raise ValueError("worker pool needs at least one profile")
        if not 0.0 <= churn < 1.0:
            raise ValueError(f"churn must be in [0, 1), got {churn}")
        if arrival_spread < 0:
            raise ValueError("arrival_spread must be >= 0")
        self._rng = spawn_rng(seed, "worker-pool")
        self._members: dict[WorkerId, _Membership] = {}
        for profile in profiles:
            arrives = (
                int(self._rng.integers(0, arrival_spread + 1))
                if arrival_spread
                else 0
            )
            if behavior is not None:
                from repro.workers.behavior import BehavioralWorker

                worker = BehavioralWorker(
                    profile, behavior=behavior, seed=seed
                )
            else:
                worker = SimulatedWorker(profile, seed=seed)
            self._members[profile.worker_id] = _Membership(
                worker=worker,
                arrives_at=arrives,
            )
        self._churn = churn
        self._clock = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def worker(self, worker_id: WorkerId) -> SimulatedWorker:
        """The simulated worker behind an id."""
        return self._members[worker_id].worker

    def profiles(self) -> list[WorkerProfile]:
        """Profiles of every pool member."""
        return [m.worker.profile for m in self._members.values()]

    def tick(self) -> None:
        """Advance the clock: process arrivals and churn re-activation."""
        self._clock += 1
        for member in self._members.values():
            if member.suspended_until > self._clock:
                continue
            if not member.active and member.arrives_at <= self._clock:
                # repro-lint: disable=RL004 -- churn 0.0 exactly disables the feature
                if member.requests_made == 0 or self._churn == 0.0:
                    member.active = True
                elif self._rng.random() < self._churn:
                    member.active = True

    def active_workers(self) -> list[WorkerId]:
        """Currently active worker ids (stable order)."""
        return sorted(
            wid for wid, m in self._members.items() if m.active
        )

    def sample_requester(self) -> WorkerId | None:
        """Pick an active worker to issue the next task request."""
        active = self.active_workers()
        if not active:
            return None
        return active[int(self._rng.integers(0, len(active)))]

    def note_submission(self, worker_id: WorkerId) -> None:
        """Record a submission; the worker may churn out afterwards."""
        member = self._members[worker_id]
        member.requests_made += 1
        if self._churn and self._rng.random() < self._churn:
            member.active = False

    def note_abandonment(self, worker_id: WorkerId) -> None:
        """Record a walked-away assignment (returned HIT).

        Unlike :meth:`note_submission` this credits *no* submission —
        the worker answered nothing — but the worker may still churn
        out, since returning a HIT often precedes leaving the job.
        """
        member = self._members[worker_id]
        member.abandonments += 1
        if self._churn and self._rng.random() < self._churn:
            member.active = False

    def abandonment_counts(self) -> dict[WorkerId, int]:
        """Abandoned assignments per worker (non-zero entries only)."""
        return {
            wid: m.abandonments
            for wid, m in self._members.items()
            if m.abandonments
        }

    def submission_counts(self) -> dict[WorkerId, int]:
        """Recorded submissions per worker (non-zero entries only)."""
        return {
            wid: m.requests_made
            for wid, m in self._members.items()
            if m.requests_made
        }

    def suspend(self, worker_id: WorkerId, duration: int) -> None:
        """Force a worker dark for ``duration`` ticks (blackout burst)."""
        if duration <= 0:
            raise ValueError("suspension duration must be positive")
        member = self._members[worker_id]
        member.active = False
        member.suspended_until = max(
            member.suspended_until, self._clock + duration
        )

    def deactivate(self, worker_id: WorkerId) -> None:
        """Force a worker inactive (e.g. rejected in warm-up)."""
        self._members[worker_id].active = False

    def remove(self, worker_id: WorkerId) -> None:
        """Permanently remove a worker (rejection by warm-up)."""
        member = self._members[worker_id]
        member.active = False
        member.arrives_at = 2**62  # never re-arrives
