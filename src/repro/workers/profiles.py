"""Worker accuracy profiles (modelled on the paper's Figure 6).

Each profile holds an accuracy per domain — the probability the worker
answers a task from that domain correctly.  Populations are mixtures of
three archetypes calibrated against the paper's empirical observations:

- **expert** — one or two strong domains (~0.85-0.95) and weak elsewhere
  (~0.2-0.55), like worker A2YEBGPVQ41ESM (0.875 in Books&Authors but
  0.176 in FIFA);
- **generalist** — moderately good everywhere (~0.6-0.75);
- **spammer** — near-random or worse everywhere (~0.35-0.55).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.types import WorkerId
from repro.utils.rng import spawn_rng


class Archetype(enum.Enum):
    """Worker population archetypes."""

    EXPERT = "expert"
    GENERALIST = "generalist"
    SPAMMER = "spammer"


#: Default mixture: mostly domain experts (which is what Fig. 6 shows),
#: a few generalists, a few spammers.
DEFAULT_MIX: dict[Archetype, float] = {
    Archetype.EXPERT: 0.6,
    Archetype.GENERALIST: 0.25,
    Archetype.SPAMMER: 0.15,
}


@dataclass(frozen=True)
class WorkerProfile:
    """Ground-truth accuracy of one simulated worker.

    ``accuracy_by_domain`` maps every domain name to the worker's
    probability of answering an in-domain task correctly.
    """

    worker_id: WorkerId
    archetype: Archetype
    accuracy_by_domain: Mapping[str, float]

    def __post_init__(self) -> None:
        for domain, accuracy in self.accuracy_by_domain.items():
            if not 0.0 <= accuracy <= 1.0:
                raise ValueError(
                    f"accuracy for domain {domain!r} must be in [0, 1], "
                    f"got {accuracy}"
                )

    def accuracy(self, domain: str) -> float:
        """Accuracy in ``domain`` (0.5 for unknown domains: a guess)."""
        return self.accuracy_by_domain.get(domain, 0.5)

    @property
    def mean_accuracy(self) -> float:
        values = list(self.accuracy_by_domain.values())
        return sum(values) / len(values) if values else 0.5

    def best_domains(self, n: int = 1) -> list[str]:
        """The worker's ``n`` strongest domains."""
        ordered = sorted(
            self.accuracy_by_domain.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [domain for domain, _ in ordered[:n]]


def _expert_profile(
    worker_id: WorkerId,
    domains: Sequence[str],
    rng: np.random.Generator,
) -> WorkerProfile:
    num_strong = int(rng.integers(1, 3))  # 1 or 2 strong domains
    strong = set(
        rng.choice(len(domains), size=min(num_strong, len(domains)),
                   replace=False)
    )
    accuracies = {}
    for idx, domain in enumerate(domains):
        if idx in strong:
            accuracies[domain] = float(rng.uniform(0.85, 0.97))
        else:
            # Figure 6 shows off-domain accuracies from 0.176 up to
            # ~0.65; draw across that spread so weak domains are weak
            # but not uniformly adversarial
            accuracies[domain] = float(rng.uniform(0.2, 0.65))
    return WorkerProfile(worker_id, Archetype.EXPERT, accuracies)


def _generalist_profile(
    worker_id: WorkerId,
    domains: Sequence[str],
    rng: np.random.Generator,
) -> WorkerProfile:
    accuracies = {
        domain: float(rng.uniform(0.6, 0.78)) for domain in domains
    }
    return WorkerProfile(worker_id, Archetype.GENERALIST, accuracies)


def _spammer_profile(
    worker_id: WorkerId,
    domains: Sequence[str],
    rng: np.random.Generator,
) -> WorkerProfile:
    accuracies = {
        domain: float(rng.uniform(0.35, 0.55)) for domain in domains
    }
    return WorkerProfile(worker_id, Archetype.SPAMMER, accuracies)


_BUILDERS = {
    Archetype.EXPERT: _expert_profile,
    Archetype.GENERALIST: _generalist_profile,
    Archetype.SPAMMER: _spammer_profile,
}


def generate_profiles(
    domains: Sequence[str],
    num_workers: int,
    seed: int = 0,
    mix: Mapping[Archetype, float] | None = None,
) -> list[WorkerProfile]:
    """Generate a worker population with Figure 6-style diversity.

    Parameters
    ----------
    domains:
        Domain names of the target dataset.
    num_workers:
        Population size (25 for YahooQA, 53 for ItemCompare in Table 4).
    seed:
        Root seed; populations are fully reproducible.
    mix:
        Archetype proportions (defaults to :data:`DEFAULT_MIX`); they
        are normalised internally.

    Notes
    -----
    Experts are spread round-robin over domains so every domain has at
    least one strong worker when the population is large enough —
    matching the paper's observation that top workers differ per domain.
    """
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    if not domains:
        raise ValueError("at least one domain is required")
    mix = dict(mix or DEFAULT_MIX)
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("archetype mix must have positive total weight")
    rng = spawn_rng(seed, "worker-profiles")
    archetypes = list(mix)
    probabilities = np.array([mix[a] / total for a in archetypes])
    # Deterministic counts per archetype (largest remainder method) so
    # the mixture is exact rather than sampled.
    raw = probabilities * num_workers
    counts = np.floor(raw).astype(int)
    remainder = num_workers - counts.sum()
    order = np.argsort(-(raw - counts))
    for i in range(remainder):
        counts[order[i % len(counts)]] += 1

    profiles: list[WorkerProfile] = []
    worker_index = 0
    expert_domain_cursor = 0
    for archetype, count in zip(archetypes, counts):
        for _ in range(count):
            worker_id = f"w{worker_index:03d}"
            if archetype is Archetype.EXPERT:
                # force the first strong domain round-robin for coverage
                profile = _expert_profile(worker_id, domains, rng)
                forced = domains[expert_domain_cursor % len(domains)]
                expert_domain_cursor += 1
                accuracies = dict(profile.accuracy_by_domain)
                if accuracies[forced] < 0.85:
                    accuracies[forced] = float(rng.uniform(0.85, 0.97))
                profile = WorkerProfile(
                    worker_id, Archetype.EXPERT, accuracies
                )
            else:
                profile = _BUILDERS[archetype](worker_id, domains, rng)
            profiles.append(profile)
            worker_index += 1
    return profiles
