"""Simulated worker behaviour: answering tasks per the profile."""

from __future__ import annotations

import numpy as np

from repro.core.types import Label, Task
from repro.utils.rng import spawn_rng
from repro.workers.profiles import WorkerProfile


class SimulatedWorker:
    """A crowd worker that answers tasks with profile-driven noise.

    Correctness of each answer is an independent Bernoulli draw with the
    worker's accuracy in the task's domain — exactly the paper's
    Definition 1 model of worker accuracy.
    """

    def __init__(self, profile: WorkerProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng: np.random.Generator = spawn_rng(
            seed, f"worker-answers:{profile.worker_id}"
        )

    @property
    def worker_id(self) -> str:
        return self.profile.worker_id

    def answer(self, task: Task) -> Label:
        """Answer a task: correct with probability ``p_domain``."""
        accuracy = self.profile.accuracy(task.domain)
        if self._rng.random() < accuracy:
            return task.truth
        return task.truth.flipped()

    def true_accuracy(self, task: Task) -> float:
        """Ground-truth accuracy on a task (evaluation only; never
        exposed to estimation code)."""
        return self.profile.accuracy(task.domain)
