"""Unit tests for the Dawid–Skene EM aggregation."""

import numpy as np
import pytest

from repro.aggregation.em import DawidSkene, em_aggregate
from repro.aggregation.majority import majority_vote
from repro.core.types import Answer, Label


def synthesize(rng, n_tasks, n_workers, k, accuracy_range=(0.55, 0.9)):
    truth = [
        Label.YES if rng.random() < 0.5 else Label.NO
        for _ in range(n_tasks)
    ]
    acc = rng.uniform(*accuracy_range, n_workers)
    answers = []
    for t in range(n_tasks):
        for w in rng.choice(n_workers, size=k, replace=False):
            correct = rng.random() < acc[w]
            label = truth[t] if correct else truth[t].flipped()
            answers.append(Answer(t, f"w{w}", label))
    return truth, acc, answers


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DawidSkene().run([])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DawidSkene(max_iter=0)
        with pytest.raises(ValueError):
            DawidSkene(tol=0.0)
        with pytest.raises(ValueError):
            DawidSkene(smoothing=-1.0)


class TestConvergence:
    def test_unanimous_answers_converge_fast(self):
        answers = [
            Answer(t, f"w{w}", Label.YES)
            for t in range(5)
            for w in range(3)
        ]
        result = DawidSkene().run(answers)
        assert all(p > 0.9 for p in result.posterior_yes.values())

    def test_recovers_worker_accuracy_with_rich_data(self, rng):
        truth, acc, answers = synthesize(rng, 300, 15, k=9)
        result = DawidSkene().run(answers)
        estimated = np.array(
            [result.worker_accuracy(f"w{w}") for w in range(15)]
        )
        assert np.corrcoef(estimated, acc)[0, 1] > 0.8

    def test_beats_majority_with_enough_votes(self, rng):
        truth, _, answers = synthesize(rng, 300, 15, k=9)
        em = DawidSkene().run(answers).predictions()
        mv = majority_vote(answers)
        em_acc = np.mean([em[t] == truth[t] for t in range(300)])
        mv_acc = np.mean([mv[t] == truth[t] for t in range(300)])
        assert em_acc >= mv_acc - 0.02

    def test_iterations_reported(self, rng):
        _, _, answers = synthesize(rng, 50, 8, k=3)
        result = DawidSkene(max_iter=5).run(answers)
        assert 1 <= result.iterations <= 5


class TestResult:
    def test_predictions_map_threshold(self):
        answers = [
            Answer(0, "a", Label.YES),
            Answer(0, "b", Label.YES),
            Answer(1, "a", Label.NO),
            Answer(1, "b", Label.NO),
        ]
        predictions = DawidSkene().run(answers).predictions()
        assert predictions[0] is Label.YES
        assert predictions[1] is Label.NO

    def test_confusion_rows_are_distributions(self, rng):
        _, _, answers = synthesize(rng, 80, 10, k=3)
        result = DawidSkene().run(answers)
        for matrix in result.confusion.values():
            assert np.allclose(matrix.sum(axis=1), 1.0)
            assert matrix.min() >= 0.0

    def test_prior_in_unit_interval(self, rng):
        _, _, answers = synthesize(rng, 60, 8, k=3)
        result = DawidSkene().run(answers)
        assert 0.0 < result.prior_yes < 1.0


class TestEmAggregate:
    def test_convenience_wrapper(self):
        answers = [
            Answer(0, "a", Label.YES),
            Answer(0, "b", Label.YES),
        ]
        assert em_aggregate(answers)[0] is Label.YES
