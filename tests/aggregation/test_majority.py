"""Unit tests for (weighted) majority voting."""

from repro.aggregation.majority import majority_vote, weighted_majority_vote
from repro.core.types import Answer, Label


def ans(task, worker, label):
    return Answer(task_id=task, worker_id=worker, label=label)


class TestMajorityVote:
    def test_simple_majority(self):
        answers = [
            ans(0, "a", Label.YES),
            ans(0, "b", Label.YES),
            ans(0, "c", Label.NO),
        ]
        assert majority_vote(answers) == {0: Label.YES}

    def test_multiple_tasks(self):
        answers = [
            ans(0, "a", Label.YES),
            ans(1, "a", Label.NO),
            ans(1, "b", Label.NO),
        ]
        result = majority_vote(answers)
        assert result[0] is Label.YES
        assert result[1] is Label.NO

    def test_tie_breaks_to_default(self):
        answers = [ans(0, "a", Label.YES), ans(0, "b", Label.NO)]
        assert majority_vote(answers)[0] is Label.NO
        assert majority_vote(answers, tie_break=Label.YES)[0] is Label.YES

    def test_empty(self):
        assert majority_vote([]) == {}


class TestWeightedMajorityVote:
    def test_weights_flip_raw_majority(self):
        answers = [
            ans(0, "expert", Label.YES),
            ans(0, "spam1", Label.NO),
            ans(0, "spam2", Label.NO),
        ]
        weights = {"expert": 0.95, "spam1": 0.2, "spam2": 0.2}
        assert weighted_majority_vote(answers, weights)[0] is Label.YES

    def test_default_weight_for_unknown_workers(self):
        answers = [
            ans(0, "known", Label.NO),
            ans(0, "unknown", Label.YES),
        ]
        result = weighted_majority_vote(
            answers, {"known": 0.9}, default_weight=0.1
        )
        assert result[0] is Label.NO

    def test_exact_tie_uses_tie_break(self):
        answers = [ans(0, "a", Label.YES), ans(0, "b", Label.NO)]
        result = weighted_majority_vote(
            answers, {"a": 0.5, "b": 0.5}, tie_break=Label.YES
        )
        assert result[0] is Label.YES

    def test_matches_plain_majority_with_equal_weights(self):
        answers = [
            ans(0, "a", Label.YES),
            ans(0, "b", Label.YES),
            ans(0, "c", Label.NO),
            ans(1, "a", Label.NO),
            ans(1, "b", Label.NO),
            ans(1, "c", Label.YES),
        ]
        weights = {"a": 0.7, "b": 0.7, "c": 0.7}
        assert weighted_majority_vote(answers, weights) == majority_vote(
            answers
        )
