"""Unit tests for probabilistic verification (CDAS [22])."""

import pytest

from repro.aggregation.pv import (
    probabilistic_verification,
    verification_posterior,
)
from repro.core.types import Answer, Label


class TestVerificationPosterior:
    def test_single_confident_yes(self):
        posterior = verification_posterior([(Label.YES, 0.9)])
        assert posterior == pytest.approx(0.9)

    def test_single_confident_no(self):
        posterior = verification_posterior([(Label.NO, 0.9)])
        assert posterior == pytest.approx(0.1)

    def test_symmetric_votes_cancel(self):
        votes = [(Label.YES, 0.8), (Label.NO, 0.8)]
        assert verification_posterior(votes) == pytest.approx(0.5)

    def test_expert_outweighs_spammers(self):
        votes = [
            (Label.YES, 0.99),
            (Label.NO, 0.55),
            (Label.NO, 0.55),
        ]
        assert verification_posterior(votes) > 0.5

    def test_prior_shifts_posterior(self):
        votes = [(Label.YES, 0.6)]
        low = verification_posterior(votes, prior_yes=0.1)
        high = verification_posterior(votes, prior_yes=0.9)
        assert low < high

    def test_extreme_accuracies_do_not_crash(self):
        votes = [(Label.YES, 1.0), (Label.NO, 0.0)]
        posterior = verification_posterior(votes)
        assert 0.0 < posterior < 1.0

    def test_no_votes_returns_prior(self):
        assert verification_posterior([], prior_yes=0.7) == pytest.approx(0.7)


class TestProbabilisticVerification:
    def test_weighted_aggregation(self):
        answers = [
            Answer(0, "expert", Label.YES),
            Answer(0, "spam", Label.NO),
        ]
        result = probabilistic_verification(
            answers, {"expert": 0.95, "spam": 0.5}
        )
        assert result[0] is Label.YES

    def test_default_accuracy_used(self):
        answers = [
            Answer(0, "known", Label.NO),
            Answer(0, "unknown", Label.YES),
        ]
        result = probabilistic_verification(
            answers, {"known": 0.9}, default_accuracy=0.5
        )
        assert result[0] is Label.NO

    def test_multiple_tasks_independent(self):
        answers = [
            Answer(0, "a", Label.YES),
            Answer(1, "a", Label.NO),
        ]
        result = probabilistic_verification(answers, {"a": 0.8})
        assert result[0] is Label.YES
        assert result[1] is Label.NO

    def test_empty(self):
        assert probabilistic_verification([], {}) == {}

    def test_tie_defaults_to_no(self):
        answers = [
            Answer(0, "a", Label.YES),
            Answer(0, "b", Label.NO),
        ]
        result = probabilistic_verification(answers, {"a": 0.7, "b": 0.7})
        assert result[0] is Label.NO
