"""Pass-1b call graph: resolution vectors and reachability."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, ModuleResolver
from repro.analysis.symbols import build_symbol_table

PKG = "src/repro/pkg"


def _graph(sources: dict[str, str]) -> CallGraph:
    trees = {path: ast.parse(text) for path, text in sources.items()}
    symtab = build_symbol_table(sources, trees)
    return CallGraph.build(symtab, trees)


def _edges(graph: CallGraph, caller: str) -> set[tuple[str | None, str | None]]:
    return {
        (site.callee, site.external)
        for site in graph.calls_from(caller)
    }


def test_plain_name_resolves_to_module_function() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "def helper():\n    pass\n"
                "def caller():\n    helper()\n"
            )
        }
    )
    assert ("repro.pkg.mod.helper", None) in _edges(
        graph, "repro.pkg.mod.caller"
    )


def test_from_import_alias_resolves_across_modules() -> None:
    graph = _graph(
        {
            f"{PKG}/util.py": "def helper():\n    pass\n",
            f"{PKG}/mod.py": (
                "from repro.pkg.util import helper as h\n"
                "def caller():\n    h()\n"
            ),
        }
    )
    assert ("repro.pkg.util.helper", None) in _edges(
        graph, "repro.pkg.mod.caller"
    )


def test_module_alias_dotted_call_resolves() -> None:
    graph = _graph(
        {
            f"{PKG}/util.py": "def helper():\n    pass\n",
            f"{PKG}/mod.py": (
                "import repro.pkg.util as util\n"
                "def caller():\n    util.helper()\n"
            ),
        }
    )
    assert ("repro.pkg.util.helper", None) in _edges(
        graph, "repro.pkg.mod.caller"
    )


def test_self_method_call_resolves_to_enclosing_class() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "class K:\n"
                "    def a(self):\n        self.b()\n"
                "    def b(self):\n        pass\n"
            )
        }
    )
    assert ("repro.pkg.mod.K.b", None) in _edges(
        graph, "repro.pkg.mod.K.a"
    )


def test_constructor_resolves_to_init() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "class K:\n"
                "    def __init__(self, x):\n        self.x = x\n"
                "def caller():\n    return K(1)\n"
            )
        }
    )
    assert ("repro.pkg.mod.K.__init__", None) in _edges(
        graph, "repro.pkg.mod.caller"
    )


def test_nested_def_is_its_own_caller() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "def target():\n    pass\n"
                "def outer():\n"
                "    def inner():\n        target()\n"
                "    return inner\n"
            )
        }
    )
    assert ("repro.pkg.mod.target", None) in _edges(
        graph, "repro.pkg.mod.outer.inner"
    )


def test_unresolved_external_keeps_dotted_name() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "import numpy as np\n"
                "def caller():\n    return np.zeros(3)\n"
            )
        }
    )
    assert (None, "numpy.zeros") in _edges(graph, "repro.pkg.mod.caller")


def test_opaque_receiver_produces_no_edge() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "def caller(obj):\n    return obj.method()\n"
            )
        }
    )
    assert _edges(graph, "repro.pkg.mod.caller") == set()


def test_callers_of_and_reachability() -> None:
    graph = _graph(
        {
            f"{PKG}/mod.py": (
                "def leaf():\n    pass\n"
                "def mid():\n    leaf()\n"
                "def root():\n    mid()\n"
                "def unrelated():\n    pass\n"
            )
        }
    )
    assert graph.callers_of("repro.pkg.mod.leaf") == ["repro.pkg.mod.mid"]
    reach = graph.reachable_from({"repro.pkg.mod.root"})
    assert reach == {
        "repro.pkg.mod.root",
        "repro.pkg.mod.mid",
        "repro.pkg.mod.leaf",
    }


def test_resolve_reference_for_bare_callables() -> None:
    sources = {
        f"{PKG}/mod.py": (
            "def work(unit):\n    return unit\n"
            "STATE = {}\n"
        )
    }
    trees = {path: ast.parse(text) for path, text in sources.items()}
    symtab = build_symbol_table(sources, trees)
    mod = symtab.module("repro.pkg.mod")
    assert mod is not None
    resolver = ModuleResolver(symtab, mod)
    ref = ast.parse("work", mode="eval").body
    assert resolver.resolve_reference(ref) == "repro.pkg.mod.work"
    glob = ast.parse("STATE", mode="eval").body
    assert resolver.resolve_reference(glob) == "repro.pkg.mod.STATE"
    missing = ast.parse("nothing", mode="eval").body
    assert resolver.resolve_reference(missing) is None
