"""CFG construction: exception edges, try/finally, reachability."""

from __future__ import annotations

import ast

from repro.analysis.cfg import CFG


def _build(source: str) -> tuple[CFG, ast.FunctionDef]:
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return CFG.build(func), func


def _stmt_at(func: ast.FunctionDef, needle: str) -> ast.stmt:
    """Innermost statement whose source segment contains ``needle``."""
    matches = [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.stmt)
        and node is not func
        and needle in ast.unparse(node)
    ]
    if not matches:
        raise AssertionError(f"no statement containing {needle!r}")
    return min(matches, key=lambda node: len(ast.unparse(node)))


def test_straight_line_reaches_exit() -> None:
    cfg, func = _build(
        "def f():\n"
        "    a = acquire()\n"
        "    use(a)\n"
    )
    start = cfg.node_of(_stmt_at(func, "acquire"))
    assert start is not None
    assert cfg.can_reach_exit_avoiding(start, set())


def test_exception_edge_escapes_release_outside_finally() -> None:
    cfg, func = _build(
        "def f():\n"
        "    a = acquire()\n"
        "    view = build(a)\n"
        "    a.close()\n"
    )
    start = cfg.node_of(_stmt_at(func, "acquire"))
    close = cfg.node_of(_stmt_at(func, "a.close()"))
    assert start is not None and close is not None
    # build(a) may raise → EXIT without passing through close()
    assert cfg.can_reach_exit_avoiding(
        start, {close}, skip_start_exc=True
    )


def test_finally_release_blocks_every_path() -> None:
    cfg, func = _build(
        "def f():\n"
        "    a = acquire()\n"
        "    try:\n"
        "        view = build(a)\n"
        "    finally:\n"
        "        a.close()\n"
        "    return view\n"
    )
    start = cfg.node_of(_stmt_at(func, "acquire"))
    close = cfg.node_of(_stmt_at(func, "a.close()"))
    assert start is not None and close is not None
    # both the normal path and build()'s exception edge route through
    # the finally — blocking close() seals the function
    assert not cfg.can_reach_exit_avoiding(
        start, {close}, skip_start_exc=True
    )


def test_skip_start_exc_ignores_acquisition_failure() -> None:
    cfg, func = _build(
        "def f():\n"
        "    a = acquire()\n"
        "    a.close()\n"
    )
    start = cfg.node_of(_stmt_at(func, "acquire"))
    close = cfg.node_of(_stmt_at(func, "a.close()"))
    assert start is not None and close is not None
    # with the acquisition's own exception edge skipped, the only
    # successor is close() — blocked ⇒ no leak path
    assert not cfg.can_reach_exit_avoiding(
        start, {close}, skip_start_exc=True
    )
    # without the refinement the constructor's own raise "escapes"
    assert cfg.can_reach_exit_avoiding(start, {close})


def test_return_inside_try_runs_finally_first() -> None:
    cfg, func = _build(
        "def f():\n"
        "    a = acquire()\n"
        "    try:\n"
        "        return use(a)\n"
        "    finally:\n"
        "        a.close()\n"
    )
    start = cfg.node_of(_stmt_at(func, "acquire"))
    close = cfg.node_of(_stmt_at(func, "a.close()"))
    assert start is not None and close is not None
    assert not cfg.can_reach_exit_avoiding(
        start, {close}, skip_start_exc=True
    )


def test_handler_path_is_modelled() -> None:
    cfg, func = _build(
        "def f():\n"
        "    a = acquire()\n"
        "    try:\n"
        "        use(a)\n"
        "    except ValueError:\n"
        "        recover()\n"
        "    a.close()\n"
    )
    start = cfg.node_of(_stmt_at(func, "acquire"))
    close = cfg.node_of(_stmt_at(func, "a.close()"))
    recover = cfg.node_of(_stmt_at(func, "recover"))
    assert start is not None and close is not None and recover is not None
    # recover() itself may raise → a path escapes even with close()
    # blocked; blocking recover() too still leaves the unmatched-
    # exception continuation (dynamic matching is over-approximated)
    assert cfg.can_reach_exit_avoiding(
        start, {close}, skip_start_exc=True
    )


def test_loop_back_edge_and_after_node() -> None:
    cfg, func = _build(
        "def f(items):\n"
        "    total = 0\n"
        "    for item in items:\n"
        "        total += item\n"
        "    return total\n"
    )
    loop = cfg.node_of(_stmt_at(func, "for item"))
    body = cfg.node_of(_stmt_at(func, "total += item"))
    assert loop is not None and body is not None
    assert loop in cfg.successors(body)  # back edge
    start = cfg.node_of(_stmt_at(func, "total = 0"))
    assert start is not None
    assert cfg.can_reach_exit_avoiding(start, set())


def test_unreachable_code_gets_no_node() -> None:
    cfg, func = _build(
        "def f():\n"
        "    return 1\n"
        "    dead()\n"
    )
    assert cfg.node_of(_stmt_at(func, "dead")) is None


def test_break_exits_loop_without_back_edge() -> None:
    cfg, func = _build(
        "def f(items):\n"
        "    for item in items:\n"
        "        if item:\n"
        "            break\n"
        "    cleanup()\n"
    )
    brk = cfg.node_of(_stmt_at(func, "break"))
    header = cfg.node_of(_stmt_at(func, "for item"))
    assert brk is not None and header is not None
    # break leaves through the loop's join node, never the header
    assert header not in cfg.successors(brk, include_exc=False)
    assert cfg.can_reach_exit_avoiding(
        brk, {header}, skip_start_exc=True
    )
