"""The repo's own tree must satisfy its linter — the dogfooding gate.

This is the in-suite mirror of CI's ``repro-icrowd lint src tests``:
any new global-RNG call, wall-clock read, recorder=None default, or
unordered iteration added to the tree turns up here as a test failure
with an exact ``path:line`` pointer.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

from repro.analysis import deep_lint_paths, format_diagnostic, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_src_and_tests_are_diagnostics_clean() -> None:
    diags = lint_paths([REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"])
    rendered = "\n".join(format_diagnostic(d, "text") for d in diags)
    assert diags == [], f"repro-lint violations:\n{rendered}"


def test_src_and_tests_are_deep_clean() -> None:
    diags = deep_lint_paths(
        [REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"]
    )
    rendered = "\n".join(format_diagnostic(d, "text") for d in diags)
    assert diags == [], f"deep-lint violations:\n{rendered}"


def test_tools_entry_point_exits_zero_on_tree() -> None:
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "repro_lint.py"),
         "--deep", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
