"""Deep rule families end to end: one positive and one negative
vector per rule, fixture demotion, suppressions, ``--jobs`` parity,
and the symbol-table cache."""

from __future__ import annotations

import pathlib

from repro.analysis.cli import main
from repro.analysis.deep import deep_lint_paths, deep_lint_sources

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
MOD = "src/repro/pkg/mod.py"


def _codes(sources: dict[str, str] | str) -> list[str]:
    if isinstance(sources, str):
        sources = {MOD: sources}
    return sorted({diag.code for diag in deep_lint_sources(sources)})


def materialise(tmp_path: pathlib.Path, fixture: str) -> pathlib.Path:
    target = tmp_path / "src" / "repro" / "core" / fixture.replace(".txt", "")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / fixture).read_text(encoding="utf-8"))
    return target


def marked_line(path: pathlib.Path, marker: str) -> int:
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if marker in line:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")


# -- RL101 shm lifecycle -------------------------------------------------
RL101_POS = """
from multiprocessing import shared_memory
import numpy as np

def leaky(spec):
    seg = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, buffer=seg.buf)
    return float(view.sum())
"""

RL101_NEG = """
from multiprocessing import shared_memory
import numpy as np

def safe(spec):
    seg = shared_memory.SharedMemory(name=spec.name)
    try:
        view = np.ndarray(spec.shape, buffer=seg.buf)
        total = float(view.sum())
    finally:
        seg.close()
    return total
"""


def test_rl101_flags_leak_on_exception_path() -> None:
    assert "RL101" in _codes(RL101_POS)


def test_rl101_accepts_finally_release() -> None:
    assert "RL101" not in _codes(RL101_NEG)


def test_rl101_ownership_transfer_is_not_a_leak() -> None:
    source = """
from multiprocessing import shared_memory

def publish(specs, registry):
    for spec in specs:
        seg = shared_memory.SharedMemory(name=spec.name)
        registry.append(seg)
"""
    assert "RL101" not in _codes(source)


def test_rl101_interprocedural_acquirer_taints_caller() -> None:
    source = """
from multiprocessing import shared_memory
import numpy as np

def open_segment(name):
    return shared_memory.SharedMemory(name=name)

def leaky(name):
    seg = open_segment(name)
    return float(np.ndarray((4,), buffer=seg.buf).sum())
"""
    diags = deep_lint_sources({MOD: source})
    assert ["RL101"] == sorted({d.code for d in diags})
    (diag,) = [d for d in diags if d.code == "RL101"]
    assert diag.line == source.splitlines().index(
        "    seg = open_segment(name)"
    ) + 1


# -- RL102 monkeypatch restore -------------------------------------------
RL102_POS = """
from multiprocessing import resource_tracker

def _quiet(name, rtype):
    pass

def patchy():
    original = resource_tracker.register
    resource_tracker.register = _quiet
    work()
    resource_tracker.register = original

def work():
    pass
"""

RL102_NEG = RL102_POS.replace(
    "    work()\n    resource_tracker.register = original",
    "    try:\n        work()\n"
    "    finally:\n        resource_tracker.register = original",
)


def test_rl102_flags_unprotected_restore() -> None:
    assert "RL102" in _codes(RL102_POS)


def test_rl102_accepts_finally_restore() -> None:
    assert "RL102" not in _codes(RL102_NEG)


def test_rl102_ignores_plain_attribute_state() -> None:
    source = """
class K:
    def swap(self, replacement):
        original = self.graph
        self.graph = replacement
        return original
"""
    assert "RL102" not in _codes(source)


# -- RL103 pool pickle safety --------------------------------------------
RL103_POS_LOCK = """
import threading
from concurrent.futures import ProcessPoolExecutor

def _init(lock):
    pass

def _work(unit):
    return unit

def run(units):
    lock = threading.Lock()
    with ProcessPoolExecutor(initializer=_init, initargs=(lock,)) as pool:
        return list(pool.map(_work, units))
"""

RL103_POS_NESTED = """
from concurrent.futures import ProcessPoolExecutor

def run(units):
    def work(unit):
        return unit
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, units))
"""

RL103_NEG = """
from concurrent.futures import ProcessPoolExecutor

def _work(unit):
    return unit

def run(units):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_work, units))
"""


def test_rl103_flags_lock_in_initargs() -> None:
    assert "RL103" in _codes(RL103_POS_LOCK)


def test_rl103_flags_nested_worker_callable() -> None:
    assert "RL103" in _codes(RL103_POS_NESTED)


def test_rl103_accepts_plain_payloads() -> None:
    assert "RL103" not in _codes(RL103_NEG)


# -- RL104 fork-shared global --------------------------------------------
RL104_POS = """
from concurrent.futures import ProcessPoolExecutor

_STATE = {}

def _init(spec):
    _STATE["spec"] = spec

def _work(unit):
    return _STATE["spec"], unit

def run(units, spec):
    with ProcessPoolExecutor(initializer=_init, initargs=(spec,)) as pool:
        results = list(pool.map(_work, units))
    return results, _STATE
"""

RL104_NEG = RL104_POS.replace("    return results, _STATE", "    return results")


def test_rl104_flags_parent_read_of_worker_written_global() -> None:
    assert "RL104" in _codes(RL104_POS)


def test_rl104_accepts_worker_only_state() -> None:
    assert "RL104" not in _codes(RL104_NEG)


# -- RL201 unseeded RNG --------------------------------------------------
def test_rl201_flags_unseeded_and_none_seeded() -> None:
    source = """
import numpy as np
import random

def draw():
    a = np.random.default_rng()
    b = random.Random(None)
    return a.random() + b.random()
"""
    diags = deep_lint_sources({MOD: source})
    assert [d.code for d in diags].count("RL201") == 2


def test_rl201_flags_system_random() -> None:
    source = """
import random

def draw():
    return random.SystemRandom().random()
"""
    assert "RL201" in _codes(source)


def test_rl201_accepts_seeded_streams() -> None:
    source = """
import numpy as np

def draw(seed):
    return np.random.default_rng(seed).random()
"""
    assert "RL201" not in _codes(source)


# -- RL202 RNG across a process boundary ---------------------------------
RL202_POS = """
import numpy as np
from concurrent.futures import ProcessPoolExecutor

def _work(rng, unit):
    return rng.random()

def run(units, seed):
    rng = np.random.default_rng(seed)
    with ProcessPoolExecutor() as pool:
        return [pool.submit(_work, rng, unit) for unit in units]
"""

RL202_NEG = """
import numpy as np
from concurrent.futures import ProcessPoolExecutor

def _work(seed, unit):
    return np.random.default_rng(seed).random()

def run(units, seed):
    with ProcessPoolExecutor() as pool:
        return [
            pool.submit(_work, seed + index, unit)
            for index, unit in enumerate(units)
        ]
"""


def test_rl202_flags_rng_payload() -> None:
    assert "RL202" in _codes(RL202_POS)


def test_rl202_accepts_seed_payloads() -> None:
    assert "RL202" not in _codes(RL202_NEG)


def test_rl202_interprocedural_param_flow() -> None:
    source = """
import numpy as np
from concurrent.futures import ProcessPoolExecutor

def _work(rng, unit):
    return unit

def dispatch(stream, units):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(_work, stream, unit) for unit in units]

def run(units, seed):
    rng = np.random.default_rng(seed)
    return dispatch(rng, units)
"""
    diags = deep_lint_sources({MOD: source})
    lines = {d.line for d in diags if d.code == "RL202"}
    # dispatch() alone has no evidence its parameter is a stream; the
    # flag lands at run()'s call site, where the taint meets the
    # boundary-flowing parameter
    call_line = source.splitlines().index(
        "    return dispatch(rng, units)"
    ) + 1
    assert lines == {call_line}


# -- RL203 shared module-level stream ------------------------------------
def test_rl203_flags_foreign_module_read() -> None:
    sources = {
        "src/repro/pkg/streams.py": (
            "import numpy as np\n\nSTREAM = np.random.default_rng(7)\n"
        ),
        "src/repro/pkg/consumer.py": (
            "from repro.pkg.streams import STREAM\n\n"
            "def draw():\n    return STREAM.random()\n"
        ),
    }
    diags = deep_lint_sources(sources)
    rl203 = [d for d in diags if d.code == "RL203"]
    assert len(rl203) == 1
    assert rl203[0].path == "src/repro/pkg/consumer.py"


def test_rl203_accepts_owner_module_reads() -> None:
    sources = {
        "src/repro/pkg/streams.py": (
            "import numpy as np\n\n"
            "STREAM = np.random.default_rng(7)\n\n"
            "def draw():\n    return STREAM.random()\n"
        ),
    }
    diags = deep_lint_sources(sources)
    assert not [d for d in diags if d.code == "RL203"]


# -- RL301 dropped recorder ----------------------------------------------
RL301_POS = """
from repro.obs import NULL_RECORDER

def helper(x, recorder=NULL_RECORDER):
    return x + 1

def outer(x, recorder=NULL_RECORDER):
    return helper(x)
"""

RL301_NEG = RL301_POS.replace("helper(x)", "helper(x, recorder=recorder)")


def test_rl301_flags_dropped_recorder() -> None:
    assert "RL301" in _codes(RL301_POS)


def test_rl301_accepts_threaded_recorder() -> None:
    assert "RL301" not in _codes(RL301_NEG)


def test_rl301_accepts_positional_recorder() -> None:
    source = """
from repro.obs import NULL_RECORDER

def helper(x, recorder=NULL_RECORDER):
    return x + 1

def outer(x, recorder=NULL_RECORDER):
    return helper(x, recorder)
"""
    assert "RL301" not in _codes(source)


def test_rl301_silent_without_recorder_in_scope() -> None:
    source = """
from repro.obs import NULL_RECORDER

def helper(x, recorder=NULL_RECORDER):
    return x + 1

def outer(x):
    return helper(x)
"""
    assert "RL301" not in _codes(source)


# -- scope, suppressions, fixtures, parallelism, cache -------------------
def test_deep_rules_skip_test_code() -> None:
    assert _codes({"tests/pkg/test_mod.py": RL101_POS}) == []


def test_inline_suppression_is_honoured() -> None:
    suppressed = RL101_POS.replace(
        "shared_memory.SharedMemory(name=spec.name)",
        "shared_memory.SharedMemory(name=spec.name)"
        "  # repro-lint: disable=RL101 -- test vector",
    )
    assert _codes(suppressed) == []


def test_seeded_fault_fixture_demotes_at_marked_line(
    tmp_path: pathlib.Path,
) -> None:
    bad = materialise(tmp_path, "rl101_shm_leak.py.txt")
    diags = deep_lint_paths([bad])
    assert [d.code for d in diags] == ["RL101"]
    assert diags[0].line == marked_line(bad, "MARK:leak")
    # CLI contract: --deep violations exit 1
    assert main(["--deep", str(bad)]) == 1


def test_clean_fixture_passes_deep(tmp_path: pathlib.Path) -> None:
    clean = materialise(tmp_path, "deep_clean_module.py.txt")
    assert deep_lint_paths([clean]) == []
    assert main(["--deep", str(clean)]) == 0


def test_jobs_parity_with_serial(tmp_path: pathlib.Path) -> None:
    bad = materialise(tmp_path, "rl101_shm_leak.py.txt")
    materialise(tmp_path, "deep_clean_module.py.txt")
    root = bad.parents[3]
    serial = deep_lint_paths([root])
    parallel = deep_lint_paths([root], jobs=2)
    assert serial == parallel
    assert [d.code for d in serial] == ["RL101"]


def test_symtab_cache_reused_between_runs(
    tmp_path: pathlib.Path,
) -> None:
    bad = materialise(tmp_path, "rl101_shm_leak.py.txt")
    cache = tmp_path / "symtab.json"
    first = deep_lint_paths([bad], cache_path=cache)
    assert cache.is_file()
    stamp = cache.read_text(encoding="utf-8")
    second = deep_lint_paths([bad], cache_path=cache)
    assert first == second
    # unchanged sources → byte-identical cache
    assert cache.read_text(encoding="utf-8") == stamp


def test_select_gates_deep_rules() -> None:
    diags = deep_lint_sources(
        {MOD: RL101_POS}, select=frozenset({"RL102"})
    )
    assert diags == []


def test_deep_only_select_requires_deep_flag(
    tmp_path: pathlib.Path,
) -> None:
    clean = materialise(tmp_path, "deep_clean_module.py.txt")
    assert main(["--select", "RL101", str(clean)]) == 2
    assert main(["--select", "RL101", "--deep", str(clean)]) == 0
