"""Fixture-driven end-to-end linter tests: files, CLI, exit codes."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import format_diagnostic, lint_file, lint_paths
from repro.analysis.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def materialise(tmp_path: pathlib.Path, fixture: str) -> pathlib.Path:
    """Copy a ``.py.txt`` fixture into the lint scope as a real module.

    The destination path places it under ``src/repro/core`` so the
    path-scoped rules apply exactly as they would to product code.
    """
    target = tmp_path / "src" / "repro" / "core" / fixture.replace(".txt", "")
    target.parent.mkdir(parents=True)
    target.write_text((FIXTURES / fixture).read_text(encoding="utf-8"))
    return target


def marked_line(path: pathlib.Path, marker: str) -> int:
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if marker in line:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")


# -- demotion: a reintroduced global RNG call must fail the gate ---------
def test_demotion_fixture_fails_with_rl001_at_exact_lines(
    tmp_path: pathlib.Path,
) -> None:
    bad = materialise(tmp_path, "rl001_global_rng.py.txt")
    diags = lint_file(bad)
    assert [d.code for d in diags] == ["RL001", "RL001"]
    assert diags[0].line == marked_line(bad, "MARK:stdlib")
    assert diags[1].line == marked_line(bad, "MARK:numpy")
    assert all(d.path == str(bad) for d in diags)
    # CLI contract: violations exit 1.
    assert main([str(bad)]) == 1


def test_suppressed_fixture_line_is_not_reported(
    tmp_path: pathlib.Path,
) -> None:
    bad = materialise(tmp_path, "rl001_global_rng.py.txt")
    suppressed = marked_line(bad, "disable=RL001")
    assert all(d.line != suppressed for d in lint_file(bad))


def test_clean_fixture_exits_zero(tmp_path: pathlib.Path) -> None:
    clean = materialise(tmp_path, "clean_module.py.txt")
    assert lint_file(clean) == []
    assert main([str(clean)]) == 0


# -- discovery and path handling -----------------------------------------
def test_lint_paths_walks_directories(tmp_path: pathlib.Path) -> None:
    materialise(tmp_path, "rl001_global_rng.py.txt")
    diags = lint_paths([tmp_path])
    assert [d.code for d in diags] == ["RL001", "RL001"]


def test_lint_paths_skips_pycache(tmp_path: pathlib.Path) -> None:
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "junk.py").write_text("import random\nrandom.random()\n")
    assert lint_paths([tmp_path]) == []


def test_unknown_select_code_raises_and_exits_2(
    tmp_path: pathlib.Path,
) -> None:
    with pytest.raises(ValueError):
        lint_paths([tmp_path], select=frozenset({"RL999"}))
    assert main(["--select", "RL999", str(tmp_path)]) == 2


# -- output formats ------------------------------------------------------
def test_github_format_emits_workflow_annotations(
    tmp_path: pathlib.Path, capsys: pytest.CaptureFixture[str]
) -> None:
    bad = materialise(tmp_path, "rl001_global_rng.py.txt")
    assert main(["--format", "github", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "RL001" in out


def test_text_format_is_path_line_col_code(tmp_path: pathlib.Path) -> None:
    bad = materialise(tmp_path, "rl001_global_rng.py.txt")
    diag = lint_file(bad)[0]
    rendered = format_diagnostic(diag, "text")
    assert rendered.startswith(f"{bad}:{diag.line}:")
    assert "RL001" in rendered


def test_list_rules_prints_all_codes(
    capsys: pytest.CaptureFixture[str],
) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert code in out


# -- broken input --------------------------------------------------------
def test_syntax_error_reports_rl000(tmp_path: pathlib.Path) -> None:
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    diags = lint_file(broken)
    assert [d.code for d in diags] == ["RL000"]
    assert main([str(broken)]) == 1
