"""RL4xx lock-discipline rules: one positive and one negative vector
per rule, the seeded-fault fixtures at their marked lines, the
suppression idiom, and ``--jobs`` parity."""

from __future__ import annotations

import pathlib

from repro.analysis.cli import main
from repro.analysis.deep import deep_lint_paths, deep_lint_sources

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
MOD = "src/repro/pkg/mod.py"


def _codes(sources: dict[str, str] | str) -> list[str]:
    if isinstance(sources, str):
        sources = {MOD: sources}
    return sorted({diag.code for diag in deep_lint_sources(sources)})


def materialise(tmp_path: pathlib.Path, fixture: str) -> pathlib.Path:
    target = tmp_path / "src" / "repro" / "core" / fixture.replace(".txt", "")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / fixture).read_text(encoding="utf-8"))
    return target


def marked_line(path: pathlib.Path, marker: str) -> int:
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if marker in line:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")


# -- RL401 lock-order cycles ---------------------------------------------
RL401_POS = """
import threading

class Books:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
"""

RL401_NEG = RL401_POS.replace(
    "        with self._b:\n            with self._a:",
    "        with self._a:\n            with self._b:",
)


def test_rl401_flags_ab_ba_inversion() -> None:
    assert "RL401" in _codes(RL401_POS)


def test_rl401_accepts_consistent_order() -> None:
    assert "RL401" not in _codes(RL401_NEG)


def test_rl401_sees_cycles_through_private_helpers() -> None:
    source = """
import threading

class Books:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def _grab_a(self):
        with self._a:
            pass

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            self._grab_a()
"""
    assert "RL401" in _codes(source)


# -- RL402 unlocked shared write -----------------------------------------
RL402_POS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        with self._lock:
            self.total += 1

    def reset(self):
        self.total = 0
"""

RL402_NEG = RL402_POS.replace(
    "    def reset(self):\n        self.total = 0",
    "    def reset(self):\n        with self._lock:\n            self.total = 0",
)


def test_rl402_flags_bare_write_of_guarded_attr() -> None:
    assert "RL402" in _codes(RL402_POS)


def test_rl402_accepts_locked_write() -> None:
    assert "RL402" not in _codes(RL402_NEG)


def test_rl402_ignores_attrs_never_guarded() -> None:
    # no access ever holds a lock → no lockset to violate (the dynamic
    # sanitizer owns this case)
    source = """
class Plain:
    def __init__(self):
        self.total = 0

    def bump(self):
        self.total += 1
"""
    assert "RL402" not in _codes(source)


def test_rl402_private_helper_inherits_entry_lockset() -> None:
    # _bump is only ever called with the lock held, so its bare-looking
    # write is covered by the entry lockset
    source = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def _bump(self):
        self.total += 1

    def bump(self):
        with self._lock:
            self._bump()
"""
    assert "RL402" not in _codes(source)


# -- RL403 blocking under lock -------------------------------------------
RL403_POS = """
import threading
import time

class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def wait(self):
        with self._lock:
            time.sleep(0.1)
"""

RL403_NEG = """
import threading
import time

class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def wait(self):
        with self._lock:
            pass
        time.sleep(0.1)
"""


def test_rl403_flags_sleep_under_lock() -> None:
    assert "RL403" in _codes(RL403_POS)


def test_rl403_accepts_sleep_after_release() -> None:
    assert "RL403" not in _codes(RL403_NEG)


def test_rl403_interprocedural_blocking_callee() -> None:
    source = """
import threading
import time

def _backoff():
    time.sleep(0.1)

class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def wait(self):
        with self._lock:
            _backoff()
"""
    diags = deep_lint_sources({MOD: source})
    assert [d.code for d in diags] == ["RL403"]
    # the private helper inherits the entry lockset, so the report
    # lands on the sleep itself (once — the call site stays silent)
    (diag,) = diags
    assert diag.line == source.splitlines().index(
        "    time.sleep(0.1)"
    ) + 1


# -- RL404 non-atomic check-then-act -------------------------------------
RL404_POS = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def add(self, key, value):
        if key not in self.entries:
            with self._lock:
                self.entries[key] = value
"""

RL404_NEG = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def add(self, key, value):
        if key not in self.entries:
            with self._lock:
                if key not in self.entries:
                    self.entries[key] = value
"""


def test_rl404_flags_unlocked_check_locked_act() -> None:
    assert "RL404" in _codes(RL404_POS)


def test_rl404_accepts_double_checked_locking() -> None:
    assert "RL404" not in _codes(RL404_NEG)


# -- seeded fixtures ------------------------------------------------------
def test_rl401_fixture_flags_cycle_at_marked_line(
    tmp_path: pathlib.Path,
) -> None:
    bad = materialise(tmp_path, "rl401_deadlock.py.txt")
    diags = deep_lint_paths([bad])
    assert [d.code for d in diags] == ["RL401"]
    assert diags[0].line in {
        marked_line(bad, "MARK:ab"), marked_line(bad, "MARK:ba")
    }
    assert main(["--deep", str(bad)]) == 1


def test_rl402_fixture_flags_bare_write_at_marked_line(
    tmp_path: pathlib.Path,
) -> None:
    bad = materialise(tmp_path, "rl402_unlocked_write.py.txt")
    diags = deep_lint_paths([bad])
    assert [d.code for d in diags] == ["RL402"]
    assert diags[0].line == marked_line(bad, "MARK:write")
    assert main(["--deep", str(bad)]) == 1


def test_suppression_comment_silences_rl402() -> None:
    suppressed = RL402_POS.replace(
        "    def reset(self):\n        self.total = 0",
        "    def reset(self):\n"
        "        # repro-lint: disable=RL402 -- test vector\n"
        "        self.total = 0",
    )
    assert _codes(suppressed) == []


def test_jobs_parity_with_serial(tmp_path: pathlib.Path) -> None:
    bad = materialise(tmp_path, "rl401_deadlock.py.txt")
    materialise(tmp_path, "rl402_unlocked_write.py.txt")
    root = bad.parents[3]
    serial = deep_lint_paths([root])
    parallel = deep_lint_paths([root], jobs=2)
    assert serial == parallel
    assert sorted({d.code for d in serial}) == ["RL401", "RL402"]


def test_lock_rules_listed_and_gated(tmp_path: pathlib.Path) -> None:
    assert main(["--list-rules"]) == 0
    clean = materialise(tmp_path, "deep_clean_module.py.txt")
    assert main(["--select", "RL401", str(clean)]) == 2
    assert main(["--select", "RL401", "--deep", str(clean)]) == 0
